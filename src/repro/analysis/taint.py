"""TNT01: determinism-taint tracking.

The reproduction's core contract is byte-identical replay: the plan
journal, the FR02 wire frames and the preprocessing plans must be pure
functions of (dataset, seed, config).  DET01/DET02 flag wall-clock and
unseeded-RNG *calls*; TNT01 closes the remaining gap by following the
**values** those calls produce.  ``t = time.monotonic()`` is legitimate
telemetry -- until ``t`` flows into ``GrantRecord(...)`` three
assignments (or one helper call) later, at which point replay breaks in
a way no call-site rule can see.

Mechanics: a forward may-taint analysis over each function's CFG
(:mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow`).  The state
maps variable names (locals and ``self.X`` pseudo-variables) to the set
of taint labels that may have reached them.  Labels are either concrete
sources (``"time.monotonic()"``) or parameter markers (``"param:0"``).
Parameter markers power the cross-function half: a per-project fixpoint
(cached in ``project.cache``) computes, for every function, which
source labels its *return value* can carry and which *parameter
positions* flow into a sink inside it.  Call sites then propagate taint
through returns and flag tainted arguments passed into sink-reaching
parameters -- so the flow ``t = time.time(); record(t)`` is caught even
when ``record`` does the journal append two modules away.
"""

import ast
import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, ProjectContext
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import ForwardAnalysis, foreach_element_state, run_forward
from repro.analysis.engine import (
    ModuleContext,
    Rule,
    RuleResult,
    register_rule,
)

TaintState = Dict[str, FrozenSet[str]]

_PARAM_PREFIX = "param:"

_DEFAULT_SOURCES = [
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.sample",
    "random.shuffle",
    "random.uniform",
    "random.gauss",
    "random.getrandbits",
    "random.randbytes",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
]

#: Deterministic-output constructors and writers.  Matched against the
#: resolved callee name by suffix (``a.b.GrantRecord.__init__`` matches
#: ``GrantRecord``), so config stays short and survives moves.
_DEFAULT_SINKS = [
    "GrantRecord",
    "ReleaseRecord",
    "SampleRecord",
    "ProgressiveSampleRecord",
    "FetchRequest",
    "FetchResponse",
    # Fidelity-axis records (PR 10): plans and demotions carry scan counts
    # that feed byte-identity-gated output.
    "OffloadPlan",
    "DecisionRecord",
    "Demotion",
    "ScanFidelity",
    "PlanJournal.append_grant",
    "PlanJournal.append_release",
    "PlanJournal.append_checkpoint",
    "journal.encode_line",
    # Telemetry records: stamped from *injectable* clocks by design, so a
    # raw wall-clock value flowing in means someone bypassed the clock.
    "LogRecord",
    "SpanEvent",
    "FlightRecorder.record_log",
    "SloEvaluator.record",
]


def _is_source_label(label: str) -> bool:
    return not label.startswith(_PARAM_PREFIX)


def _source_labels(labels: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(label for label in labels if _is_source_label(label))


def _param_names(fn: ast.AST) -> List[str]:
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    return names


@dataclasses.dataclass
class FunctionSummary:
    """What one function does with taint, as seen from a call site."""

    #: Labels the return value may carry (sources and param markers).
    return_labels: FrozenSet[str] = frozenset()
    #: Parameter index -> sink it reaches inside this function (or deeper).
    sink_params: Dict[int, str] = dataclasses.field(default_factory=dict)


class _TaintAnalysis(ForwardAnalysis[TaintState]):
    """Forward may-taint over one function's CFG."""

    def __init__(
        self,
        ctx: ModuleContext,
        info: FunctionInfo,
        sources: Set[str],
        summaries: Dict[str, FunctionSummary],
    ) -> None:
        self.ctx = ctx
        self.info = info
        self.sources = sources
        self.summaries = summaries
        self.params = _param_names(info.node)
        assert ctx.project is not None
        self.symbols = ctx.project.symbols
        #: return-value labels observed while transferring Return nodes.
        self.returned: Set[str] = set()

    # -- lattice -----------------------------------------------------------

    def initial(self) -> TaintState:
        return {
            name: frozenset({f"{_PARAM_PREFIX}{index}"})
            for index, name in enumerate(self.params)
        }

    def join(self, left: TaintState, right: TaintState) -> TaintState:
        if left == right:
            return left
        merged = dict(left)
        for name, labels in right.items():
            merged[name] = merged.get(name, frozenset()) | labels
        return merged

    # -- taint of an expression -------------------------------------------

    def expr_labels(self, node: Optional[ast.AST], state: TaintState) -> FrozenSet[str]:
        if node is None:
            return frozenset()
        labels: Set[str] = set()
        for child in _walk_pruned(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                labels |= state.get(child.id, frozenset())
            elif isinstance(child, ast.Attribute):
                key = _state_key(child)
                if key is not None:
                    labels |= state.get(key, frozenset())
            elif isinstance(child, ast.Call):
                labels |= self.call_labels(child, state)
        return frozenset(labels)

    def call_labels(self, call: ast.Call, state: TaintState) -> FrozenSet[str]:
        resolved = self.symbols.resolve_call(self.ctx, call, self.info.class_name)
        if resolved is None:
            return frozenset()
        if resolved in self.sources:
            return frozenset({f"{resolved}()"})
        summary = self.summaries.get(resolved)
        if summary is None or not summary.return_labels:
            return frozenset()
        # Map the callee's param markers onto this call's argument taint.
        labels: Set[str] = set(_source_labels(summary.return_labels))
        for marker in summary.return_labels:
            if not marker.startswith(_PARAM_PREFIX):
                continue
            index = int(marker[len(_PARAM_PREFIX):])
            arg = _argument_at(call, resolved, index, self.symbols)
            if arg is not None:
                labels |= self.expr_labels(arg, state)
        return frozenset(labels)

    # -- transfer ----------------------------------------------------------

    def transfer(self, element: ast.stmt, state: TaintState) -> TaintState:
        if isinstance(element, ast.Assign):
            labels = self.expr_labels(element.value, state)
            return self._bind_targets(element.targets, labels, state)
        if isinstance(element, ast.AnnAssign) and element.value is not None:
            labels = self.expr_labels(element.value, state)
            return self._bind_targets([element.target], labels, state)
        if isinstance(element, ast.AugAssign):
            labels = self.expr_labels(element.value, state)
            key = _target_key(element.target)
            if key is not None:
                existing = state.get(key, frozenset())
                if labels - existing:
                    new = dict(state)
                    new[key] = existing | labels
                    return new
            return state
        if isinstance(element, (ast.For, ast.AsyncFor)):
            labels = self.expr_labels(element.iter, state)
            return self._bind_targets([element.target], labels, state)
        if isinstance(element, (ast.With, ast.AsyncWith)):
            new = state
            for item in element.items:
                if item.optional_vars is not None:
                    labels = self.expr_labels(item.context_expr, state)
                    new = self._bind_targets([item.optional_vars], labels, new)
            return new
        if isinstance(element, ast.Return):
            self.returned |= self.expr_labels(element.value, state)
            return state
        return state

    def _bind_targets(
        self,
        targets: Sequence[ast.AST],
        labels: FrozenSet[str],
        state: TaintState,
    ) -> TaintState:
        new: Optional[TaintState] = None
        for target in targets:
            for key in _target_keys(target):
                if state.get(key, frozenset()) == labels and not labels:
                    continue
                if new is None:
                    new = dict(state)
                if labels:
                    new[key] = labels
                else:
                    new.pop(key, None)
        return new if new is not None else state


def _state_key(node: ast.AST) -> Optional[str]:
    """State key for a loadable place: ``x`` or ``self.x``."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _target_key(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    return _state_key(node)


def _target_keys(target: ast.AST) -> Iterator[str]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_keys(element)
        return
    key = _target_key(target)
    if key is not None:
        yield key


def _walk_pruned(node: ast.AST) -> Iterator[ast.AST]:
    """ast.walk that does not descend into nested scopes."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _argument_at(
    call: ast.Call, resolved: str, index: int, symbols: object
) -> Optional[ast.expr]:
    """The call argument bound to parameter ``index`` of the callee.

    Methods called as ``obj.m(...)`` skip the implicit ``self`` slot.
    Best-effort: keyword arguments map via the callee's signature when
    the callee is a project function.
    """
    from repro.analysis.callgraph import SymbolTable

    offset = 0
    names: List[str] = []
    if isinstance(symbols, SymbolTable):
        info = symbols.functions.get(resolved)
        if info is not None:
            names = _param_names(info.node)
            if info.is_method and isinstance(call.func, ast.Attribute):
                offset = 1
    positional_index = index - offset
    if 0 <= positional_index < len(call.args):
        return call.args[positional_index]
    if names and 0 <= index < len(names):
        wanted = names[index]
        for keyword in call.keywords:
            if keyword.arg == wanted:
                return keyword.value
    return None


def _sink_name(resolved: str, sinks: Sequence[str]) -> Optional[str]:
    """The matching sink pattern, if ``resolved`` names a sink."""
    normalized = resolved
    if normalized.endswith(".__init__"):
        normalized = normalized[: -len(".__init__")]
    for pattern in sinks:
        if normalized == pattern or normalized.endswith("." + pattern):
            return pattern
    return None


@register_rule
class DeterminismTaintRule(Rule):
    """TNT01: wall-clock/RNG-derived values must not reach replayed outputs."""

    code = "TNT01"
    name = "determinism-taint"
    rationale = (
        "Crash recovery replays the journal and byte-compares it; epoch "
        "plans replay from (dataset, seed).  A timestamp or unseeded "
        "random value that reaches a journal line, an FR02 frame or a "
        "SampleRecord makes replay diverge -- often only after a crash, "
        "which is the worst possible time to discover it."
    )
    default_options = {
        "modules": ["repro"],
        "sources": list(_DEFAULT_SOURCES),
        "sinks": list(_DEFAULT_SINKS),
        "max_rounds": 4,
    }

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        modules = [str(m) for m in self.options.get("modules", ())]  # type: ignore[union-attr]
        if not ctx.in_modules(modules) or ctx.project is None:
            return
        project = ctx.project
        sources = {str(s) for s in self.options.get("sources", ())}  # type: ignore[union-attr]
        sinks = [str(s) for s in self.options.get("sinks", ())]  # type: ignore[union-attr]
        summaries = self._summaries(project, sources, sinks)
        for info in project.iter_functions(ctx.module):
            yield from self._check_function(ctx, info, sources, sinks, summaries)

    # -- cross-function summaries -----------------------------------------

    def _summaries(
        self, project: ProjectContext, sources: Set[str], sinks: Sequence[str]
    ) -> Dict[str, FunctionSummary]:
        key = "tnt01.summaries"
        cached = project.cache.get(key)
        if isinstance(cached, dict):
            return cached  # type: ignore[return-value]
        summaries: Dict[str, FunctionSummary] = {}
        cfgs: Dict[str, CFG] = {}
        max_rounds = int(self.options.get("max_rounds", 4))  # type: ignore[arg-type]
        for _ in range(max_rounds):
            changed = False
            for qualname in sorted(project.symbols.functions):
                info = project.symbols.functions[qualname]
                ctx = project.modules.get(info.module)
                if ctx is None:
                    continue
                cfg = cfgs.get(qualname)
                if cfg is None:
                    cfg = build_cfg(info.node)
                    cfgs[qualname] = cfg
                summary = self._summarize(ctx, info, cfg, sources, sinks, summaries)
                if summaries.get(qualname) != summary:
                    summaries[qualname] = summary
                    changed = True
            if not changed:
                break
        project.cache[key] = summaries
        return summaries

    def _summarize(
        self,
        ctx: ModuleContext,
        info: FunctionInfo,
        cfg: CFG,
        sources: Set[str],
        sinks: Sequence[str],
        summaries: Dict[str, FunctionSummary],
    ) -> FunctionSummary:
        analysis = _TaintAnalysis(ctx, info, sources, summaries)
        in_states = run_forward(cfg, analysis)
        sink_params: Dict[int, str] = {}

        def visit(element: ast.stmt, state: TaintState) -> None:
            for _call, sink, labels in self._sink_flows(
                analysis, element, state, sinks, summaries
            ):
                for label in sorted(labels):
                    if label.startswith(_PARAM_PREFIX):
                        index = int(label[len(_PARAM_PREFIX):])
                        sink_params.setdefault(index, sink)

        foreach_element_state(cfg, analysis, in_states, visit)
        return FunctionSummary(
            return_labels=frozenset(analysis.returned),
            sink_params=sink_params,
        )

    # -- per-function reporting -------------------------------------------

    def _check_function(
        self,
        ctx: ModuleContext,
        info: FunctionInfo,
        sources: Set[str],
        sinks: Sequence[str],
        summaries: Dict[str, FunctionSummary],
    ) -> Iterator[RuleResult]:
        cfg = build_cfg(info.node)
        analysis = _TaintAnalysis(ctx, info, sources, summaries)
        in_states = run_forward(cfg, analysis)
        findings: List[Tuple[ast.AST, str]] = []
        seen: Set[int] = set()

        def visit(element: ast.stmt, state: TaintState) -> None:
            for call, sink, labels in self._sink_flows(
                analysis, element, state, sinks, summaries
            ):
                concrete = sorted(_source_labels(labels))
                if not concrete or id(call) in seen:
                    continue
                seen.add(id(call))
                findings.append(
                    (
                        call,
                        f"non-deterministic value (from {', '.join(concrete)}) "
                        f"reaches deterministic output {sink}; replayed runs "
                        "will diverge -- derive the value from the seed or "
                        "keep it out of the record",
                    )
                )

        foreach_element_state(cfg, analysis, in_states, visit)
        yield from findings

    def _sink_flows(
        self,
        analysis: _TaintAnalysis,
        element: ast.stmt,
        state: TaintState,
        sinks: Sequence[str],
        summaries: Dict[str, FunctionSummary],
    ) -> Iterator[Tuple[ast.Call, str, FrozenSet[str]]]:
        """(call, sink name, labels) for every tainted sink arg in element."""
        for node in _walk_pruned(element):
            if not isinstance(node, ast.Call):
                continue
            resolved = analysis.symbols.resolve_call(
                analysis.ctx, node, analysis.info.class_name
            )
            if resolved is None:
                continue
            sink = _sink_name(resolved, sinks)
            if sink is not None:
                labels: Set[str] = set()
                for arg in node.args:
                    labels |= analysis.expr_labels(arg, state)
                for keyword in node.keywords:
                    labels |= analysis.expr_labels(keyword.value, state)
                if labels:
                    yield node, sink, frozenset(labels)
                continue
            # Tainted argument into a parameter that reaches a sink deeper in.
            summary = summaries.get(resolved)
            if summary is None or not summary.sink_params:
                continue
            for index in sorted(summary.sink_params):
                arg = _argument_at(node, resolved, index, analysis.symbols)
                if arg is None:
                    continue
                labels = set(analysis.expr_labels(arg, state))
                if labels:
                    chain = f"{summary.sink_params[index]} (via {resolved})"
                    yield node, chain, frozenset(labels)


__all__ = ["DeterminismTaintRule", "FunctionSummary", "TaintState"]
