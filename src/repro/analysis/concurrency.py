"""Lock-discipline rules: GUARD01 (shared-state writes), GUARD02
(blocking calls under a lock), GUARD03 (lock acquisition order).

The decision service (PR 6) made the reproduction genuinely concurrent:
handler threads, a worker pool, an accept loop, per-connection server
threads.  Its guarantees -- atomic admission control, a thread-safe
breaker, byte-identical crash recovery -- are *lock-discipline*
properties, which an intra-function linter cannot see.  These rules use
the v2 cross-module layer (:mod:`repro.analysis.callgraph`):

GUARD01
    In a class that owns a ``threading.Lock``/``RLock``, attributes
    mutated from worker/handler threads must be written under the lock.
    Three clauses: (a) an unguarded write in a thread-entry method (or
    anything it calls) to an attribute other methods also touch; (b) an
    unguarded ``+=``-style read-modify-write anywhere outside
    ``__init__`` (it races with itself); (c) an attribute written both
    under the lock and not (inconsistent discipline is how drain flags
    and stats counters rot).

GUARD02
    No blocking call while holding a lock: ``time.sleep``, ``os.fsync``,
    socket ``recv``/``accept``/``sendall``, ``queue.Queue.get/put/join``,
    ``Event.wait`` -- directly *or transitively*: the call graph closes
    over project functions, so ``self._journal.append_grant(...)`` under
    a lock is flagged because ``PlanJournal._write`` fsyncs.

GUARD03
    Consistent lock acquisition order: if one code path acquires A then
    B (directly or via calls) and another acquires B then A, both sites
    are flagged -- that shape is a deadlock waiting for contention.

Methods only ever invoked with the class lock held (every intra-class
call site sits inside a ``with`` block, or the name ends in
``_locked``) are treated as lock-protected, so ``_next_seq_locked``
style helpers do not produce false positives.
"""

import ast
import dataclasses
import fnmatch
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import FunctionInfo, ProjectContext
from repro.analysis.engine import (
    ModuleContext,
    Rule,
    RuleResult,
    register_rule,
)

_LOCK_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}

_INIT_METHODS = {"__init__", "__post_init__", "__new__", "__del__"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "discard", "add", "update",
    "clear", "pop", "popleft", "appendleft", "popitem", "setdefault",
    "move_to_end", "sort", "reverse",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_attr_root(node: ast.AST) -> Optional[str]:
    """The ``X`` in ``self.X``, ``self.X[...]``, ``self.X.y`` chains."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        attr = _self_attr(node)
        if attr is not None:
            return attr
        node = node.value
    return None


@dataclasses.dataclass
class Event:
    """One concurrency-relevant occurrence inside a function body."""

    kind: str  # "call" | "read" | "write" | "augwrite" | "mutcall" | "acquire"
    node: ast.AST
    #: self-attribute for accesses; lock id for "acquire".
    attr: Optional[str]
    #: lock ids held when the event happens (before, for "acquire").
    locks: FrozenSet[str]


class _FunctionScanner:
    """Walks one function body tracking the stack of held locks.

    Does not descend into nested function/class definitions (they run
    later, under whatever locks their *callers* hold) or lambdas.
    """

    def __init__(self, lock_of: Callable[[ast.AST], Optional[str]]) -> None:
        self._lock_of = lock_of
        self.events: List[Event] = []

    def scan(self, body: Sequence[ast.stmt]) -> List[Event]:
        self._body(body, frozenset())
        return self.events

    # -- statements --------------------------------------------------------

    def _body(self, body: Sequence[ast.stmt], held: FrozenSet[str]) -> None:
        for stmt in body:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: FrozenSet[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in stmt.items:
                lock_id = self._lock_of(item.context_expr)
                if lock_id is not None:
                    self.events.append(
                        Event("acquire", item.context_expr, lock_id, held)
                    )
                    acquired.add(lock_id)
                else:
                    self._expr(item.context_expr, held, reads=True)
            self._body(stmt.body, held | acquired)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, held, reads=True)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
        elif isinstance(stmt, (ast.While,)):
            self._expr(stmt.test, held, reads=True)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, held, reads=True)
            self._target(stmt.target, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self._body(stmt.body, held)
            for handler in stmt.handlers:
                self._body(handler.body, held)
            self._body(stmt.orelse, held)
            self._body(stmt.finalbody, held)
        elif isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held, reads=True)
            for target in stmt.targets:
                self._target(target, held)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held, reads=True)
            self._target(stmt.target, held)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held, reads=True)
            attr = _self_attr_root(stmt.target)
            if attr is not None:
                self.events.append(Event("augwrite", stmt, attr, held))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target, held)
        elif isinstance(stmt, (ast.Return, ast.Expr, ast.Raise, ast.Assert)):
            value = getattr(stmt, "value", None) or getattr(stmt, "exc", None)
            if isinstance(stmt, ast.Assert):
                value = stmt.test
            if value is not None:
                self._expr(value, held, reads=True)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, held, reads=True)

    def _target(self, target: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, held)
            return
        attr = _self_attr_root(target)
        if attr is not None:
            self.events.append(Event("write", target, attr, held))
        # Index expressions inside the target still read state.
        if isinstance(target, ast.Subscript):
            self._expr(target.slice, held, reads=True)

    # -- expressions -------------------------------------------------------

    def _expr(self, node: ast.AST, held: FrozenSet[str], reads: bool) -> None:
        for child in self._walk_expr(node):
            if isinstance(child, ast.Call):
                attr = self._mutcall_attr(child)
                if attr is not None:
                    self.events.append(Event("mutcall", child, attr, held))
                else:
                    self.events.append(Event("call", child, None, held))
            elif reads and isinstance(child, ast.Attribute):
                attr = _self_attr(child)
                if attr is not None and isinstance(child.ctx, ast.Load):
                    self.events.append(Event("read", child, attr, held))

    @staticmethod
    def _mutcall_attr(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            return _self_attr_root(func.value)
        return None

    @staticmethod
    def _walk_expr(node: ast.AST) -> Iterator[ast.AST]:
        """ast.walk pruned at nested scopes (lambdas, comprehension funcs
        stay shallow -- their bodies execute inline, so keep them)."""
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            yield current
            stack.extend(ast.iter_child_nodes(current))


@dataclasses.dataclass
class ClassModel:
    """Everything GUARD01 needs to know about one class."""

    module: str
    name: str
    node: ast.ClassDef
    lock_attrs: Set[str] = dataclasses.field(default_factory=set)
    #: method name -> scan events.
    events: Dict[str, List[Event]] = dataclasses.field(default_factory=dict)
    #: method name -> intra-class callees with "was any lock held".
    calls: Dict[str, List[Tuple[str, bool]]] = dataclasses.field(default_factory=dict)
    thread_entries: Set[str] = dataclasses.field(default_factory=set)
    locked_methods: Set[str] = dataclasses.field(default_factory=set)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


def _module_lock_names(ctx: ModuleContext) -> Set[str]:
    """Module-level names bound to ``threading.Lock()`` and friends."""
    locks: Set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.resolve(node.value.func) in _LOCK_TYPES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        locks.add(target.id)
    return locks


def _function_lock_names(ctx: ModuleContext, fn: ast.AST) -> Set[str]:
    """Parameter/local names in ``fn`` that are locks (annotation or ctor)."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    locks: Set[str] = set()
    args = fn.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None and ctx.resolve(arg.annotation) in _LOCK_TYPES:
            locks.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.resolve(node.value.func) in _LOCK_TYPES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        locks.add(target.id)
    return locks


def _build_class_model(
    ctx: ModuleContext, cls_node: ast.ClassDef, thread_globs: Sequence[str]
) -> ClassModel:
    model = ClassModel(module=ctx.module, name=cls_node.name, node=cls_node)
    methods = {
        item.name: item
        for item in cls_node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    # Lock attributes: self.X = threading.Lock() anywhere in the class.
    for node in ast.walk(cls_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.resolve(node.value.func) in _LOCK_TYPES:
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        model.lock_attrs.add(attr)
    if not model.lock_attrs:
        return model

    def lock_of(expr: ast.AST) -> Optional[str]:
        attr = _self_attr(expr)
        return attr if attr in model.lock_attrs else None

    # Thread entry points: Thread(target=self.m) plus name patterns.
    for node in ast.walk(cls_node):
        if isinstance(node, ast.Call) and ctx.resolve(node.func) in (
            "threading.Thread", "threading.Timer"
        ):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    attr = _self_attr(keyword.value)
                    if attr is not None and attr in methods:
                        model.thread_entries.add(attr)
    for name in methods:
        if any(fnmatch.fnmatch(name, glob) for glob in thread_globs):
            model.thread_entries.add(name)

    # Scan every method once; record intra-class call sites.
    for name in sorted(methods):
        events = _FunctionScanner(lock_of).scan(methods[name].body)
        model.events[name] = events
        sites: List[Tuple[str, bool]] = []
        for event in events:
            if event.kind != "call":
                continue
            assert isinstance(event.node, ast.Call)
            callee = _self_attr(event.node.func)
            if callee is not None and callee in methods:
                sites.append((callee, bool(event.locks)))
        model.calls[name] = sites

    # Close thread entries over intra-class calls (a worker loop's
    # helpers run on the worker thread too).
    changed = True
    while changed:
        changed = False
        for name in sorted(model.thread_entries & set(model.calls)):
            for callee, _ in model.calls[name]:
                if callee not in model.thread_entries:
                    model.thread_entries.add(callee)
                    changed = True

    # Methods that only ever run with the lock held.
    model.locked_methods = {
        name for name in methods if name.endswith("_locked")
    }
    changed = True
    while changed:
        changed = False
        for name in sorted(methods):
            if name in model.locked_methods:
                continue
            sites = [
                (caller, locked)
                for caller in model.calls
                for callee, locked in model.calls[caller]
                if callee == name
            ]
            if not sites:
                continue
            if all(
                locked or caller in model.locked_methods
                for caller, locked in sites
            ):
                model.locked_methods.add(name)
                changed = True
    return model


@dataclasses.dataclass
class ConcurrencyIndex:
    """Per-project scan shared by the three GUARD rules (built once)."""

    #: class qualname -> model (only classes that own locks).
    classes: Dict[str, ClassModel]
    #: function qualname -> events (every project function, incl. methods).
    events: Dict[str, List[Event]]
    #: function qualname -> lock ids it acquires directly.
    acquires: Dict[str, Set[str]]


def _lock_id(module: str, owner: Optional[str], attr: str) -> str:
    return f"{module}.{owner}.{attr}" if owner else f"{module}.{attr}"


def _build_index(project: ProjectContext, thread_globs: Sequence[str]) -> ConcurrencyIndex:
    classes: Dict[str, ClassModel] = {}
    events: Dict[str, List[Event]] = {}
    acquires: Dict[str, Set[str]] = {}
    for module in sorted(project.modules):
        ctx = project.modules[module]
        module_locks = _module_lock_names(ctx)
        class_models: Dict[str, ClassModel] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                model = _build_class_model(ctx, node, thread_globs)
                class_models[node.name] = model
                if model.lock_attrs:
                    classes[model.qualname] = model
        for info in project.iter_functions(module):
            model = class_models.get(info.class_name or "")
            lock_attrs = model.lock_attrs if model is not None else set()
            fn_locks = _function_lock_names(ctx, info.node)

            def lock_of(
                expr: ast.AST,
                _attrs: Set[str] = lock_attrs,
                _fn: Set[str] = fn_locks,
                _cls: Optional[str] = info.class_name,
                _mod: str = module,
                _qual: str = info.qualname,
            ) -> Optional[str]:
                attr = _self_attr(expr)
                if attr is not None and attr in _attrs:
                    return _lock_id(_mod, _cls, attr)
                if isinstance(expr, ast.Name):
                    if expr.id in module_locks:
                        return _lock_id(_mod, None, expr.id)
                    if expr.id in _fn:
                        return f"{_qual}.{expr.id}"
                return None

            assert isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            fn_events = _FunctionScanner(lock_of).scan(info.node.body)
            events[info.qualname] = fn_events
            acquires[info.qualname] = {
                event.attr
                for event in fn_events
                if event.kind == "acquire" and event.attr is not None
            }
    return ConcurrencyIndex(classes=classes, events=events, acquires=acquires)


def _index_for(project: ProjectContext, thread_globs: Sequence[str]) -> ConcurrencyIndex:
    key = "concurrency.index"
    cached = project.cache.get(key)
    if not isinstance(cached, ConcurrencyIndex):
        cached = _build_index(project, thread_globs)
        project.cache[key] = cached
    return cached


def _modules_option(rule: Rule) -> Sequence[str]:
    modules = rule.options.get("modules", ())
    return [str(m) for m in modules]  # type: ignore[union-attr]


def _str_seq(rule: Rule, key: str) -> List[str]:
    return [str(v) for v in rule.options.get(key, ())]  # type: ignore[union-attr]


_DEFAULT_GUARD_MODULES = ["repro.service", "repro.rpc", "repro.parallel"]
_DEFAULT_THREAD_GLOBS = ["_worker*", "_accept_loop", "_serve_*", "_client_loop", "_drain_loop"]


@register_rule
class LockedSharedStateRule(Rule):
    """GUARD01: shared attributes need the class lock on every write."""

    code = "GUARD01"
    name = "locked-shared-state"
    rationale = (
        "The service's admission control and journal sequencing are only "
        "atomic because every shared-state write happens under the class "
        "lock; one unguarded write (a stats counter, a drain flag) is a "
        "silent race that chaos runs cannot reproduce deterministically."
    )
    default_options = {
        "modules": _DEFAULT_GUARD_MODULES,
        "thread_methods": _DEFAULT_THREAD_GLOBS,
    }

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        if not ctx.in_modules(_modules_option(self)) or ctx.project is None:
            return
        index = _index_for(ctx.project, _str_seq(self, "thread_methods"))
        for qualname in sorted(index.classes):
            model = index.classes[qualname]
            if model.module != ctx.module:
                continue
            yield from self._check_class(model)

    def _check_class(self, model: ClassModel) -> Iterator[RuleResult]:
        lock_list = ", ".join(sorted(model.lock_attrs))
        #: attr -> methods (by category) that touch it.
        touched_by: Dict[str, Set[str]] = {}
        guarded_writes: Set[str] = set()
        unguarded_writes: List[Tuple[str, str, Event]] = []
        for method in sorted(model.events):
            if method in _INIT_METHODS:
                continue
            effective_locked = method in model.locked_methods
            for event in model.events[method]:
                if event.attr is None or event.attr in model.lock_attrs:
                    continue
                touched_by.setdefault(event.attr, set()).add(method)
                if event.kind in ("write", "augwrite", "mutcall"):
                    if event.locks or effective_locked:
                        guarded_writes.add(event.attr)
                    else:
                        unguarded_writes.append((method, event.kind, event))
        seen: Set[int] = set()
        for method, kind, event in unguarded_writes:
            attr = event.attr
            assert attr is not None
            thread_side = method in model.thread_entries
            other_side = {
                m
                for m in touched_by.get(attr, set())
                if (m in model.thread_entries) != thread_side
            }
            reason = None
            if kind == "augwrite":
                reason = (
                    f"read-modify-write of self.{attr} without holding "
                    f"{lock_list}; += is not atomic across threads"
                )
            elif thread_side and other_side:
                reason = (
                    f"self.{attr} is mutated on the {method}() thread without "
                    f"holding {lock_list}, but {', '.join(sorted(other_side))}() "
                    "also touches it"
                )
            elif attr in guarded_writes:
                reason = (
                    f"self.{attr} is written under {lock_list} elsewhere but "
                    "not here; lock discipline must be consistent"
                )
            elif thread_side:
                continue
            if reason is not None and id(event.node) not in seen:
                seen.add(id(event.node))
                yield event.node, (
                    f"{model.name}.{method}: {reason} (wrap the write in "
                    f"`with self.{sorted(model.lock_attrs)[0]}:`)"
                )


@register_rule
class NoBlockingUnderLockRule(Rule):
    """GUARD02: never block (sleep/fsync/socket/queue) while holding a lock."""

    code = "GUARD02"
    name = "no-blocking-under-lock"
    rationale = (
        "A blocking call under a lock turns one slow peer into a stalled "
        "service: every thread that needs the lock queues behind a "
        "socket read or fsync.  The call graph closes over project "
        "functions, so the block can hide two calls deep."
    )
    default_options = {
        "modules": _DEFAULT_GUARD_MODULES,
        "thread_methods": _DEFAULT_THREAD_GLOBS,
        # Canonical dotted callables that block.
        "blocking_calls": [
            "time.sleep",
            "os.fsync",
            "select.select",
            "socket.create_connection",
            "subprocess.run",
            "subprocess.check_call",
            "subprocess.check_output",
        ],
        # Method names that block regardless of receiver type (socket and
        # file descriptors rarely resolve to a typed attribute).
        "blocking_attrs": [
            "recv", "recv_into", "recvfrom", "accept", "sendall",
            "fsync", "sleep", "_sleep",
        ],
        # Blocking methods on receivers the symbol table *can* type.
        "blocking_typed": [
            "queue.Queue.get",
            "queue.Queue.put",
            "queue.Queue.join",
            "threading.Event.wait",
            "threading.Condition.wait",
            "threading.Thread.join",
        ],
        "max_call_depth": 6,
    }

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        if not ctx.in_modules(_modules_option(self)) or ctx.project is None:
            return
        project = ctx.project
        index = _index_for(project, _str_seq(self, "thread_methods"))
        blocking = self._blocking_summary(project, index)
        calls = set(_str_seq(self, "blocking_calls"))
        attrs = set(_str_seq(self, "blocking_attrs"))
        typed = set(_str_seq(self, "blocking_typed"))
        for info in project.iter_functions(ctx.module):
            for event in index.events.get(info.qualname, ()):
                if event.kind not in ("call", "mutcall") or not event.locks:
                    continue
                assert isinstance(event.node, ast.Call)
                why = self._call_blocks(
                    project, ctx, info, event.node, calls, attrs, typed, blocking
                )
                if why is not None:
                    held = ", ".join(
                        lock.rsplit(".", 1)[-1] for lock in sorted(event.locks)
                    )
                    yield event.node, (
                        f"blocking call {why} while holding lock(s) {held}; "
                        "move the blocking work outside the `with` block or "
                        "snapshot state under the lock and operate on the "
                        "snapshot"
                    )

    def _blocking_summary(
        self, project: ProjectContext, index: ConcurrencyIndex
    ) -> Dict[str, str]:
        key = "guard02.blocking"
        cached = project.cache.get(key)
        if isinstance(cached, dict):
            return cached  # type: ignore[return-value]
        calls = set(_str_seq(self, "blocking_calls"))
        attrs = set(_str_seq(self, "blocking_attrs"))
        typed = set(_str_seq(self, "blocking_typed"))
        summary: Dict[str, str] = {}
        # Seed: functions with a *direct* blocking call anywhere.
        for qualname in sorted(project.symbols.functions):
            info = project.symbols.functions[qualname]
            ctx = project.modules.get(info.module)
            if ctx is None:
                continue
            for event in index.events.get(qualname, ()):
                if event.kind not in ("call", "mutcall"):
                    continue
                assert isinstance(event.node, ast.Call)
                why = self._direct_block(
                    project, ctx, info, event.node, calls, attrs, typed
                )
                if why is not None:
                    summary[qualname] = why
                    break
        # Close over the call graph.
        depth = int(self.options.get("max_call_depth", 6))  # type: ignore[arg-type]
        for _ in range(depth):
            changed = False
            for qualname in sorted(project.callgraph.edges):
                if qualname in summary:
                    continue
                for callee in sorted(project.callgraph.edges[qualname]):
                    if callee in summary:
                        summary[qualname] = f"{callee} -> {summary[callee]}"
                        changed = True
                        break
            if not changed:
                break
        project.cache[key] = summary
        return summary

    def _direct_block(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        info: FunctionInfo,
        call: ast.Call,
        calls: Set[str],
        attrs: Set[str],
        typed: Set[str],
    ) -> Optional[str]:
        resolved = project.symbols.resolve_call(ctx, call, info.class_name)
        if resolved is not None:
            if resolved in calls:
                return f"{resolved}()"
            if resolved in typed:
                return f"{resolved}()"
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in attrs:
            return f".{func.attr}()"
        return None

    def _call_blocks(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        info: FunctionInfo,
        call: ast.Call,
        calls: Set[str],
        attrs: Set[str],
        typed: Set[str],
        blocking: Dict[str, str],
    ) -> Optional[str]:
        direct = self._direct_block(project, ctx, info, call, calls, attrs, typed)
        if direct is not None:
            return direct
        resolved = project.symbols.resolve_call(ctx, call, info.class_name)
        if resolved is not None and resolved in blocking:
            return f"{resolved}() (-> {blocking[resolved]})"
        return None


@register_rule
class LockOrderRule(Rule):
    """GUARD03: every code path must acquire locks in one global order."""

    code = "GUARD03"
    name = "consistent-lock-order"
    rationale = (
        "Two threads acquiring the same two locks in opposite orders is "
        "a deadlock that only fires under contention -- precisely the "
        "condition the chaos load generator creates."
    )
    default_options = {
        "modules": _DEFAULT_GUARD_MODULES,
        "thread_methods": _DEFAULT_THREAD_GLOBS,
        "max_call_depth": 6,
    }

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        if not ctx.in_modules(_modules_option(self)) or ctx.project is None:
            return
        project = ctx.project
        index = _index_for(project, _str_seq(self, "thread_methods"))
        edges = self._order_edges(project, index)
        flagged: Set[int] = set()
        for (first, second) in sorted(edges):
            if (second, first) not in edges or first >= second:
                continue
            # A genuine reversal: report every site in this module.
            for pair in ((first, second), (second, first)):
                for module, node in edges[pair]:
                    if module != ctx.module or id(node) in flagged:
                        continue
                    flagged.add(id(node))
                    a, b = pair
                    yield node, (
                        "lock order reversal: this path acquires "
                        f"{_short(a)} then {_short(b)}, but another path "
                        f"acquires {_short(b)} then {_short(a)} -- pick one "
                        "global order and stick to it"
                    )

    def _order_edges(
        self, project: ProjectContext, index: ConcurrencyIndex
    ) -> Dict[Tuple[str, str], List[Tuple[str, ast.AST]]]:
        key = "guard03.edges"
        cached = project.cache.get(key)
        if isinstance(cached, dict):
            return cached  # type: ignore[return-value]
        depth = int(self.options.get("max_call_depth", 6))  # type: ignore[arg-type]
        # Transitive lock-acquisition closure per function.
        closure: Dict[str, Set[str]] = {
            qual: set(index.acquires.get(qual, set()))
            for qual in project.symbols.functions
        }
        for _ in range(depth):
            changed = False
            for qual in sorted(project.callgraph.edges):
                mine = closure.setdefault(qual, set())
                for callee in project.callgraph.edges[qual]:
                    extra = closure.get(callee)
                    if extra and not extra <= mine:
                        mine |= extra
                        changed = True
            if not changed:
                break
        edges: Dict[Tuple[str, str], List[Tuple[str, ast.AST]]] = {}
        for qual in sorted(index.events):
            info = project.symbols.functions.get(qual)
            if info is None:
                continue
            ctx = project.modules.get(info.module)
            for event in index.events[qual]:
                if not event.locks:
                    continue
                inner: Set[str] = set()
                if event.kind == "acquire" and event.attr is not None:
                    inner.add(event.attr)
                elif event.kind in ("call", "mutcall") and ctx is not None:
                    assert isinstance(event.node, ast.Call)
                    callee = project.symbols.resolve_call(
                        ctx, event.node, info.class_name
                    )
                    if callee is not None:
                        inner |= closure.get(callee, set())
                for held in event.locks:
                    for acquired in inner:
                        if acquired == held:
                            continue
                        edges.setdefault((held, acquired), []).append(
                            (info.module, event.node)
                        )
        project.cache[key] = edges
        return edges


def _short(lock_id: str) -> str:
    parts = lock_id.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else lock_id


__all__ = [
    "ClassModel",
    "ConcurrencyIndex",
    "Event",
    "LockOrderRule",
    "LockedSharedStateRule",
    "NoBlockingUnderLockRule",
]
