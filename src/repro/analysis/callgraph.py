"""Project-wide symbol table and call graph: the cross-module layer.

sophon-lint v1 rules were pure functions of one module's AST.  The v2
rule families (lock discipline, determinism taint) need to answer
questions like "does anything this ``with self._lock:`` block calls,
transitively, block on a socket?" -- which requires knowing every
function in the project, what class it belongs to, and who calls whom.

Three pieces:

:class:`SymbolTable`
    Qualified name (``repro.rpc.tcp.TcpStorageServer._accept_loop``) ->
    :class:`FunctionInfo` / :class:`ClassInfo` for every definition in
    the analyzed tree, including inferred instance-attribute types
    (``self._journal`` -> ``repro.service.journal.PlanJournal``) from
    annotated and constructor-call assignments.

:class:`CallGraph`
    Caller qualname -> callee names.  Callees inside the project resolve
    to their qualnames; calls that leave the project (``os.fsync``,
    ``time.sleep``) are kept as their canonical dotted names so rules
    can still ban them transitively.

:class:`ProjectContext`
    The bundle rules receive via ``ModuleContext.project``; carries a
    memo ``cache`` so expensive per-project summaries (blocking-call
    closure, taint summaries) are computed once per run, not per module.
"""

import ast
import dataclasses
from typing import Dict, Iterator, List, Mapping, Optional, Set

from repro.analysis.engine import ModuleContext


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # enclosing class (simple name)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclasses.dataclass
class ClassInfo:
    """One class definition plus what we can infer about its instances."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    #: method simple name -> FunctionInfo
    methods: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    #: instance attribute -> inferred class qualname (project or external),
    #: from ``self.x: T = ...`` annotations and ``self.x = Cls(...)`` calls.
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)


def _annotation_type(ctx: ModuleContext, node: Optional[ast.expr]) -> Optional[str]:
    """Canonical dotted type of an annotation, unwrapping Optional/quotes."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = ctx.resolve(node.value)
        if base in ("typing.Optional", "Optional"):
            inner = node.slice
            if isinstance(inner, ast.Index):  # pragma: no cover (py<3.9 AST)
                inner = inner.value  # type: ignore[attr-defined]
            return _annotation_type(ctx, inner)  # type: ignore[arg-type]
        return base
    return ctx.resolve(node)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` for a ``self.X`` attribute node, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class SymbolTable:
    """Every function, method and class in the analyzed modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: simple class name -> qualnames (for resolving bare references).
        self._class_names: Dict[str, List[str]] = {}

    @classmethod
    def build(cls, modules: Mapping[str, ModuleContext]) -> "SymbolTable":
        table = cls()
        for module in sorted(modules):
            ctx = modules[module]
            table._index_module(ctx)
        for module in sorted(modules):
            table._infer_attr_types(modules[module])
        return table

    def _index_module(self, ctx: ModuleContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{ctx.module}.{node.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=ctx.module, path=ctx.path, node=node
                )
            elif isinstance(node, ast.ClassDef):
                qual = f"{ctx.module}.{node.name}"
                info = ClassInfo(
                    qualname=qual, module=ctx.module, path=ctx.path, node=node
                )
                self.classes[qual] = info
                self._class_names.setdefault(node.name, []).append(qual)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = FunctionInfo(
                            qualname=f"{qual}.{item.name}",
                            module=ctx.module,
                            path=ctx.path,
                            node=item,
                            class_name=node.name,
                        )
                        self.functions[method.qualname] = method
                        info.methods[item.name] = method

    def _infer_attr_types(self, ctx: ModuleContext) -> None:
        for cls_node in ctx.tree.body:
            if not isinstance(cls_node, ast.ClassDef):
                continue
            info = self.classes[f"{ctx.module}.{cls_node.name}"]
            for node in ast.walk(cls_node):
                if isinstance(node, ast.AnnAssign):
                    attr = _self_attr(node.target)
                    typ = _annotation_type(ctx, node.annotation)
                    if attr is not None and typ is not None:
                        info.attr_types.setdefault(attr, self._canonical(typ))
                elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    typ = ctx.resolve(node.value.func)
                    if typ is None:
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            info.attr_types.setdefault(attr, self._canonical(typ))

    def _canonical(self, name: str) -> str:
        """Map a resolved type name onto a project class qualname if one matches."""
        if name in self.classes:
            return name
        candidates = self._class_names.get(name.rsplit(".", 1)[-1], [])
        if len(candidates) == 1 and name == candidates[0].rsplit(".", 1)[-1]:
            return candidates[0]
        return name

    def class_of(self, module: str, class_name: str) -> Optional[ClassInfo]:
        return self.classes.get(f"{module}.{class_name}")

    def resolve_call(
        self,
        ctx: ModuleContext,
        node: ast.Call,
        current_class: Optional[str] = None,
    ) -> Optional[str]:
        """Callee name for a call: project qualname or external dotted name.

        Handles ``self.m()`` (method of the current class), ``self.attr.m()``
        (method on a typed instance attribute), alias-resolved module
        functions and class constructors (-> ``Cls.__init__`` when defined).
        """
        func = node.func
        # self.m(...) and self.attr.m(...)
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id == "self" and current_class:
                info = self.class_of(ctx.module, current_class)
                if info is not None and func.attr in info.methods:
                    return info.methods[func.attr].qualname
            attr = _self_attr(owner)
            if attr is not None and current_class:
                info = self.class_of(ctx.module, current_class)
                if info is not None:
                    owner_type = info.attr_types.get(attr)
                    if owner_type is not None:
                        if owner_type in self.classes:
                            owner_cls = self.classes[owner_type]
                            if func.attr in owner_cls.methods:
                                return owner_cls.methods[func.attr].qualname
                        return f"{owner_type}.{func.attr}"
        resolved = ctx.resolve(func)
        if resolved is None:
            return None
        # A bare name may be a same-module definition; qualify it.
        for candidate in (resolved, f"{ctx.module}.{resolved}"):
            if candidate in self.functions:
                return candidate
            if candidate in self.classes:
                init = f"{candidate}.__init__"
                return init if init in self.functions else candidate
        return resolved


class CallGraph:
    """Caller qualname -> set of callee names (project or external)."""

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}

    @classmethod
    def build(
        cls, modules: Mapping[str, ModuleContext], symbols: SymbolTable
    ) -> "CallGraph":
        graph = cls()
        for module in sorted(modules):
            ctx = modules[module]
            for qual, info in symbols.functions.items():
                if info.module != module:
                    continue
                callees = graph.edges.setdefault(qual, set())
                for call in ast.walk(info.node):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = symbols.resolve_call(ctx, call, info.class_name)
                    if callee is not None and callee != qual:
                        callees.add(callee)
        return graph

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable(self, qualname: str, max_depth: int = 6) -> Set[str]:
        """Every callee name reachable from ``qualname`` within ``max_depth``."""
        seen: Set[str] = set()
        frontier = {qualname}
        for _ in range(max_depth):
            nxt: Set[str] = set()
            for name in frontier:
                for callee in self.edges.get(name, ()):
                    if callee not in seen:
                        seen.add(callee)
                        nxt.add(callee)
            if not nxt:
                break
            frontier = nxt
        return seen

    def path_to(
        self, start: str, targets: Set[str], max_depth: int = 6
    ) -> Optional[List[str]]:
        """Shortest call chain from ``start`` into ``targets`` (BFS, stable)."""
        if start in targets:
            return [start]
        parents: Dict[str, str] = {}
        frontier = [start]
        seen = {start}
        for _ in range(max_depth):
            nxt: List[str] = []
            for name in frontier:
                for callee in sorted(self.edges.get(name, ())):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = name
                    if callee in targets:
                        chain = [callee]
                        while chain[-1] != start:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    nxt.append(callee)
            if not nxt:
                return None
            frontier = nxt
        return None


@dataclasses.dataclass
class ProjectContext:
    """Cross-module context shared by every rule in one analysis run."""

    modules: Dict[str, ModuleContext]
    symbols: SymbolTable
    callgraph: CallGraph
    #: Per-run memo for expensive project-level summaries, keyed by the
    #: computing rule (e.g. "guard02.blocking", "tnt01.summaries").
    cache: Dict[str, object] = dataclasses.field(default_factory=dict)

    def iter_functions(self, module: str) -> Iterator[FunctionInfo]:
        """Functions and methods defined in ``module``, in source order."""
        infos = [
            info
            for info in self.symbols.functions.values()
            if info.module == module
        ]
        infos.sort(key=lambda info: (info.node.lineno, info.qualname))  # type: ignore[attr-defined]
        return iter(infos)


def build_project(modules: Mapping[str, ModuleContext]) -> ProjectContext:
    """Assemble the symbol table and call graph for one analysis run."""
    mapping = dict(modules)
    symbols = SymbolTable.build(mapping)
    callgraph = CallGraph.build(mapping, symbols)
    return ProjectContext(modules=mapping, symbols=symbols, callgraph=callgraph)


__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ProjectContext",
    "SymbolTable",
    "build_project",
]
