"""sophon-lint CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 when no error-severity findings (warnings alone do not
fail), 1 when errors were found, 2 on usage errors.
"""

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.engine import Severity, analyze_paths, iter_python_files
from repro.analysis.fixes import MAX_PASSES, apply_fixes
from repro.analysis.report import render_json, render_rules, render_sarif, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="sophon-lint: domain-aware static analysis for the "
        "SOPHON reproduction (determinism, RPC-protocol and simulation "
        "invariants).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule codes to run (default: all enabled)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered from the first "
        "path upward)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes in place (re-analyzing until stable), "
        "then report what remains",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log to PATH "
        "('-' for stdout)",
    )
    return parser


def _apply_fixes_in_place(paths: List[Path], config: LintConfig) -> int:
    """Rewrite files until no fix applies; returns total fixes applied."""
    total = 0
    for _ in range(MAX_PASSES):
        findings = analyze_paths(paths, config)
        fixable: dict = {}
        for finding in findings:
            if finding.fix is not None:
                fixable.setdefault(finding.path, []).append(finding)
        applied_this_pass = 0
        for path in sorted(fixable):
            source = Path(path).read_text(encoding="utf-8")
            fixed, applied = apply_fixes(source, fixable[path])
            if applied:
                Path(path).write_text(fixed, encoding="utf-8")
                applied_this_pass += applied
        total += applied_this_pass
        if applied_this_pass == 0:
            break
    return total


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    if args.config is not None:
        config = LintConfig.from_pyproject(Path(args.config))
    else:
        config = LintConfig.discover(paths[0])
    if args.select:
        config.select = {c.strip().upper() for c in args.select.split(",") if c.strip()}
    if args.ignore:
        config.ignore |= {c.strip().upper() for c in args.ignore.split(",") if c.strip()}

    files_checked = sum(1 for _ in iter_python_files(paths, exclude=config.exclude))
    if args.fix:
        fixed = _apply_fixes_in_place(paths, config)
        if fixed:
            print(f"fixed {fixed} finding(s)", file=sys.stderr)
    findings = analyze_paths(paths, config)
    render = render_json if args.format == "json" else render_text
    print(render(findings, files_checked=files_checked))
    if args.sarif:
        sarif = render_sarif(findings, files_checked=files_checked)
        if args.sarif == "-":
            print(sarif)
        else:
            Path(args.sarif).write_text(sarif + "\n", encoding="utf-8")
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
