"""sophon-lint: domain-aware static analysis for the SOPHON reproduction.

The reproduction's guarantees -- bit-identical degraded mode, seeded
per-sample augmentation, checksummed frames, deterministic simulation --
are invariants of *how the code is written*, not just what it computes.
This package makes them machine-checkable: an AST rule engine
(:mod:`repro.analysis.engine`), domain rules (:mod:`repro.analysis.rules`),
``pyproject.toml`` configuration (:mod:`repro.analysis.config`), text/JSON
reporters (:mod:`repro.analysis.report`) and a CLI
(``python -m repro.analysis``).

Findings are suppressed inline with ``# sophon-lint: disable=RULE`` (on the
offending line, or on a comment-only line directly above it).
"""

from repro.analysis.callgraph import (
    CallGraph,
    ProjectContext,
    SymbolTable,
    build_project,
)
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.config import LintConfig
from repro.analysis.dataflow import ForwardAnalysis, run_forward
from repro.analysis.engine import (
    Edit,
    Finding,
    Fix,
    ModuleContext,
    Rule,
    Severity,
    all_rules,
    analyze_modules,
    analyze_paths,
    analyze_source,
    get_rule,
    register_rule,
)
from repro.analysis.fixes import apply_fixes, fix_text
from repro.analysis.report import render_json, render_sarif, render_text

# Importing the rule modules populates the registry.
from repro.analysis import concurrency as _concurrency  # noqa: F401
from repro.analysis import rules as _rules  # noqa: F401
from repro.analysis import taint as _taint  # noqa: F401

__all__ = [
    "CFG",
    "CallGraph",
    "Edit",
    "Finding",
    "Fix",
    "ForwardAnalysis",
    "LintConfig",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "Severity",
    "SymbolTable",
    "all_rules",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "apply_fixes",
    "build_cfg",
    "build_project",
    "fix_text",
    "get_rule",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "run_forward",
]
