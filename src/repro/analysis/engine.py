"""The sophon-lint core: rule registry, module context, suppression logic.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding` objects.  The engine parses each file once, builds
the import-alias table and the inline-suppression table, runs every enabled
rule, and filters findings through suppressions.  Rules never read files
themselves, so a rule is a pure function of the AST -- easy to test from
string fixtures.
"""

import ast
import dataclasses
import enum
import io
import re
import tokenize
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from repro.analysis.config import LintConfig

if TYPE_CHECKING:  # pragma: no cover -- import cycle broken at runtime
    from repro.analysis.callgraph import ProjectContext


class Severity(enum.Enum):
    ERROR = "error"  # fails the build
    WARNING = "warning"  # reported, does not affect the exit code

    @classmethod
    def parse(cls, value: str) -> "Severity":
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {value!r}, expected one of "
                f"{[s.value for s in cls]}"
            ) from None


@dataclasses.dataclass(frozen=True)
class Edit:
    """One textual replacement: ``[start, end)`` in (1-based line, 0-based col)."""

    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str


@dataclasses.dataclass(frozen=True)
class Fix:
    """A mechanical repair for one finding (applied by ``--fix``)."""

    edits: Tuple[Edit, ...]
    description: str = ""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    severity: Severity
    #: Attached autofix, when the repair is mechanical (MUT01, FLT01,
    #: DET03 sorted-wraps).  Not part of identity/ordering.
    fix: Optional[Fix] = dataclasses.field(default=None, compare=False)

    def format(self) -> str:
        suffix = " [fixable]" if self.fix is not None else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}{suffix}"
        )


@dataclasses.dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: str
    module: str  # dotted name, e.g. "repro.rpc.messages"
    tree: ast.Module
    source: str
    config: LintConfig
    #: local alias -> canonical dotted prefix ("np" -> "numpy",
    #: "monotonic" -> "time.monotonic").
    aliases: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: Cross-module context (symbol table, call graph) for the analysis
    #: run this module belongs to; set by the engine before rules run.
    project: Optional["ProjectContext"] = None

    def in_modules(self, prefixes: Sequence[str]) -> bool:
        """Is this module inside any of the dotted-name prefixes?"""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, through aliases.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module did ``import numpy as np``; a bare ``monotonic``
        resolves to ``time.monotonic`` after ``from time import monotonic``.
        Returns None for expressions that are not plain dotted chains.
        """
        name = dotted_name(node)
        if name is None:
            return None
        first, _, rest = name.partition(".")
        base = self.aliases.get(first, first)
        return f"{base}.{rest}" if rest else base


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted names they import."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.partition(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


#: What a rule may yield: ``(node, message)`` or ``(node, message, fix)``.
RuleResult = Union[
    Tuple[ast.AST, str],
    Tuple[ast.AST, str, Optional[Fix]],
]


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(node, message)`` pairs -- or ``(node, message, fix)``
    triples when the repair is mechanical; the engine turns them into
    :class:`Finding` objects with the configured severity.  Cross-module
    rules read ``ctx.project`` (symbol table + call graph), which the
    engine populates for every analysis run.

    ``default_options`` holds rule-specific knobs (e.g. which modules the
    rule is scoped to); ``[tool.sophon-lint.rules.<CODE>]`` in
    ``pyproject.toml`` overrides them per key.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    default_severity: Severity = Severity.ERROR
    default_options: Dict[str, object] = {}

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.options = dict(self.default_options)
        self.options.update(config.rule_options.get(self.code, {}))

    def check(self, ctx: ModuleContext) -> Iterator[RuleResult]:
        raise NotImplementedError

    def severity(self) -> Severity:
        raw = self.config.severities.get(self.code)
        return Severity.parse(raw) if raw is not None else self.default_severity


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    import repro.analysis.rules  # noqa: F401  (populates the registry)

    return dict(sorted(_REGISTRY.items()))


def get_rule(code: str) -> Type[Rule]:
    try:
        return all_rules()[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; known: {', '.join(all_rules())}"
        ) from None


# -- suppressions -----------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*sophon-lint:\s*disable=([A-Za-z0-9_*,\s]+)")


def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line -> rule codes disabled there.

    A trailing ``# sophon-lint: disable=CODE`` applies to its own line; a
    comment-only line applies to itself *and* the next line.  ``disable=all``
    disables every rule.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # unparseable: no comments
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        }
        line = tok.start[0]
        suppressions.setdefault(line, set()).update(codes)
        if tok.line.lstrip().startswith("#"):  # comment-only line
            suppressions.setdefault(line + 1, set()).update(codes)
    return suppressions


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]]
) -> bool:
    codes = suppressions.get(finding.line, set())
    return finding.rule in codes or "ALL" in codes


# -- analysis entry points --------------------------------------------------

def module_name_for(path: Path) -> str:
    """Dotted module name for *path*, rooted at the nearest ``src`` dir."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1 :]
            break
    return ".".join(p for p in parts if p not in ("", ".", "/"))


def _enabled_rules(config: LintConfig) -> List[Rule]:
    rules = []
    for code, cls in all_rules().items():
        if config.select is not None and code not in config.select:
            continue
        if code in config.ignore:
            continue
        rules.append(cls(config))
    return rules


def _parse_error(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="PARSE",
        message=f"syntax error: {exc.msg}",
        path=path,
        line=exc.lineno or 1,
        col=exc.offset or 0,
        severity=Severity.ERROR,
    )


def _parse_module(
    source: str, path: str, module: Optional[str], config: LintConfig
) -> Tuple[Optional[ModuleContext], Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, _parse_error(path, exc)
    ctx = ModuleContext(
        path=path,
        module=module if module is not None else module_name_for(Path(path)),
        tree=tree,
        source=source,
        config=config,
        aliases=import_aliases(tree),
    )
    return ctx, None


def _check_module(ctx: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    suppressions = collect_suppressions(ctx.source)
    findings: List[Finding] = []
    for rule in rules:
        for result in rule.check(ctx):
            node, message = result[0], result[1]
            fix = result[2] if len(result) > 2 else None
            finding = Finding(
                rule=rule.code,
                message=message,
                path=ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                severity=rule.severity(),
                fix=fix,
            )
            if not is_suppressed(finding, suppressions):
                findings.append(finding)
    return findings


def _analyze_contexts(
    contexts: Sequence[ModuleContext], config: LintConfig
) -> List[Finding]:
    """Build the cross-module project, then run every rule per module."""
    from repro.analysis.callgraph import build_project  # avoid import cycle

    project = build_project({ctx.module: ctx for ctx in contexts})
    for ctx in contexts:
        ctx.project = project
    findings: List[Finding] = []
    rules = _enabled_rules(config)
    for ctx in contexts:
        findings.extend(_check_module(ctx, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Analyze one module given as a string; the fixture-test entry point.

    The module becomes a one-module project, so cross-function analyses
    (call graph, taint summaries) still run -- only *cross-module*
    resolution needs :func:`analyze_modules` or :func:`analyze_paths`.
    """
    config = config if config is not None else LintConfig()
    ctx, error = _parse_module(source, path, module, config)
    if ctx is None:
        return [error] if error is not None else []
    return _analyze_contexts([ctx], config)


def analyze_modules(
    sources: Mapping[str, str], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Analyze several in-memory modules as one project.

    ``sources`` maps dotted module names to source text; paths in the
    findings are ``<module>`` placeholders.  This is the entry point for
    cross-module fixture tests (taint flowing through a helper module,
    lock-order cycles spanning files).
    """
    config = config if config is not None else LintConfig()
    contexts: List[ModuleContext] = []
    findings: List[Finding] = []
    for module in sources:
        ctx, error = _parse_module(
            sources[module], f"<{module}>", module, config
        )
        if ctx is None:
            if error is not None:
                findings.append(error)
            continue
        contexts.append(ctx)
    findings.extend(_analyze_contexts(contexts, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(
    paths: Iterable[Path], exclude: Sequence[str] = ()
) -> Iterator[Path]:
    """Every ``.py`` file under *paths*, sorted, minus excluded patterns."""
    seen: Set[Path] = set()
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            posix = candidate.as_posix()
            if any(pattern in posix for pattern in exclude):
                continue
            yield candidate


def analyze_paths(
    paths: Sequence[Path], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Analyze every Python file under *paths* as one project.

    All files are parsed before any rule runs, so every module sees the
    full symbol table and call graph of the analyzed tree.
    """
    config = config if config is not None else LintConfig()
    contexts: List[ModuleContext] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths, exclude=config.exclude):
        source = path.read_text(encoding="utf-8")
        ctx, error = _parse_module(
            source, str(path), module_name_for(path), config
        )
        if ctx is None:
            if error is not None:
                findings.append(error)
            continue
        contexts.append(ctx)
    findings.extend(_analyze_contexts(contexts, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
