"""The bounded worker queue between request handlers and planner workers.

Handler threads (one per in-flight HTTP request) never run the decision
engine themselves: they enqueue a :class:`PlanTask` and block on its
completion event until the deadline.  Worker threads drain the queue.
The queue is *bounded* on purpose -- when profiling falls behind the
arrival rate the right failure mode is to shed new work immediately
(:class:`QueueFullError` becomes a 503 with ``Retry-After``), not to grow
an unbounded backlog of requests whose clients have long timed out.
"""

import dataclasses
import queue
import threading
from typing import Dict, Optional

from repro.telemetry.flight import FlightRecorder
from repro.telemetry.registry import get_default_registry


class QueueFullError(Exception):
    """The work queue is at capacity; the request must be shed."""


@dataclasses.dataclass
class PlanTask:
    """One queued plan request and the slot its response lands in.

    deadline_at: absolute time (service clock) after which nobody is
        waiting; workers drop expired tasks without planning.
    abandoned: set by the handler when it stops waiting (its client's
        deadline passed); the worker then skips the task entirely.
    """

    request: Dict[str, object]
    enqueued_at: float
    deadline_at: Optional[float] = None
    done: threading.Event = dataclasses.field(default_factory=threading.Event)
    status: int = 0
    body: Dict[str, object] = dataclasses.field(default_factory=dict)
    retry_after_s: Optional[float] = None
    outcome: str = "pending"
    abandoned: bool = False
    #: Trace id from the request's ``X-Sophon-Trace`` header (if any);
    #: the queue brackets this task's wait with ``service.queue_wait``.
    trace_id: Optional[str] = None

    def finish(
        self,
        status: int,
        body: Dict[str, object],
        outcome: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.outcome = outcome
        self.retry_after_s = retry_after_s
        self.done.set()


#: Sentinel a worker interprets as "stop draining and exit".
_STOP = object()


class BoundedWorkQueue:
    """A capacity-capped FIFO with shed accounting and depth telemetry.

    The bound applies to :class:`PlanTask` submissions only; stop
    sentinels always land (a full queue must never block shutdown), so
    the backing queue is unbounded and the capacity check is explicit.
    """

    def __init__(
        self, capacity: int, recorder: Optional[FlightRecorder] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Flight recorder receiving ``service.queue_wait`` spans for
        #: traced tasks; the service attaches its own after construction.
        self.recorder = recorder
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._lock = threading.Lock()
        self._pending_tasks = 0
        self.shed_count = 0
        self.max_depth = 0

    @property
    def depth(self) -> int:
        """Plan tasks waiting for a worker (sentinels excluded)."""
        with self._lock:
            return self._pending_tasks

    def submit(self, task: PlanTask) -> None:
        """Enqueue ``task`` or raise :class:`QueueFullError` immediately."""
        registry = get_default_registry()
        with self._lock:
            if self._pending_tasks >= self.capacity:
                self.shed_count += 1
                full = True
            else:
                self._pending_tasks += 1
                depth = self._pending_tasks
                if depth > self.max_depth:
                    self.max_depth = depth
                full = False
        if full:
            registry.counter(
                "service_shed_total", "plan requests shed by cause",
                labels=["cause"],
            ).inc(cause="queue_full")
            if self.recorder is not None and task.trace_id is not None:
                self.recorder.instant(
                    task.trace_id, "service.shed", cause="queue_full"
                )
            raise QueueFullError(
                f"work queue at capacity ({self.capacity}); shedding"
            )
        if self.recorder is not None and task.trace_id is not None:
            self.recorder.begin(task.trace_id, "service.queue_wait", depth=depth)
        self._queue.put(task)
        registry.gauge(
            "service_queue_depth", "plan requests waiting for a worker"
        ).set(depth)

    def take(self, timeout: Optional[float] = 0.1) -> Optional[PlanTask]:
        """Next task for a worker; None on timeout or stop sentinel."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _STOP:
            self._queue.task_done()
            return None
        assert isinstance(item, PlanTask)
        with self._lock:
            self._pending_tasks -= 1
            depth = self._pending_tasks
        get_default_registry().gauge(
            "service_queue_depth", "plan requests waiting for a worker"
        ).set(depth)
        if self.recorder is not None and item.trace_id is not None:
            self.recorder.end(item.trace_id, "service.queue_wait")
        return item

    def task_done(self) -> None:
        self._queue.task_done()

    def push_stop(self, count: int = 1) -> None:
        """Wake ``count`` workers with stop sentinels (bypasses the bound)."""
        for _ in range(count):
            self._queue.put(_STOP)

    def join(self) -> None:
        """Block until every submitted task has been processed."""
        self._queue.join()

    def drain_pending(self) -> int:
        """Drop every queued task (hard kill); returns how many were dropped.

        Each dropped task is finished with a 503 so any handler thread
        still waiting on it wakes up instead of hanging until timeout.
        """
        dropped = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return dropped
            if isinstance(item, PlanTask):
                item.finish(
                    503, {"error": "service killed"}, outcome="killed"
                )
                if self.recorder is not None and item.trace_id is not None:
                    self.recorder.end(
                        item.trace_id, "service.queue_wait", outcome="killed"
                    )
                dropped += 1
                with self._lock:
                    self._pending_tasks -= 1
            self._queue.task_done()
