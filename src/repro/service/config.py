"""Configuration for the decision service.

One frozen dataclass holds every operational knob -- capacity, budgets,
timeouts, journal location -- so a service's behaviour is fully described
by its config plus its journal.  Tests construct small configs directly;
``sophon-repro serve`` builds one from flags.
"""

import dataclasses
from typing import Optional

#: The development default.  Real deployments pass their own token; the
#: server refuses to start with an empty one.
DEFAULT_TOKEN = "sophon-dev-token"


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything the decision service needs to run.

    token: shared bearer token required on every ``/v1/*`` request.
    host/port: listen address; port 0 picks an ephemeral port (the bound
        address is on :attr:`DecisionService.address`).
    workers: planner worker threads draining the queue.
    queue_capacity: bounded queue depth; a full queue sheds new plan
        requests with 503 + ``Retry-After`` instead of buffering forever.
    total_storage_cores: the storage node's CPU budget that admission
        control protects; committed cores across active jobs never exceed
        this.
    max_samples: upper bound on a job's ``num_samples`` (one request must
        not be able to wedge a worker on an arbitrarily large profile).
    default_deadline_s: applied to requests that carry no deadline header;
        None means such requests never expire server-side.
    retry_after_s: the hint sent with 503 responses (shed / draining /
        budget-rejected).
    drain_timeout_s: how long a graceful drain waits for in-flight work
        before giving up and hard-stopping.
    journal_path: append-only recovery journal; None disables journaling
        (grants are not durable, restarts start from scratch).
    sync_journal: fsync after every journal append.  Durable by default;
        benchmarks may turn it off.
    plan_cache_size: LRU entries of profiled records kept per planner
        (keyed by job parameters), so a fleet re-requesting the same job
        shape does not re-profile every time.
    trace: collect the *full* span stream in an unbounded tee tracer
        (:attr:`DecisionService.tracer`) in addition to the always-on
        bounded flight recorder.  Tracing never touches the journal or
        the grant stream -- the chaos gate checks byte-identity with it
        on and off.
    flight_capacity: ring size (spans and log records each) of the
        always-on flight recorder.
    flight_path: when set, the flight recorder's chrome-trace dump is
        written here on drain *and* on kill, so crashed runs leave a
        timeline behind.
    """

    token: str = DEFAULT_TOKEN
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_capacity: int = 16
    total_storage_cores: int = 48
    max_samples: int = 20000
    default_deadline_s: Optional[float] = 30.0
    retry_after_s: float = 0.05
    drain_timeout_s: float = 30.0
    journal_path: Optional[str] = None
    sync_journal: bool = True
    plan_cache_size: int = 8
    trace: bool = False
    flight_capacity: int = 2048
    flight_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.token:
            raise ValueError("token must be non-empty")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.total_storage_cores < 0:
            raise ValueError(
                f"total_storage_cores must be >= 0, got {self.total_storage_cores}"
            )
        if self.max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {self.max_samples}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.retry_after_s < 0:
            raise ValueError(f"retry_after_s must be >= 0, got {self.retry_after_s}")
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
        if self.plan_cache_size < 0:
            raise ValueError(
                f"plan_cache_size must be >= 0, got {self.plan_cache_size}"
            )
        if self.flight_capacity < 1:
            raise ValueError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )
