"""The offload control plane: an always-on decision-engine service.

Every other entry point in this repository is a batch script: profile,
plan, simulate, exit.  A fleet of training jobs needs the opposite -- a
long-lived *decision service* that trainers query for per-sample offload
plans while they run, and that stays correct when the interesting things
happen: overload, stuck clients, and crashes mid-epoch.

The package is zero-dependency (stdlib ``http.server`` + ``threading``)
and built around robustness as the headline feature:

- **token auth** on every control-plane endpoint;
- a **bounded worker queue** decoupling request handling from profiling,
  with explicit **load shedding** (503 + ``Retry-After``) under queue
  pressure;
- **admission control** against the storage node's CPU-core budget
  (:class:`CoreBudgetLedger`): a plan request that would oversubscribe
  the storage tier is rejected with ``Retry-After``, not queued forever;
- **per-request deadlines** propagated from client to worker, so a
  request nobody is waiting for anymore is dropped instead of planned;
- **graceful drain** on shutdown: stop accepting, finish in-flight work,
  checkpoint the journal;
- **crash recovery** via an append-only journal of granted plans and
  budget state (:class:`PlanJournal`): a restarted server resumes with
  byte-identical grants (see ``repro.harness.service_chaos``);
- ``/healthz`` / ``/readyz`` / ``/metrics`` endpoints, the latter
  rendering the process metrics registry as Prometheus text.

See ``docs/service.md`` for the endpoint and journal formats.
"""

from repro.service.budget import BudgetDecision, CoreBudgetLedger
from repro.service.client import (
    ClientStats,
    PlanGrant,
    ServiceAuthError,
    ServiceClient,
    ServiceDeadlineError,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from repro.service.config import ServiceConfig
from repro.service.journal import (
    CheckpointRecord,
    GrantRecord,
    JournalCorruptError,
    JournalState,
    PlanJournal,
    ReleaseRecord,
)
from repro.service.planner import JobSpec, PlanResult, ServicePlanner
from repro.service.queue import BoundedWorkQueue, PlanTask, QueueFullError
from repro.service.server import DecisionService

__all__ = [
    "BoundedWorkQueue",
    "BudgetDecision",
    "CheckpointRecord",
    "ClientStats",
    "CoreBudgetLedger",
    "DecisionService",
    "GrantRecord",
    "JobSpec",
    "JournalCorruptError",
    "JournalState",
    "PlanGrant",
    "PlanJournal",
    "PlanResult",
    "PlanTask",
    "QueueFullError",
    "ReleaseRecord",
    "ServiceAuthError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDeadlineError",
    "ServiceError",
    "ServicePlanner",
    "ServiceProtocolError",
    "ServiceUnavailableError",
]
