"""Trace-driven load generator for the decision service.

Simulates a fleet of trainer clients with seeded, heavy-tailed (Pareto)
think times hammering one service, and reports what the fleet saw:
p50/p90/p99 grant latency, shed and retry rates, and the server's own
queue/budget counters -- written to ``BENCH_service.json`` with a
schema-versioned layout (like ``BENCH_profiling.json``) so successive
runs are directly comparable.  Run it via ``make bench`` or::

    PYTHONPATH=src python -m repro.service.loadgen --clients 4 --requests 25

Request *content* is deterministic per seed (job names, dataset shapes,
core asks, release points); only the wall-clock numbers vary between
machines.
"""

import argparse
import dataclasses
import json
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.service.client import (
    ServiceClient,
    ServiceDeadlineError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.config import DEFAULT_TOKEN, ServiceConfig
from repro.service.server import DecisionService
from repro.telemetry.registry import get_default_registry
from repro.telemetry.slo import (
    Objective,
    SloEvaluator,
    SloReport,
    latency_objective,
    percentile,
    rate_objective,
)

__all__ = [
    "LoadgenConfig",
    "OUTCOMES",
    "RequestResult",
    "SCHEMA",
    "default_objectives",
    "evaluate_slo",
    "main",
    "percentile",
    "render_summary",
    "run_loadgen",
]

#: Schema tag for ``BENCH_service.json``.  Bump only when the layout
#: changes incompatibly; tools reading the file key off this string.
SCHEMA = "sophon-bench-service/v1"

#: Every outcome a request can terminate with, in report order.
OUTCOMES = ("granted", "replayed", "shed", "deadline", "failed")


@dataclasses.dataclass(frozen=True)
class LoadgenConfig:
    """The load shape one run drives.

    clients: concurrent trainer threads.
    requests_per_client: plan requests each client issues.
    pareto_shape: tail index of the think-time distribution (smaller =
        heavier tail; must be > 1 so the mean exists).
    mean_think_s: average inter-request think time per client.
    deadline_s: per-request deadline budget each client enforces (and
        propagates to the server).
    release_every: a client releases its job's cores after every N
        grants, freeing budget for the rest of the fleet.
    num_samples_choices / cores_choices: the per-request job shapes,
        drawn with the client's seeded RNG.
    """

    clients: int = 4
    requests_per_client: int = 25
    seed: int = 7
    pareto_shape: float = 1.5
    mean_think_s: float = 0.002
    deadline_s: float = 5.0
    release_every: int = 5
    num_samples_choices: Tuple[int, ...] = (24, 32, 48)
    cores_choices: Tuple[int, ...] = (4, 8, 12)

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be >= 1, got {self.requests_per_client}"
            )
        if self.pareto_shape <= 1.0:
            raise ValueError(
                f"pareto_shape must be > 1 (finite mean), got {self.pareto_shape}"
            )
        if self.mean_think_s < 0:
            raise ValueError(f"mean_think_s must be >= 0, got {self.mean_think_s}")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.release_every < 1:
            raise ValueError(f"release_every must be >= 1, got {self.release_every}")


@dataclasses.dataclass
class RequestResult:
    """One request as a client experienced it."""

    client: int
    index: int
    outcome: str
    latency_s: float
    retries: int


def default_objectives(deadline_s: float) -> List[Objective]:
    """The SLOs ``make bench`` gates on, scaled to the request deadline.

    Latency bounds derive from the per-request deadline (a request that
    takes half its deadline at the median is already in trouble; p99 gets
    2x headroom for retries + heavy-tailed think-time interference), the
    error budget is zero (a failed request is a bug, not load), and up to
    half the fleet may be shed under deliberate overload.
    """
    return [
        latency_objective("plan_p50", 0.50, deadline_s * 0.5),
        latency_objective("plan_p99", 0.99, deadline_s * 2.0),
        rate_objective("error_rate", ("failed",), 0.0),
        rate_objective("shed_rate", ("shed",), 0.5),
    ]


def evaluate_slo(
    results: Sequence[RequestResult], objectives: Sequence[Objective]
) -> SloReport:
    """Batch-evaluate the run's per-request results against objectives."""
    evaluator = SloEvaluator(objectives)
    for result in results:
        evaluator.record(result.latency_s, result.outcome)
    return evaluator.evaluate()


def _think_time(rng: random.Random, shape: float, mean_s: float) -> float:
    """One heavy-tailed inter-arrival draw with the requested mean."""
    if mean_s <= 0:
        return 0.0
    # paretovariate(a) has mean a / (a - 1); rescale to mean_s.
    return mean_s * ((shape - 1.0) / shape) * rng.paretovariate(shape)


def _client_loop(
    client_index: int,
    address: Tuple[str, int],
    token: str,
    config: LoadgenConfig,
    results: List[RequestResult],
    lock: threading.Lock,
    sleep: Callable[[float], None],
    clock: Callable[[], float],
) -> None:
    rng = random.Random((config.seed << 8) ^ client_index)
    client = ServiceClient(
        address,
        token=token,
        deadline_s=config.deadline_s,
        max_attempts=4,
        seed=config.seed * 1000 + client_index,
        sleep=sleep,
        clock=clock,
    )
    job = f"trainer-{client_index}"
    grants = 0
    for index in range(config.requests_per_client):
        sleep(_think_time(rng, config.pareto_shape, config.mean_think_s))
        num_samples = rng.choice(config.num_samples_choices)
        cores = rng.choice(config.cores_choices)
        retries_before = client.stats.retries
        started = clock()
        try:
            grant = client.plan(
                job,
                num_samples=num_samples,
                seed=config.seed,
                storage_cores=cores,
            )
            outcome = "replayed" if grant.replayed else "granted"
            grants += 1
        except ServiceUnavailableError:
            outcome = "shed"
        except ServiceDeadlineError:
            outcome = "deadline"
        except ServiceError:
            outcome = "failed"
        latency = clock() - started
        with lock:
            results.append(
                RequestResult(
                    client=client_index,
                    index=index,
                    outcome=outcome,
                    latency_s=latency,
                    retries=client.stats.retries - retries_before,
                )
            )
            # Per-request latency distribution by outcome; the lock keeps
            # concurrent clients' histogram updates serialized.
            get_default_registry().histogram(
                "loadgen_request_seconds",
                "per-request loadgen latency by outcome",
                labels=["outcome"],
            ).observe(latency, outcome=outcome)
        if grants and grants % config.release_every == 0:
            try:
                client.release(job)
            except ServiceError:
                pass  # budget pressure persists; the run report shows it


def run_loadgen(
    address: Tuple[str, int],
    token: str = DEFAULT_TOKEN,
    config: LoadgenConfig = LoadgenConfig(),
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
    objectives: Optional[Sequence[Objective]] = None,
) -> Dict[str, object]:
    """Drive the fleet against a live service; returns the report dict.

    The report's ``slo`` section (schema ``sophon-slo/v1``) evaluates
    ``objectives`` (default: :func:`default_objectives` scaled to the
    config's deadline) over every per-request result.
    """
    results: List[RequestResult] = []
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(i, address, token, config, results, lock, sleep, clock),
            daemon=True,
            name=f"loadgen-client-{i}",
        )
        for i in range(config.clients)
    ]
    started = clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = clock() - started

    outcomes = {name: 0 for name in OUTCOMES}
    for result in results:
        outcomes[result.outcome] += 1
    total = len(results)
    latencies = [r.latency_s for r in results]
    retries = sum(r.retries for r in results)
    served = outcomes["granted"] + outcomes["replayed"]

    server: Dict[str, object] = {}
    try:
        status = ServiceClient(
            address, token=token, deadline_s=2.0, sleep=sleep, clock=clock
        ).status()
        server = {
            "queue_capacity": status.get("queue_capacity"),
            "queue_max_depth": status.get("queue_max_depth"),
            "shed_count": status.get("shed_count"),
            "committed_cores": status.get("committed_cores"),
            "grants": status.get("grants"),
        }
    except ServiceError:
        pass  # a drained/killed server still yields a client-side report

    slo_report = evaluate_slo(
        results,
        objectives
        if objectives is not None
        else default_objectives(config.deadline_s),
    )

    return {
        "schema": SCHEMA,
        "config": dataclasses.asdict(config),
        "requests": total,
        "elapsed_s": elapsed,
        "throughput_rps": total / elapsed if elapsed > 0 else None,
        "outcomes": outcomes,
        "served": served,
        "shed_rate": outcomes["shed"] / total if total else 0.0,
        "retry_rate": retries / total if total else 0.0,
        "retries": retries,
        "latency_s": {
            "p50": percentile(latencies, 0.50),
            "p90": percentile(latencies, 0.90),
            "p99": percentile(latencies, 0.99),
            "max": max(latencies),
            "mean": sum(latencies) / len(latencies),
        }
        if latencies
        else None,
        "slo": slo_report.to_dict(),
        "server": server,
    }


def render_summary(report: Dict[str, object]) -> str:
    """A terse human-readable digest of one report."""
    latency = report["latency_s"]
    outcomes = report["outcomes"]
    assert isinstance(outcomes, dict)
    parts = ", ".join(f"{name} {outcomes[name]}" for name in OUTCOMES)
    lines = [
        f"service loadgen ({report['schema']}): {report['requests']} requests "
        f"in {report['elapsed_s']:.2f}s",
        f"  outcomes: {parts}",
        f"  shed rate {report['shed_rate']:.1%}, retry rate "
        f"{report['retry_rate']:.2f}/req",
    ]
    if isinstance(latency, dict):
        lines.append(
            f"  latency p50 {latency['p50'] * 1000:.1f}ms, "
            f"p90 {latency['p90'] * 1000:.1f}ms, "
            f"p99 {latency['p99'] * 1000:.1f}ms, "
            f"max {latency['max'] * 1000:.1f}ms"
        )
    slo = report.get("slo")
    if isinstance(slo, dict):
        for objective in slo.get("objectives", ()):
            verdict = "ok" if objective["passed"] else "VIOLATED"
            observed = objective["observed"]
            shown = "n/a" if observed is None else f"{observed:.6g}"
            lines.append(
                f"  slo {objective['name']}: {shown} vs <= "
                f"{objective['threshold']:g} [{verdict}]"
            )
        lines.append(
            f"  slo overall: {'pass' if slo.get('passed') else 'FAIL'}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drive heavy-tailed trainer load at a decision service "
        "and write BENCH_service.json."
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=25,
                        help="plan requests per client")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mean-think-s", type=float, default=0.002)
    parser.add_argument("--deadline-s", type=float, default=5.0)
    parser.add_argument("--queue-capacity", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cores", type=int, default=48,
                        help="storage-CPU budget admission control protects")
    parser.add_argument("--address", default=None,
                        help="host:port of a running service (default: spin "
                        "one up in-process)")
    parser.add_argument("--token", default=DEFAULT_TOKEN)
    parser.add_argument("--out", default="BENCH_service.json",
                        help="where to write the JSON report")
    parser.add_argument("--slo-p50-s", type=float, default=None,
                        help="p50 latency bound (default: deadline/2)")
    parser.add_argument("--slo-p99-s", type=float, default=None,
                        help="p99 latency bound (default: 2x deadline)")
    parser.add_argument("--slo-error-rate", type=float, default=None,
                        help="max rate of failed requests (default: 0)")
    parser.add_argument("--slo-shed-rate", type=float, default=None,
                        help="max rate of shed requests (default: 0.5)")
    parser.add_argument("--no-slo-gate", action="store_true",
                        help="report SLOs but do not fail the run on them")
    args = parser.parse_args(argv)

    config = LoadgenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        mean_think_s=args.mean_think_s,
        deadline_s=args.deadline_s,
    )
    objectives = default_objectives(config.deadline_s)
    overrides = {
        "plan_p50": args.slo_p50_s,
        "plan_p99": args.slo_p99_s,
        "error_rate": args.slo_error_rate,
        "shed_rate": args.slo_shed_rate,
    }
    objectives = [
        dataclasses.replace(obj, threshold=overrides[obj.name])
        if overrides.get(obj.name) is not None
        else obj
        for obj in objectives
    ]
    if args.address is not None:
        host, _, port = args.address.partition(":")
        report = run_loadgen(
            (host, int(port)), token=args.token, config=config,
            objectives=objectives,
        )
    else:
        service_config = ServiceConfig(
            token=args.token,
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            total_storage_cores=args.cores,
        )
        with DecisionService(service_config) as service:
            report = run_loadgen(
                service.address, token=args.token, config=config,
                objectives=objectives,
            )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_summary(report))
    print(f"report written to {args.out}")
    outcomes = report["outcomes"]
    assert isinstance(outcomes, dict)
    if outcomes["failed"] or not report["served"]:
        print("FAIL: requests failed outright (not shed, failed)")
        return 1
    slo = report["slo"]
    assert isinstance(slo, dict)
    if not slo["passed"] and not args.no_slo_gate:
        print("FAIL: SLO violated (see the slo lines above)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
