"""Mapping fault schedules onto the live decision service.

A :class:`~repro.faults.FaultSchedule` speaks one time axis; the service
speaks *request indices* (worker-side, one plan request == one time
unit), the same call-index-clock idiom
:class:`~repro.faults.injector.FaultInjector` uses for the in-memory
channel.  :class:`ScheduleDisturbance` translates brownout and CPU-drift
windows into extra per-request planning latency, and
:func:`crash_indices` extracts the request indices at which the chaos
harness should kill (and later restart) the service.

Both translations are pure functions of the schedule, so a chaos run is
as reproducible as the schedule itself.
"""

import math
from typing import List

from repro.faults.schedule import FaultSchedule


class ScheduleDisturbance:
    """Per-request latency injection derived from a fault schedule.

    Passed as the ``disturbance`` hook of
    :class:`~repro.service.server.DecisionService`; called with the
    worker-side request index and returns extra seconds to stall before
    planning.

    base_plan_cost_s: the nominal cost one plan request represents; a CPU
        drift of factor ``f`` stalls for ``(f - 1) * base_plan_cost_s``
        (the slowdown the drifted CPUs would have added), and a brownout
        adds its ``extra_rtt_s`` on top.
    """

    def __init__(
        self, schedule: FaultSchedule, base_plan_cost_s: float = 0.005
    ) -> None:
        if base_plan_cost_s < 0:
            raise ValueError(
                f"base_plan_cost_s must be >= 0, got {base_plan_cost_s}"
            )
        self.schedule = schedule
        self.base_plan_cost_s = base_plan_cost_s
        self.invocations = 0
        self.stalled_requests = 0
        self.total_stall_s = 0.0

    def __call__(self, request_index: int) -> float:
        if request_index < 0:
            raise ValueError(
                f"request_index must be >= 0, got {request_index}"
            )
        self.invocations += 1
        t = float(request_index)
        extra = self.schedule.extra_rtt_s(t)
        drift = self.schedule.storage_cpu_factor(t)
        if drift > 1.0:
            extra += (drift - 1.0) * self.base_plan_cost_s
        if extra > 0:
            self.stalled_requests += 1
            self.total_stall_s += extra
        return extra


def crash_indices(schedule: FaultSchedule, horizon: int) -> List[int]:
    """Request indices at which the harness kills the service.

    One kill per crash window, at ``ceil(start)`` -- the first request
    index the window covers.  Windows opening at or past ``horizon``
    (the scripted run's request count) never fire and are dropped.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    indices = sorted(
        {math.ceil(window.start) for window in schedule.crashes}
    )
    return [index for index in indices if index < horizon]
