"""Job specs and the deterministic planner the service workers run.

A :class:`JobSpec` is the validated, canonical form of a ``/v1/plan``
request body.  Everything the plan depends on is in the spec, so the
planner is a pure function of it: the same spec always yields the same
splits, which is what makes journal replay and the crash-recovery
byte-identity gate possible.  The spec's :meth:`~JobSpec.params_digest`
is the idempotency key -- a client re-sending a request after a crash is
answered from the journal, not re-planned.

Profiled records are the expensive part (the paper's stage-two pass), so
the planner keeps a small LRU of them keyed by the profile-relevant
subset of the spec; a fleet of trainers sharing a dataset shape hits the
cache and only pays the decision-engine sweep.
"""

import collections
import dataclasses
import hashlib
import json
import threading
from typing import List, Mapping, Optional, Tuple

from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.catalog import make_imagenet, make_openimages
from repro.parallel import ParallelSpec
from repro.preprocessing.pipeline import standard_pipeline
from repro.preprocessing.records import SampleRecord
from repro.telemetry.flight import FlightRecorder
from repro.workloads.models import get_model_profile

_DATASETS = ("openimages", "imagenet")


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One job's plan request, validated and canonicalized."""

    job: str
    dataset: str
    num_samples: int
    seed: int
    model: str
    gpu: str
    storage_cores: int

    def __post_init__(self) -> None:
        if not self.job:
            raise ValueError("job name must be non-empty")
        if self.dataset not in _DATASETS:
            raise ValueError(
                f"dataset must be one of {_DATASETS}, got {self.dataset!r}"
            )
        if self.num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {self.num_samples}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.storage_cores < 1:
            raise ValueError(
                f"storage_cores must be >= 1, got {self.storage_cores}"
            )

    @classmethod
    def from_request(cls, body: Mapping[str, object]) -> "JobSpec":
        """Build a spec from a request body; raises ValueError on bad input."""
        known = {
            "job", "dataset", "num_samples", "seed", "model", "gpu",
            "storage_cores",
        }
        unknown = set(body) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        try:
            return cls(
                job=str(body["job"]),
                dataset=str(body.get("dataset", "openimages")),
                num_samples=int(body.get("num_samples", 256)),  # type: ignore[arg-type]
                seed=int(body.get("seed", 0)),  # type: ignore[arg-type]
                model=str(body.get("model", "alexnet")),
                gpu=str(body.get("gpu", "rtx6000")),
                storage_cores=int(body.get("storage_cores", 8)),  # type: ignore[arg-type]
            )
        except KeyError as exc:
            raise ValueError(
                f"request is missing required field {exc.args[0]!r}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise ValueError(f"malformed request: {exc}") from exc

    def params_digest(self) -> str:
        """Stable idempotency key over every plan-relevant parameter."""
        canonical = json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def profile_key(self) -> Tuple[str, int, int]:
        """The subset of the spec the profiled records depend on."""
        return (self.dataset, self.num_samples, self.seed)


@dataclasses.dataclass(frozen=True)
class PlanResult:
    """What planning one spec produced."""

    splits: Tuple[int, ...]
    reason: str
    expected_epoch_s: Optional[float]
    num_offloaded: int


class ServicePlanner:
    """Runs the decision engine for job specs, with a records LRU.

    parallel: execution mode for record building (bit-identical output in
        every mode; see :mod:`repro.parallel`).
    cache_size: profiled-record LRU entries (0 disables caching).
    """

    def __init__(
        self,
        parallel: ParallelSpec = None,
        cache_size: int = 8,
        engine: Optional[DecisionEngine] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.parallel = parallel
        self.cache_size = cache_size
        self.engine = engine if engine is not None else DecisionEngine(DecisionConfig())
        #: Flight recorder receiving ``service.plan`` spans for traced
        #: requests; the owning service attaches its own (a planner shared
        #: across restarts is re-pointed at the live service's recorder).
        self.recorder: Optional[FlightRecorder] = None
        self._records: "collections.OrderedDict[Tuple[str, int, int], List[SampleRecord]]" = (
            collections.OrderedDict()
        )
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    def _records_for(self, spec: JobSpec) -> List[SampleRecord]:
        key = spec.profile_key()
        with self._lock:
            if key in self._records:
                self._records.move_to_end(key)
                self.cache_hits += 1
                return self._records[key]
        if spec.dataset == "openimages":
            dataset = make_openimages(num_samples=spec.num_samples, seed=spec.seed)
        else:
            dataset = make_imagenet(num_samples=spec.num_samples, seed=spec.seed)
        context = PolicyContext(
            dataset=dataset,
            pipeline=standard_pipeline(),
            spec=standard_cluster(storage_cores=spec.storage_cores),
            model=get_model_profile(spec.model, spec.gpu),
            seed=spec.seed,
            parallel=self.parallel,
        )
        records = context.records()
        with self._lock:
            self.cache_misses += 1
            if self.cache_size > 0:
                self._records[key] = records
                while len(self._records) > self.cache_size:
                    self._records.popitem(last=False)
        return records

    def plan(self, spec: JobSpec, trace: Optional[str] = None) -> PlanResult:
        """Plan ``spec`` deterministically (raises ValueError on bad model)."""
        recorder = self.recorder
        if trace is None or recorder is None:
            return self._plan(spec)
        recorder.begin(trace, "service.plan", job=spec.job)
        try:
            result = self._plan(spec)
        except ValueError:
            recorder.end(trace, "service.plan", outcome="bad_request")
            raise
        recorder.end(
            trace, "service.plan",
            reason=result.reason, num_offloaded=result.num_offloaded,
        )
        return result

    def _plan(self, spec: JobSpec) -> PlanResult:
        try:
            model = get_model_profile(spec.model, spec.gpu)
        except KeyError as exc:
            raise ValueError(f"unknown model or gpu: {exc}") from exc
        records = self._records_for(spec)
        cluster = standard_cluster(storage_cores=spec.storage_cores)
        plan = self.engine.plan(
            records,
            cluster,
            gpu_time_s=model.epoch_gpu_time_s(spec.num_samples),
        )
        return PlanResult(
            splits=tuple(plan.splits),
            reason=plan.reason,
            expected_epoch_s=(
                plan.expected.epoch_time_s if plan.expected is not None else None
            ),
            num_offloaded=plan.num_offloaded,
        )
