"""Append-only recovery journal for granted plans and budget state.

Crash recovery is the reason this file exists: the decision service
journals every grant (the job, its parameter digest, the cores it
committed, and the full split vector) *before* acknowledging it, so a
server killed mid-epoch restarts from the journal and resumes with
byte-identical grants -- same sequence numbers, same splits, same budget
ledger.  ``repro.harness.service_chaos`` gates exactly that property.

Format: one JSON object per line, canonical encoding (sorted keys, no
spaces), each carrying a ``crc`` field -- the CRC32 of the line with the
``crc`` key removed.  Deliberately **no wall timestamps**: a journal is a
pure function of the request sequence, which is what makes the
uninterrupted-vs-resumed byte-identity gate possible.

Torn tails are expected (that is what a crash mid-append looks like): a
trailing line that fails to parse or checksum is dropped on replay and
truncated away on the next open.  A corrupt line *before* the tail means
the file was damaged some other way and raises
:class:`JournalCorruptError` -- recovery must not silently skip grants.
"""

import dataclasses
import json
import os
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.flight import FlightRecorder

#: Schema tag written in the journal's header line.  Bump only on
#: incompatible layout changes; replay refuses unknown schemas.
SCHEMA = "sophon-service-journal/v1"


class JournalCorruptError(Exception):
    """A non-tail journal line failed to parse or checksum."""


@dataclasses.dataclass(frozen=True)
class GrantRecord:
    """One granted plan: the unit of the byte-identity recovery gate."""

    seq: int
    job: str
    params_digest: str
    cores: int
    splits: Tuple[int, ...]
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "grant",
            "seq": self.seq,
            "job": self.job,
            "params_digest": self.params_digest,
            "cores": self.cores,
            "splits": list(self.splits),
            "reason": self.reason,
        }


@dataclasses.dataclass(frozen=True)
class ReleaseRecord:
    """A job gave its committed cores back to the budget."""

    seq: int
    job: str
    cores: int

    def to_dict(self) -> Dict[str, object]:
        return {"kind": "release", "seq": self.seq, "job": self.job,
                "cores": self.cores}


@dataclasses.dataclass(frozen=True)
class CheckpointRecord:
    """Budget state at a clean shutdown (written by graceful drain)."""

    seq: int
    committed: Tuple[Tuple[str, int], ...]  # (job, cores), sorted by job

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "checkpoint",
            "seq": self.seq,
            "committed": {job: cores for job, cores in self.committed},
        }


JournalRecord = Union[GrantRecord, ReleaseRecord, CheckpointRecord]


def encode_line(record: Mapping[str, object]) -> str:
    """Canonical journal line for ``record`` (without trailing newline)."""
    body = json.dumps(dict(record), sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    stamped = dict(record)
    stamped["crc"] = crc
    return json.dumps(stamped, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> Dict[str, object]:
    """Parse and checksum one journal line; raises ValueError on damage."""
    record = json.loads(line)
    if not isinstance(record, dict) or "crc" not in record:
        raise ValueError("journal line carries no crc")
    crc = record.pop("crc")
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        raise ValueError("journal line failed its crc")
    return record


@dataclasses.dataclass
class JournalState:
    """What replaying a journal recovered.

    grants: every surviving grant, in sequence order.
    committed: cores each journalled job still holds (grants minus
        releases; a re-grant for the same job replaces its old commit).
    next_seq: the sequence number the resumed server continues from.
    truncated_tail: True when a torn trailing line was dropped.
    """

    grants: List[GrantRecord] = dataclasses.field(default_factory=list)
    committed: Dict[str, int] = dataclasses.field(default_factory=dict)
    next_seq: int = 1
    truncated_tail: bool = False

    @property
    def active_grants(self) -> Dict[str, GrantRecord]:
        """The latest grant per job that is still committed."""
        latest: Dict[str, GrantRecord] = {}
        for grant in self.grants:
            latest[grant.job] = grant
        return {job: latest[job] for job in latest if job in self.committed}


def _record_from_dict(record: Mapping[str, object]) -> Optional[JournalRecord]:
    kind = record.get("kind")
    if kind == "grant":
        return GrantRecord(
            seq=int(record["seq"]),  # type: ignore[arg-type]
            job=str(record["job"]),
            params_digest=str(record["params_digest"]),
            cores=int(record["cores"]),  # type: ignore[arg-type]
            splits=tuple(int(s) for s in record["splits"]),  # type: ignore[union-attr]
            reason=str(record["reason"]),
        )
    if kind == "release":
        return ReleaseRecord(
            seq=int(record["seq"]),  # type: ignore[arg-type]
            job=str(record["job"]),
            cores=int(record["cores"]),  # type: ignore[arg-type]
        )
    if kind == "checkpoint":
        committed = record["committed"]
        if not isinstance(committed, dict):
            raise ValueError("checkpoint committed must be a mapping")
        return CheckpointRecord(
            seq=int(record["seq"]),  # type: ignore[arg-type]
            committed=tuple(sorted((str(j), int(c)) for j, c in committed.items())),
        )
    if kind == "header":
        return None
    raise ValueError(f"unknown journal record kind {kind!r}")


def replay(path: str) -> JournalState:
    """Rebuild the service state a journal at ``path`` encodes.

    A missing file replays to the empty state (fresh server).  A torn
    trailing line is dropped (and flagged); corruption anywhere else
    raises :class:`JournalCorruptError`.
    """
    state = JournalState()
    if not os.path.exists(path):
        return state
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    parsed: List[Mapping[str, object]] = []
    for index, line in enumerate(lines):
        try:
            parsed.append(decode_line(line))
        except ValueError as exc:
            if index == len(lines) - 1:
                state.truncated_tail = True
                break
            raise JournalCorruptError(
                f"{path}:{index + 1}: {exc} (not the tail -- refusing to skip)"
            ) from exc
    if parsed:
        header = parsed[0]
        if header.get("kind") != "header" or header.get("schema") != SCHEMA:
            raise JournalCorruptError(
                f"{path}: journal header missing or schema is not {SCHEMA}"
            )
    for record in parsed[1:]:
        entry = _record_from_dict(record)
        if isinstance(entry, GrantRecord):
            state.grants.append(entry)
            state.committed[entry.job] = entry.cores
            state.next_seq = max(state.next_seq, entry.seq + 1)
        elif isinstance(entry, ReleaseRecord):
            state.committed.pop(entry.job, None)
            state.next_seq = max(state.next_seq, entry.seq + 1)
        elif isinstance(entry, CheckpointRecord):
            state.committed = {job: cores for job, cores in entry.committed}
            state.next_seq = max(state.next_seq, entry.seq + 1)
    return state


class PlanJournal:
    """The append side: open, append records durably, checkpoint, close.

    Opening a journal replays whatever is already there (exposed as
    :attr:`recovered`), truncates any torn tail, and appends from then
    on.  Every append is flushed (and fsynced when ``sync=True``) before
    returning -- a grant is never acknowledged before it is durable.
    """

    def __init__(
        self,
        path: str,
        sync: bool = True,
        recorder: Optional[FlightRecorder] = None,
    ) -> None:
        self.path = path
        self.sync = sync
        #: Flight recorder receiving ``service.journal_fsync`` spans for
        #: traced appends.  Spans never enter the journal itself -- the
        #: bytes on disk are identical with and without a recorder.
        self.recorder = recorder
        self.recovered = replay(path)
        fresh = not os.path.exists(path)
        if self.recovered.truncated_tail:
            self._truncate_torn_tail()
        self._handle = open(path, "a", encoding="utf-8")
        if fresh:
            self._write({"kind": "header", "schema": SCHEMA, "seq": 0})

    def _truncate_torn_tail(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        kept = []
        for line in lines:
            try:
                decode_line(line)
            except ValueError:
                break
            kept.append(line)
        with open(self.path, "w", encoding="utf-8") as handle:
            for line in kept:
                handle.write(line + "\n")

    def _write(self, record: Mapping[str, object]) -> None:
        if self._handle.closed:
            raise ValueError("journal is closed")
        self._handle.write(encode_line(record) + "\n")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    def append_grant(self, grant: GrantRecord, trace: Optional[str] = None) -> None:
        if self.recorder is not None and trace is not None:
            self.recorder.begin(
                trace, "service.journal_fsync", kind="grant", seq=grant.seq
            )
            try:
                self._write(grant.to_dict())
            finally:
                self.recorder.end(trace, "service.journal_fsync")
            return
        self._write(grant.to_dict())

    def append_release(
        self, release: ReleaseRecord, trace: Optional[str] = None
    ) -> None:
        if self.recorder is not None and trace is not None:
            self.recorder.begin(
                trace, "service.journal_fsync", kind="release", seq=release.seq
            )
            try:
                self._write(release.to_dict())
            finally:
                self.recorder.end(trace, "service.journal_fsync")
            return
        self._write(release.to_dict())

    def append_checkpoint(self, seq: int, committed: Mapping[str, int]) -> None:
        record = CheckpointRecord(
            seq=seq, committed=tuple(sorted(committed.items()))
        )
        self._write(record.to_dict())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "PlanJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_grants(path: str) -> Sequence[GrantRecord]:
    """All grants a journal holds, in order (the byte-identity gate input)."""
    return replay(path).grants
