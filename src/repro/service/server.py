"""The always-on decision service: HTTP front end, worker pool, recovery.

Request path for ``POST /v1/plan``::

    handler thread                     worker thread
    --------------                     -------------
    auth + parse + deadline
    submit to bounded queue  ----->    take
      (full -> shed 503)               deadline still live?
    wait on task event                 admission vs core budget
      (deadline -> 504,                  (oversubscribed -> 503)
       mark abandoned)                 plan (decision engine)
                                       journal grant, then
    respond task.status    <-----      finish task

The grant is journalled *before* the response is sent, so a crash at any
point leaves the journal a prefix of the uninterrupted run's journal --
the invariant the crash-recovery byte-identity gate checks.  Shutdown
comes in two flavours: :meth:`drain` (graceful: stop accepting, finish
in-flight work, checkpoint the journal) and :meth:`kill` (abrupt: drop
everything, no checkpoint -- the chaos harness's crash button).
"""

import hmac
import http.server
import json
import socketserver
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.rpc.breaker import CircuitBreaker
from repro.service.budget import CoreBudgetLedger
from repro.service.config import ServiceConfig
from repro.service.journal import GrantRecord, PlanJournal, ReleaseRecord
from repro.service.planner import JobSpec, ServicePlanner
from repro.service.queue import BoundedWorkQueue, PlanTask, QueueFullError
from repro.telemetry.exporters import render_prometheus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.logs import StructuredLogger
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import TRACE_HEADER, Tracer, parse_trace_header

#: Extra seconds a handler waits past the request deadline before giving
#: up on the worker -- covers the response hand-off itself.
_DEADLINE_GRACE_S = 0.05

#: Disturbance hook signature: request index -> extra seconds of delay
#: injected before planning (the chaos brownout / CPU-drift lever).
Disturbance = Callable[[int], float]


class _ServiceHTTPServer(socketserver.ThreadingMixIn, http.server.HTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class DecisionService:
    """Serves offload plans to a fleet of trainers, robustly.

    clock/sleep are injectable (tests drive deadlines without real
    waiting where possible); ``disturbance`` lets the chaos harness
    inject per-request latency on a deterministic request-index axis.
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        planner: Optional[ServicePlanner] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        disturbance: Optional[Disturbance] = None,
        breakers: Optional[Mapping[str, CircuitBreaker]] = None,
    ) -> None:
        self.config = config
        self.planner = (
            planner
            if planner is not None
            else ServicePlanner(cache_size=config.plan_cache_size)
        )
        self._clock = clock
        self._sleep = sleep
        self.disturbance = disturbance
        #: Full span stream when ``config.trace``; always None otherwise.
        self.tracer: Optional[Tracer] = Tracer(clock=clock) if config.trace else None
        #: Always-on bounded ring of recent spans + log records; the tee
        #: keeps the unbounded tracer in sync when tracing is enabled.
        self.flight = FlightRecorder(
            capacity=config.flight_capacity, clock=clock, tee=self.tracer
        )
        self.log = StructuredLogger(
            "repro.service", clock=clock, sink=self.flight.record_log
        )
        #: Circuit breakers surfaced in ``/v1/status`` (name -> breaker);
        #: the service only reads their transition history.
        self.breakers: Dict[str, CircuitBreaker] = dict(breakers or {})
        self.ledger = CoreBudgetLedger(config.total_storage_cores)
        self.queue = BoundedWorkQueue(config.queue_capacity, recorder=self.flight)
        self.planner.recorder = self.flight
        #: Idempotency map: (job, params_digest) -> the grant already made.
        self._grants: Dict[Tuple[str, str], GrantRecord] = {}
        self._seq = 1
        self._state_lock = threading.Lock()
        self._index_lock = threading.Lock()
        self._request_index = 0
        self._journal: Optional[PlanJournal] = None
        self.recovered_grants = 0
        if config.journal_path is not None:
            self._journal = PlanJournal(
                config.journal_path, sync=config.sync_journal,
                recorder=self.flight,
            )
            state = self._journal.recovered
            self.ledger.restore(state.committed)
            for grant in state.grants:
                self._grants[(grant.job, grant.params_digest)] = grant
            self._seq = state.next_seq
            self.recovered_grants = len(state.grants)
            if state.grants:
                self.log.info(
                    "recovered grants from journal",
                    grants=len(state.grants),
                    next_seq=self._seq,
                    committed_jobs=len(state.committed),
                    journal=config.journal_path,
                )
        self._draining = False
        self._killed = False
        self._ready = False
        self._stop_workers = threading.Event()
        self._workers: List[threading.Thread] = []
        self._httpd: Optional[_ServiceHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self.drain_seconds: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "DecisionService":
        if self._httpd is not None:
            raise ValueError("service already started")
        if self._killed:
            raise ValueError("service was killed; build a fresh one to restart")
        self._httpd = _ServiceHTTPServer(
            (self.config.host, self.config.port), _make_handler(self)
        )
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="service-http",
        )
        self._http_thread.start()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, daemon=True, name=f"service-worker-{index}"
            )
            worker.start()
            self._workers.append(worker)
        self._ready = True
        host, port = self.address
        self.log.info("decision service listening", host=host, port=port)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise ValueError("service is not started")
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    @property
    def is_ready(self) -> bool:
        return self._ready and not self._draining and not self._killed

    def drain(self) -> float:
        """Graceful shutdown: stop accepting, finish in-flight, checkpoint.

        Returns the drain duration in (service-clock) seconds.  Idempotent.
        """
        if self._killed:
            raise ValueError("service was killed; nothing to drain")
        if self.drain_seconds is not None:
            return self.drain_seconds
        started = self._clock()
        self._draining = True
        self._ready = False
        self.queue.join()
        self._stop_all_workers()
        with self._state_lock:
            if self._journal is not None:
                # The fsync must happen under the lock: journal order is
                # seq order, which is what crash recovery byte-compares.
                self._journal.append_checkpoint(  # sophon-lint: disable=GUARD02
                    self._next_seq_locked(), self.ledger.committed()
                )
                self._journal.close()
        self._shutdown_http()
        self.drain_seconds = self._clock() - started
        get_default_registry().gauge(
            "service_drain_seconds", "duration of the last graceful drain"
        ).set(self.drain_seconds)
        self.log.info("drained", seconds=self.drain_seconds)
        self._dump_flight()
        return self.drain_seconds

    def kill(self) -> int:
        """Abrupt stop: no checkpoint, queued work dropped.  Returns drops.

        The closest an in-process service gets to ``kill -9``: the journal
        keeps exactly the grants made so far (each was durable before its
        response), and everything else is lost.  A fresh
        :class:`DecisionService` on the same journal path recovers.
        """
        self._killed = True
        self._ready = False
        self._shutdown_http()
        self._stop_all_workers()
        dropped = self.queue.drain_pending()
        if dropped:
            get_default_registry().counter(
                "service_shed_total", "plan requests shed by cause",
                labels=["cause"],
            ).inc(dropped, cause="killed")
        with self._state_lock:
            if self._journal is not None:
                self._journal.close()
        self.log.warning("service killed", dropped=dropped)
        self._dump_flight()
        return dropped

    def _dump_flight(self) -> None:
        """Write the flight-recorder timeline if the config asks for one."""
        if self.config.flight_path is not None:
            self.flight.dump(self.config.flight_path)

    def _stop_all_workers(self) -> None:
        self._stop_workers.set()
        self.queue.push_stop(len(self._workers))
        for worker in self._workers:
            worker.join(timeout=self.config.drain_timeout_s)
        self._workers = []

    def _shutdown_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None and self._http_thread.is_alive():
            self._http_thread.join(timeout=2.0)

    def __enter__(self) -> "DecisionService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        if not self._killed and self.drain_seconds is None:
            self.drain()

    # -- the worker side -----------------------------------------------------

    def _next_seq_locked(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _worker_loop(self) -> None:
        while True:
            task = self.queue.take(timeout=0.05)
            if task is None:
                if self._stop_workers.is_set():
                    return
                continue
            try:
                self._process(task)
            except Exception as exc:  # a worker must never die silently
                self.log.error(
                    "worker failed processing a task",
                    trace=task.trace_id,
                    error_type=type(exc).__name__,
                    error=str(exc),
                )
                task.finish(500, {"error": f"internal error: {exc}"},
                            outcome="internal_error")
            finally:
                self.queue.task_done()

    def _admission(self, decision: str) -> None:
        get_default_registry().counter(
            "service_admissions_total",
            "worker-side plan request outcomes",
            labels=["decision"],
        ).inc(decision=decision)

    def _process(self, task: PlanTask) -> None:
        trace = task.trace_id
        with self._index_lock:
            index = self._request_index
            self._request_index += 1
        if task.abandoned:
            self._admission("abandoned")
            if trace is not None:
                self.flight.instant(trace, "service.abandoned")
            return
        if task.deadline_at is not None and self._clock() >= task.deadline_at:
            self._admission("deadline_expired")
            if trace is not None:
                self.flight.instant(trace, "service.deadline_expired")
            task.finish(
                504,
                {"error": "deadline expired while queued"},
                outcome="deadline",
            )
            return
        if self.disturbance is not None:
            extra = self.disturbance(index)
            if extra > 0:
                self._sleep(extra)
        try:
            spec = JobSpec.from_request(task.request)
        except ValueError as exc:
            self._admission("bad_request")
            task.finish(400, {"error": str(exc)}, outcome="bad_request")
            return
        if spec.num_samples > self.config.max_samples:
            self._admission("bad_request")
            task.finish(
                400,
                {"error": (
                    f"num_samples {spec.num_samples} exceeds the service cap "
                    f"of {self.config.max_samples}"
                )},
                outcome="bad_request",
            )
            return
        digest = spec.params_digest()
        with self._state_lock:
            existing = self._grants.get((spec.job, digest))
        if existing is not None and self.ledger.holds(spec.job) == existing.cores:
            # Idempotent replay: the client re-sent a request we already
            # granted (typically after a crash ate the response).
            self._admission("replayed")
            if trace is not None:
                self.flight.instant(
                    trace, "service.replayed", job=spec.job, seq=existing.seq
                )
            task.finish(200, self._grant_body(existing, replayed=True),
                        outcome="replayed")
            return
        if trace is not None:
            self.flight.begin(
                trace, "service.admission",
                job=spec.job, cores=spec.storage_cores,
            )
        decision = self.ledger.commit(spec.job, spec.storage_cores)
        if trace is not None:
            self.flight.end(
                trace, "service.admission", admitted=decision.admitted
            )
        if not decision.admitted:
            self._admission("budget_rejected")
            task.finish(
                503,
                {"error": decision.reason},
                outcome="budget",
                retry_after_s=self.config.retry_after_s,
            )
            return
        try:
            result = self.planner.plan(spec, trace=trace)
        except ValueError as exc:
            # Roll the commitment back to what it was before this request.
            if decision.previous_cores > 0:
                self.ledger.commit(spec.job, decision.previous_cores)
            else:
                self.ledger.release(spec.job)
            self._admission("bad_request")
            task.finish(400, {"error": str(exc)}, outcome="bad_request")
            return
        with self._state_lock:
            grant = GrantRecord(
                seq=self._next_seq_locked(),
                job=spec.job,
                params_digest=digest,
                cores=spec.storage_cores,
                splits=result.splits,
                reason=result.reason,
            )
            if self._journal is not None:
                # Sequenced-append invariant: the fsync'd journal line
                # must land in seq order, so it stays under the lock.
                self._journal.append_grant(grant, trace=trace)  # sophon-lint: disable=GUARD02
            self._grants[(spec.job, digest)] = grant
        self._admission("granted")
        registry = get_default_registry()
        registry.gauge(
            "service_committed_cores", "storage cores committed to jobs"
        ).set(self.ledger.committed_cores)
        task.finish(
            200,
            self._grant_body(
                grant, replayed=False, expected_epoch_s=result.expected_epoch_s
            ),
            outcome="granted",
        )

    def _grant_body(
        self,
        grant: GrantRecord,
        replayed: bool,
        expected_epoch_s: Optional[float] = None,
    ) -> Dict[str, object]:
        body: Dict[str, object] = {
            "job": grant.job,
            "seq": grant.seq,
            "params_digest": grant.params_digest,
            "granted_cores": grant.cores,
            "splits": list(grant.splits),
            "reason": grant.reason,
            "replayed": replayed,
        }
        if expected_epoch_s is not None:
            body["expected_epoch_s"] = expected_epoch_s
        return body

    # -- handler-side operations (cheap; no queue hop) -----------------------

    def authorized(self, header: Optional[str]) -> bool:
        expected = f"Bearer {self.config.token}"
        return header is not None and hmac.compare_digest(header, expected)

    def submit_plan(
        self,
        body: Dict[str, object],
        deadline_s: Optional[float],
        trace: Optional[str] = None,
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        """The handler's plan path: enqueue, wait, relay the worker's answer.

        ``trace`` (from ``X-Sophon-Trace``) brackets the whole request
        with a ``service.request`` span in the flight recorder; the queue,
        ledger, planner, and journal hang their child spans off the same
        trace id.  Returns (status, body, retry_after_s).
        """
        if trace is None:
            return self._submit_plan(body, deadline_s, None)
        self.flight.begin(trace, "service.request")
        status, response, retry_after = self._submit_plan(body, deadline_s, trace)
        self.flight.end(trace, "service.request", status=status)
        return (status, response, retry_after)

    def _submit_plan(
        self,
        body: Dict[str, object],
        deadline_s: Optional[float],
        trace: Optional[str],
    ) -> Tuple[int, Dict[str, object], Optional[float]]:
        if not self.is_ready:
            cause = "draining" if self._draining else "not_ready"
            get_default_registry().counter(
                "service_shed_total", "plan requests shed by cause",
                labels=["cause"],
            ).inc(cause=cause)
            return (
                503,
                {"error": f"service is {cause.replace('_', ' ')}"},
                self.config.retry_after_s,
            )
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        now = self._clock()
        task = PlanTask(
            request=body,
            enqueued_at=now,
            deadline_at=(now + deadline_s) if deadline_s is not None else None,
            trace_id=trace,
        )
        try:
            self.queue.submit(task)
        except QueueFullError as exc:
            return (503, {"error": str(exc)}, self.config.retry_after_s)
        timeout = (
            deadline_s + _DEADLINE_GRACE_S if deadline_s is not None else None
        )
        if not task.done.wait(timeout=timeout):
            task.abandoned = True
            return (
                504,
                {"error": f"no plan within the {deadline_s}s deadline"},
                None,
            )
        return (task.status, task.body, task.retry_after_s)

    def release_job(
        self, job: str, trace: Optional[str] = None
    ) -> Tuple[int, Dict[str, object]]:
        """Free a job's committed cores (and journal the release)."""
        with self._state_lock:
            cores = self.ledger.release(job)
            if cores is None:
                return (404, {"error": f"job {job!r} holds no cores"})
            if self._journal is not None:
                # Same sequenced-append invariant as the grant path.
                self._journal.append_release(  # sophon-lint: disable=GUARD02
                    ReleaseRecord(seq=self._next_seq_locked(), job=job,
                                  cores=cores),
                    trace=trace,
                )
        get_default_registry().gauge(
            "service_committed_cores", "storage cores committed to jobs"
        ).set(self.ledger.committed_cores)
        return (200, {"job": job, "released_cores": cores})

    def status_body(self) -> Dict[str, object]:
        with self._state_lock:
            grants = len(self._grants)
            next_seq = self._seq
        return {
            "ready": self.is_ready,
            "draining": self._draining,
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.capacity,
            "queue_max_depth": self.queue.max_depth,
            "shed_count": self.queue.shed_count,
            "total_cores": self.ledger.total_cores,
            "committed_cores": self.ledger.committed_cores,
            "committed": self.ledger.committed(),
            "grants": grants,
            "recovered_grants": self.recovered_grants,
            "next_seq": next_seq,
            "breakers": {
                name: {
                    "state": breaker.state.value,
                    "transitions": [
                        t.to_dict() for t in breaker.transition_history()
                    ],
                }
                for name, breaker in sorted(self.breakers.items())
            },
        }

    def refresh_gauges(self) -> None:
        """Push live queue/budget state into the default registry.

        ``/metrics`` calls this before rendering, so the gauges exist (and
        are current) from the very first scrape instead of appearing only
        after the first plan request touches them.
        """
        registry = get_default_registry()
        registry.gauge(
            "service_queue_depth", "plan requests waiting for a worker"
        ).set(self.queue.depth)
        registry.gauge(
            "service_queue_capacity", "bounded work queue capacity"
        ).set(self.queue.capacity)
        registry.gauge(
            "service_committed_cores", "storage cores committed to jobs"
        ).set(self.ledger.committed_cores)
        registry.gauge(
            "service_budget_headroom_cores",
            "storage cores still free for admission",
        ).set(self.ledger.available_cores)


def _make_handler(service: DecisionService) -> Type[http.server.BaseHTTPRequestHandler]:
    """A request-handler class bound to one service instance."""

    class Handler(http.server.BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: object) -> None:
            service.log.debug(
                "http", client=self.address_string(), line=format % args
            )

        # -- plumbing ------------------------------------------------------

        def _respond(
            self,
            status: int,
            body: Dict[str, object],
            retry_after_s: Optional[float] = None,
            content_type: str = "application/json",
            raw: Optional[bytes] = None,
        ) -> None:
            data = (
                raw
                if raw is not None
                else json.dumps(body, sort_keys=True).encode("utf-8")
            )
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            if retry_after_s is not None:
                self.send_header("Retry-After", f"{retry_after_s:.3f}")
            self.send_header("Connection", "close")
            try:
                self.end_headers()
                self.wfile.write(data)
            except (BrokenPipeError, ConnectionResetError):
                pass  # the client hung up first (deadline, kill); nothing to tell it

        def _observe(self, endpoint: str, outcome: str, started: float) -> None:
            registry = get_default_registry()
            registry.counter(
                "service_requests_total", "HTTP requests by endpoint/outcome",
                labels=["endpoint", "outcome"],
            ).inc(endpoint=endpoint, outcome=outcome)
            registry.histogram(
                "service_request_seconds", "HTTP request latency",
                labels=["endpoint"],
            ).observe(service._clock() - started, endpoint=endpoint)

        def _authorized(self) -> bool:
            if service.authorized(self.headers.get("Authorization")):
                return True
            self._respond(401, {"error": "missing or invalid bearer token"})
            return False

        def _json_body(self) -> Optional[Dict[str, object]]:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                body = json.loads(self.rfile.read(length) or b"{}")
            except (ValueError, TypeError):
                self._respond(400, {"error": "request body is not valid JSON"})
                return None
            if not isinstance(body, dict):
                self._respond(400, {"error": "request body must be an object"})
                return None
            return body

        def _deadline_s(self) -> Optional[float]:
            header = self.headers.get("X-Sophon-Deadline-S")
            if header is None:
                return None
            try:
                value = float(header)
            except ValueError:
                return None
            return value if value > 0 else None

        # -- routes --------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            started = service._clock()
            if self.path == "/healthz":
                self._respond(200, {"status": "alive"})
                self._observe("healthz", "ok", started)
            elif self.path == "/readyz":
                if service.is_ready:
                    self._respond(200, {"status": "ready"})
                    self._observe("readyz", "ok", started)
                else:
                    self._respond(
                        503, {"status": "not ready"},
                        retry_after_s=service.config.retry_after_s,
                    )
                    self._observe("readyz", "not_ready", started)
            elif self.path == "/metrics":
                service.refresh_gauges()
                text = render_prometheus(get_default_registry())
                self._respond(
                    200, {}, content_type="text/plain; version=0.0.4",
                    raw=text.encode("utf-8"),
                )
                self._observe("metrics", "ok", started)
            elif self.path == "/v1/status":
                if not self._authorized():
                    self._observe("status", "unauthorized", started)
                    return
                self._respond(200, service.status_body())
                self._observe("status", "ok", started)
            elif self.path == "/v1/debug/flight":
                if not self._authorized():
                    self._observe("flight", "unauthorized", started)
                    return
                self._respond(200, service.flight.to_chrome_trace())
                self._observe("flight", "ok", started)
            else:
                self._respond(404, {"error": f"no such endpoint {self.path}"})
                self._observe("unknown", "not_found", started)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            started = service._clock()
            if self.path not in ("/v1/plan", "/v1/release", "/v1/drain"):
                self._respond(404, {"error": f"no such endpoint {self.path}"})
                self._observe("unknown", "not_found", started)
                return
            if not self._authorized():
                self._observe(self.path.rsplit("/", 1)[-1], "unauthorized",
                              started)
                return
            body = self._json_body()
            if body is None:
                self._observe(self.path.rsplit("/", 1)[-1], "bad_request",
                              started)
                return
            trace = parse_trace_header(self.headers.get(TRACE_HEADER))
            if self.path == "/v1/plan":
                status, response, retry_after = service.submit_plan(
                    body, self._deadline_s(), trace=trace
                )
                self._respond(status, response, retry_after_s=retry_after)
                self._observe(
                    "plan", "ok" if status == 200 else str(status), started
                )
            elif self.path == "/v1/release":
                job = str(body.get("job", ""))
                status, response = service.release_job(job, trace=trace)
                self._respond(status, response)
                self._observe("release", "ok" if status == 200 else str(status),
                              started)
            else:  # /v1/drain
                self._respond(202, {"status": "draining"})
                self._observe("drain", "ok", started)
                threading.Thread(target=service.drain, daemon=True).start()

    return Handler
