"""The trainer-side client for the decision service.

One fresh HTTP connection per request (so a restarted server is
transparently reachable again -- important under chaos), bearer-token
auth, and an overall *deadline budget* shared across every retry: the
client propagates its remaining budget to the server via the
``X-Sophon-Deadline-S`` header, honours ``Retry-After`` hints on 503s,
and gives up with :class:`ServiceUnavailableError` (shed) or
:class:`ServiceDeadlineError` (out of time) rather than retrying
forever.  Transport errors (connection refused, resets, timeouts) are
retried too -- that is what a crashing-and-restarting server looks like
from outside.
"""

import dataclasses
import http.client
import json
import random
import time
from typing import Callable, Dict, Optional, Tuple

from repro.service.config import DEFAULT_TOKEN
from repro.telemetry.spans import TRACE_HEADER, Tracer, encode_trace_header


class ServiceError(Exception):
    """Base class for decision-service client failures."""


class ServiceAuthError(ServiceError):
    """The server rejected the bearer token (401)."""


class ServiceProtocolError(ServiceError):
    """The request was malformed or unserviceable (400/404/500)."""


class ServiceUnavailableError(ServiceError):
    """Every attempt was shed/rejected (503) or the server was unreachable."""

    def __init__(self, message: str, retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDeadlineError(ServiceError):
    """The overall deadline budget elapsed before a grant arrived."""


@dataclasses.dataclass
class ClientStats:
    """Attempt accounting across the client's lifetime."""

    requests: int = 0
    attempts: int = 0
    retries: int = 0
    sheds: int = 0
    transport_errors: int = 0
    deadline_misses: int = 0


@dataclasses.dataclass(frozen=True)
class PlanGrant:
    """A granted offload plan, as the service returned it."""

    job: str
    seq: int
    params_digest: str
    granted_cores: int
    splits: Tuple[int, ...]
    reason: str
    replayed: bool
    expected_epoch_s: Optional[float] = None


class ServiceClient:
    """Talks to one :class:`~repro.service.server.DecisionService`.

    deadline_s: overall budget per logical operation, shared across every
        retry and propagated to the server; None disables deadlines.
    max_attempts: bound on tries per operation within the deadline.
    backoff_s: base for exponential backoff with full jitter, used when a
        503 carries no ``Retry-After`` hint and after transport errors.
    tracer: when set, the client *originates* trace context: every
        :meth:`plan` call gets a deterministic trace id (``<job>-r<n>``,
        a per-client counter -- no wall time, no randomness), sends it in
        the ``X-Sophon-Trace`` header, and brackets the call with
        ``client.request`` spans (retries appear as ``client.retry``
        instants), so client-side and server-side spans line up under the
        same trace id.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        token: str = DEFAULT_TOKEN,
        deadline_s: Optional[float] = 10.0,
        max_attempts: int = 5,
        backoff_s: float = 0.02,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        self.address = address
        self.token = token
        self.deadline_s = deadline_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._clock = clock
        self.tracer = tracer
        self._trace_seq = 0
        self.stats = ClientStats()

    def _next_trace(self, hint: str) -> str:
        """A fresh deterministic trace id (``<hint>-r<n>``)."""
        self._trace_seq += 1
        try:
            return encode_trace_header(f"{hint}-r{self._trace_seq}")
        except ValueError:
            # The hint (a job name) is not header-safe; fall back to a
            # neutral prefix rather than dropping the trace.
            return f"req-r{self._trace_seq}"

    # -- transport -----------------------------------------------------------

    def _once(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]],
        timeout: Optional[float],
        deadline_remaining_s: Optional[float],
        trace: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, object], str]:
        headers = {
            "Authorization": f"Bearer {self.token}",
            "Content-Type": "application/json",
        }
        if deadline_remaining_s is not None:
            headers["X-Sophon-Deadline-S"] = f"{deadline_remaining_s:.6f}"
        if trace is not None:
            headers[TRACE_HEADER] = trace
        data = json.dumps(body or {}).encode("utf-8") if method == "POST" else None
        connection = http.client.HTTPConnection(
            self.address[0], self.address[1], timeout=timeout
        )
        try:
            connection.request(method, path, body=data, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            response_headers = {k: v for k, v in response.getheaders()}
            text = payload.decode("utf-8", "replace")
            content_type = response_headers.get("Content-Type", "")
            parsed: Dict[str, object] = {}
            if content_type.startswith("application/json") and text:
                loaded = json.loads(text)
                if isinstance(loaded, dict):
                    parsed = loaded
            return (response.status, response_headers, parsed, text)
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        retry: bool = True,
        trace: Optional[str] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, object], str]:
        """One logical operation: attempts + backoff under a shared deadline."""
        self.stats.requests += 1
        deadline_at = (
            self._clock() + self.deadline_s if self.deadline_s is not None else None
        )
        last_retry_after: Optional[float] = None
        last_error = "unavailable"
        for attempt in range(self.max_attempts):
            remaining = (
                deadline_at - self._clock() if deadline_at is not None else None
            )
            if remaining is not None and remaining <= 0:
                self.stats.deadline_misses += 1
                raise ServiceDeadlineError(
                    f"{method} {path}: deadline budget of {self.deadline_s}s "
                    f"spent after {attempt} attempts"
                )
            self.stats.attempts += 1
            try:
                status, headers, parsed, text = self._once(
                    method, path, body, remaining, remaining, trace
                )
            except (OSError, http.client.HTTPException) as exc:
                self.stats.transport_errors += 1
                last_error = f"transport: {type(exc).__name__}: {exc}"
                if self.tracer is not None and trace is not None:
                    self.tracer.instant(
                        trace, "client.retry",
                        cause="transport", error_type=type(exc).__name__,
                    )
                if not retry:
                    raise ServiceUnavailableError(last_error) from exc
                self._backoff(attempt, None, deadline_at)
                continue
            if status == 503 and retry:
                self.stats.sheds += 1
                last_retry_after = _parse_retry_after(headers)
                last_error = str(parsed.get("error", text.strip() or "shed"))
                if self.tracer is not None and trace is not None:
                    self.tracer.instant(trace, "client.retry", cause="shed")
                self._backoff(attempt, last_retry_after, deadline_at)
                continue
            return (status, headers, parsed, text)
        raise ServiceUnavailableError(
            f"{method} {path}: gave up after {self.max_attempts} attempts "
            f"({last_error})",
            retry_after_s=last_retry_after,
        )

    def _backoff(
        self,
        attempt: int,
        retry_after_s: Optional[float],
        deadline_at: Optional[float],
    ) -> None:
        self.stats.retries += 1
        if retry_after_s is not None:
            delay = retry_after_s
        else:
            cap = self.backoff_s * (2 ** attempt)
            delay = self._rng.uniform(0.0, cap)
        if deadline_at is not None:
            delay = min(delay, max(0.0, deadline_at - self._clock()))
        if delay > 0:
            self._sleep(delay)

    # -- operations ----------------------------------------------------------

    def plan(
        self,
        job: str,
        dataset: str = "openimages",
        num_samples: int = 256,
        seed: int = 0,
        model: str = "alexnet",
        gpu: str = "rtx6000",
        storage_cores: int = 8,
        trace: Optional[str] = None,
    ) -> PlanGrant:
        """Request an offload plan; retries sheds/outages within the deadline.

        With a tracer attached (and no explicit ``trace``), each call
        originates a fresh deterministic trace id and propagates it.
        """
        body: Dict[str, object] = {
            "job": job,
            "dataset": dataset,
            "num_samples": num_samples,
            "seed": seed,
            "model": model,
            "gpu": gpu,
            "storage_cores": storage_cores,
        }
        if trace is None and self.tracer is not None:
            trace = self._next_trace(job)
        if self.tracer is not None and trace is not None:
            self.tracer.begin(trace, "client.request", job=job)
            try:
                status, headers, parsed, text = self._request(
                    "POST", "/v1/plan", body, trace=trace
                )
            except ServiceError as exc:
                self.tracer.end(
                    trace, "client.request", outcome=type(exc).__name__
                )
                raise
            self.tracer.end(trace, "client.request", status=status)
        else:
            status, headers, parsed, text = self._request(
                "POST", "/v1/plan", body, trace=trace
            )
        if status == 200:
            return PlanGrant(
                job=str(parsed["job"]),
                seq=int(parsed["seq"]),  # type: ignore[arg-type]
                params_digest=str(parsed["params_digest"]),
                granted_cores=int(parsed["granted_cores"]),  # type: ignore[arg-type]
                splits=tuple(int(s) for s in parsed["splits"]),  # type: ignore[union-attr]
                reason=str(parsed["reason"]),
                replayed=bool(parsed["replayed"]),
                expected_epoch_s=(
                    float(parsed["expected_epoch_s"])  # type: ignore[arg-type]
                    if "expected_epoch_s" in parsed
                    else None
                ),
            )
        self._raise_for(status, parsed, text)
        raise AssertionError("unreachable")

    def release(self, job: str, trace: Optional[str] = None) -> Optional[int]:
        """Release the job's cores; returns them, or None if it held none."""
        if trace is None and self.tracer is not None:
            trace = self._next_trace(job)
        status, _, parsed, text = self._request(
            "POST", "/v1/release", {"job": job}, trace=trace
        )
        if status == 200:
            return int(parsed["released_cores"])  # type: ignore[arg-type]
        if status == 404:
            return None
        self._raise_for(status, parsed, text)
        raise AssertionError("unreachable")

    def drain(self) -> None:
        """Ask the service to drain gracefully (202 expected)."""
        status, _, parsed, text = self._request(
            "POST", "/v1/drain", {}, retry=False
        )
        if status != 202:
            self._raise_for(status, parsed, text)

    def health(self) -> bool:
        try:
            status, _, _, _ = self._request("GET", "/healthz", retry=False)
        except ServiceError:
            return False
        return status == 200

    def ready(self) -> bool:
        try:
            status, _, _, _ = self._request("GET", "/readyz", retry=False)
        except ServiceError:
            return False
        return status == 200

    def status(self) -> Dict[str, object]:
        status, _, parsed, text = self._request("GET", "/v1/status")
        if status != 200:
            self._raise_for(status, parsed, text)
        return parsed

    def metrics_text(self) -> str:
        status, _, _, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceProtocolError(f"/metrics answered {status}")
        return text

    def _raise_for(
        self, status: int, parsed: Dict[str, object], text: str
    ) -> None:
        message = str(parsed.get("error", text.strip() or f"HTTP {status}"))
        if status == 401:
            raise ServiceAuthError(message)
        if status == 503:
            raise ServiceUnavailableError(message)
        if status == 504:
            self.stats.deadline_misses += 1
            raise ServiceDeadlineError(message)
        raise ServiceProtocolError(f"HTTP {status}: {message}")


def _parse_retry_after(headers: Dict[str, str]) -> Optional[float]:
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None
    return parsed if parsed >= 0 else None
