"""Admission control: a ledger of storage-CPU cores committed to jobs.

The storage node has a fixed number of cores; every granted plan commits
the cores it was planned against until the job releases them.  Admission
control is the rule that the sum of commitments never exceeds the budget:
a plan request that would oversubscribe the storage tier is *rejected
now* (503 + ``Retry-After``) rather than queued behind capacity that is
not coming back on its own -- the client decides whether to retry, shrink
its ask, or go elsewhere.

The ledger is deliberately tiny and deterministic: commitments change
only via :meth:`commit` / :meth:`release` / :meth:`restore`, under one
lock, so the journal replay path can rebuild it exactly.
"""

import dataclasses
import threading
from typing import Dict, Mapping, Optional


@dataclasses.dataclass(frozen=True)
class BudgetDecision:
    """The outcome of one admission check."""

    admitted: bool
    reason: str
    #: Cores the job held before this decision (0 if none).
    previous_cores: int = 0


class CoreBudgetLedger:
    """Tracks cores committed per job against a fixed total."""

    def __init__(self, total_cores: int) -> None:
        if total_cores < 0:
            raise ValueError(f"total_cores must be >= 0, got {total_cores}")
        self.total_cores = total_cores
        self._committed: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def committed_cores(self) -> int:
        with self._lock:
            return sum(self._committed.values())

    @property
    def available_cores(self) -> int:
        return self.total_cores - self.committed_cores

    def committed(self) -> Dict[str, int]:
        """A snapshot of every job's commitment."""
        with self._lock:
            return dict(self._committed)

    def holds(self, job: str) -> int:
        """Cores ``job`` currently holds (0 when it holds none)."""
        with self._lock:
            return self._committed.get(job, 0)

    def commit(self, job: str, cores: int) -> BudgetDecision:
        """Try to commit ``cores`` to ``job``; atomic check-and-commit.

        A job holds at most one commitment: re-committing replaces its
        previous one, so only the *delta* needs headroom.  Rejection
        changes nothing.
        """
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        with self._lock:
            previous = self._committed.get(job, 0)
            others = sum(self._committed.values()) - previous
            if others + cores > self.total_cores:
                return BudgetDecision(
                    admitted=False,
                    reason=(
                        f"budget oversubscribed: {cores} cores requested, "
                        f"{self.total_cores - others} of {self.total_cores} free"
                    ),
                    previous_cores=previous,
                )
            self._committed[job] = cores
            return BudgetDecision(
                admitted=True,
                reason=f"committed {cores} cores to {job}",
                previous_cores=previous,
            )

    def release(self, job: str) -> Optional[int]:
        """Free ``job``'s commitment; returns the cores freed (None if none)."""
        with self._lock:
            return self._committed.pop(job, None)

    def restore(self, committed: Mapping[str, int]) -> None:
        """Load a recovered commitment map (journal replay / checkpoint)."""
        total = sum(committed.values())
        if total > self.total_cores:
            raise ValueError(
                f"recovered commitments ({total} cores) exceed the "
                f"budget of {self.total_cores}"
            )
        if any(cores < 1 for cores in committed.values()):
            raise ValueError("recovered commitments must all be >= 1 core")
        with self._lock:
            self._committed = dict(committed)
