"""Split image planes into 8x8 blocks and back, with edge padding."""

import numpy as np


def pad_to_multiple(plane: np.ndarray, block: int = 8) -> np.ndarray:
    """Pad a 2-D plane on the bottom/right with edge replication."""
    h, w = plane.shape
    pad_h = (-h) % block
    pad_w = (-w) % block
    if pad_h == 0 and pad_w == 0:
        return plane
    return np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge")


def to_blocks(plane: np.ndarray, block: int = 8) -> np.ndarray:
    """Reshape a padded (H, W) plane into (num_blocks, block, block).

    Blocks are ordered row-major (left to right, top to bottom), matching
    :func:`from_blocks`.
    """
    padded = pad_to_multiple(plane, block)
    h, w = padded.shape
    tiles = padded.reshape(h // block, block, w // block, block)
    return tiles.transpose(0, 2, 1, 3).reshape(-1, block, block)


def from_blocks(blocks: np.ndarray, height: int, width: int, block: int = 8) -> np.ndarray:
    """Reassemble (num_blocks, block, block) into an (height, width) plane.

    ``height``/``width`` are the *original* (unpadded) dimensions; padding
    added by :func:`to_blocks` is cropped away.
    """
    padded_h = height + ((-height) % block)
    padded_w = width + ((-width) % block)
    rows = padded_h // block
    cols = padded_w // block
    if blocks.shape[0] != rows * cols:
        raise ValueError(
            f"expected {rows * cols} blocks for {height}x{width}, got {blocks.shape[0]}"
        )
    tiles = blocks.reshape(rows, cols, block, block).transpose(0, 2, 1, 3)
    plane = tiles.reshape(padded_h, padded_w)
    return plane[:height, :width]
