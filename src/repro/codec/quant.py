"""Quantization tables and quality scaling (JPEG Annex K style)."""

import numpy as np

# Standard JPEG luminance quantization table (ITU-T T.81 Annex K.1).
BASE_LUMA_TABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

# Standard JPEG chrominance quantization table (ITU-T T.81 Annex K.2).
BASE_CHROMA_TABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


def quality_scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """Scale a base quantization table for a quality setting in [1, 100].

    Uses the libjpeg convention: quality 50 returns the base table, higher
    qualities shrink the divisors (finer quantization, larger files), lower
    qualities grow them.
    """
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((base * scale + 50.0) / 100.0)
    return np.clip(table, 1.0, 255.0)
