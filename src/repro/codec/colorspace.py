"""RGB <-> YCbCr conversion and chroma subsampling (BT.601 full range)."""

import numpy as np

# BT.601 full-range matrix, as used by JFIF.
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an (H, W, 3) uint8 RGB image to float64 YCbCr.

    Y is in [0, 255]; Cb/Cr are centered on 128.
    """
    pixels = rgb.astype(np.float64)
    ycc = pixels @ _RGB_TO_YCBCR.T
    ycc[..., 1:] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Convert float64 YCbCr back to uint8 RGB, clipping to [0, 255]."""
    shifted = ycc.astype(np.float64).copy()
    shifted[..., 1:] -= 128.0
    rgb = shifted @ _YCBCR_TO_RGB.T
    return np.clip(np.round(rgb), 0, 255).astype(np.uint8)


def subsample_420(channel: np.ndarray) -> np.ndarray:
    """2x2 average-pool a chroma channel (4:2:0 subsampling).

    Odd dimensions are handled by edge replication before pooling.
    """
    h, w = channel.shape
    if h % 2 or w % 2:
        channel = np.pad(channel, ((0, h % 2), (0, w % 2)), mode="edge")
        h, w = channel.shape
    pooled = channel.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))
    return pooled


def upsample_420(channel: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour upsample of a subsampled chroma plane."""
    up = np.repeat(np.repeat(channel, 2, axis=0), 2, axis=1)
    return up[:out_h, :out_w]
