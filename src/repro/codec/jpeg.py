"""The toy JPEG-like codec: block DCT + quantization + zigzag + deflate.

Encoding path (per plane): level-shift by 128, split into 8x8 blocks,
orthonormal 2-D DCT, divide by the quality-scaled quantization table and
round, zigzag-scan, delta-code the DC coefficients across blocks, serialize
as little-endian int16, deflate.  Color images are converted to YCbCr with
optional 4:2:0 chroma subsampling first.

The point of this codec for the reproduction is that its output size is
genuinely content dependent -- smooth images quantize to long zero runs and
compress far better than textured ones -- which is exactly the property of
real JPEG that SOPHON's per-sample decisions exploit.

The plane-level primitives (:func:`split_planes`, :func:`quantize_plane`,
:func:`reconstruct_plane`, :func:`assemble_image`) are shared with the
progressive variant in :mod:`repro.codec.progressive`, which serializes the
same quantized coefficients as truncatable spectral-selection scans; full
progressive decodes are byte-identical to this codec by construction.
"""

import dataclasses
import struct
import zlib
from typing import List, Optional, Tuple

import numpy as np
from scipy.fft import dctn, idctn

from repro.codec.blocks import from_blocks, to_blocks
from repro.codec.colorspace import (
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)
from repro.codec.errors import CorruptStreamError, UnsupportedImageError
from repro.codec.quant import BASE_CHROMA_TABLE, BASE_LUMA_TABLE, quality_scaled_table
from repro.codec.zigzag import inverse_zigzag, zigzag_order

_MAGIC = b"TJPG"
_VERSION = 1
# magic, version, flags, quality, height, width, num_planes
_HEADER = struct.Struct("<4sBBBIIB")
_PLANE_HEADER = struct.Struct("<III")  # plane height, width, payload length

_FLAG_SUBSAMPLE = 0x01
_FLAG_GRAYSCALE = 0x02


@dataclasses.dataclass(frozen=True)
class CodecConfig:
    """Knobs for :class:`ToyJpegCodec`.

    quality: JPEG-style quality in [1, 100]; higher -> bigger, sharper.
    subsample: apply 4:2:0 chroma subsampling (color images only).
    zlib_level: deflate level for the entropy stage.
    """

    quality: int = 75
    subsample: bool = True
    zlib_level: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.quality <= 100:
            raise ValueError(f"quality must be in [1, 100], got {self.quality}")
        if not 0 <= self.zlib_level <= 9:
            raise ValueError(f"zlib_level must be in [0, 9], got {self.zlib_level}")


# -- shared plane-level primitives -------------------------------------------


def split_planes(
    image: np.ndarray, config: CodecConfig
) -> Tuple[bool, List[np.ndarray], List[np.ndarray]]:
    """(grayscale, float64 planes, quantization tables) for an input image."""
    grayscale = image.ndim == 2
    if grayscale:
        planes = [image.astype(np.float64)]
        tables = [quality_scaled_table(BASE_LUMA_TABLE, config.quality)]
    else:
        ycc = rgb_to_ycbcr(image)
        luma = ycc[..., 0]
        cb, cr = ycc[..., 1], ycc[..., 2]
        if config.subsample:
            cb, cr = subsample_420(cb), subsample_420(cr)
        chroma_table = quality_scaled_table(BASE_CHROMA_TABLE, config.quality)
        planes = [luma, cb, cr]
        tables = [
            quality_scaled_table(BASE_LUMA_TABLE, config.quality),
            chroma_table,
            chroma_table,
        ]
    return grayscale, planes, tables


def quantize_plane(plane: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantized zigzag coefficients for one plane: (num_blocks, 64) int16.

    DC terms (column 0) are delta-coded across blocks so slow brightness
    gradients stay small.
    """
    blocks = to_blocks(plane - 128.0)
    coeffs = dctn(blocks, axes=(-2, -1), norm="ortho")
    quantized = np.round(coeffs / table).astype(np.int16)
    flat = zigzag_order(quantized)
    flat[:, 0] = np.diff(flat[:, 0], prepend=np.int16(0))
    return flat


def reconstruct_plane(
    flat: np.ndarray, height: int, width: int, table: np.ndarray
) -> np.ndarray:
    """Rebuild a float plane from delta-DC zigzag coefficients.

    ``flat`` is (num_blocks, 64) integer coefficients as produced by
    :func:`quantize_plane` (DC still delta-coded).
    """
    flat = flat.astype(np.int64)
    flat[:, 0] = np.cumsum(flat[:, 0])
    quantized = inverse_zigzag(flat.astype(np.float64))
    coeffs = quantized * table
    blocks = idctn(coeffs, axes=(-2, -1), norm="ortho") + 128.0
    return from_blocks(blocks, height, width)


def assemble_image(
    planes: List[np.ndarray],
    grayscale: bool,
    subsampled: bool,
    height: int,
    width: int,
) -> np.ndarray:
    """Combine decoded float planes into the final uint8 image."""
    if grayscale:
        return np.clip(np.round(planes[0]), 0, 255).astype(np.uint8)
    luma, cb, cr = planes
    if subsampled:
        cb = upsample_420(cb, height, width)
        cr = upsample_420(cr, height, width)
    ycc = np.stack([luma, cb, cr], axis=-1)
    return ycbcr_to_rgb(ycc)


def expected_plane_dims(
    index: int, grayscale: bool, subsampled: bool, height: int, width: int
) -> Tuple[int, int]:
    """The only plane dimensions a valid stream may carry for ``index``."""
    if grayscale or index == 0 or not subsampled:
        return height, width
    return (height + 1) // 2, (width + 1) // 2


def num_blocks_for(height: int, width: int, block: int = 8) -> int:
    """Block count :func:`repro.codec.blocks.to_blocks` yields for a plane."""
    rows = (height + block - 1) // block
    cols = (width + block - 1) // block
    return rows * cols


def validate_header_dims(height: int, width: int) -> None:
    """Reject header dimensions no encoder could have produced."""
    if height < 1 or width < 1:
        raise CorruptStreamError(f"bad image dimensions {height}x{width}")


def validate_plane_count(num_planes: int, grayscale: bool) -> None:
    """Reject plane counts inconsistent with the stream's grayscale flag."""
    if num_planes not in (1, 3):
        raise CorruptStreamError(f"bad plane count {num_planes}")
    expected = 1 if grayscale else 3
    if num_planes != expected:
        raise CorruptStreamError(
            f"plane count {num_planes} contradicts "
            f"{'grayscale' if grayscale else 'color'} flag (expected {expected})"
        )


class ToyJpegCodec:
    """Lossy image codec with JPEG-like structure and size behaviour."""

    def __init__(self, config: Optional[CodecConfig] = None) -> None:
        self.config = config if config is not None else CodecConfig()

    # -- encoding ---------------------------------------------------------

    def encode(self, image: np.ndarray) -> bytes:
        """Encode an (H, W, 3) or (H, W) uint8 image to bytes."""
        image = self._validate(image)
        height, width = image.shape[:2]
        grayscale, planes, tables = split_planes(image, self.config)

        flags = 0
        if grayscale:
            flags |= _FLAG_GRAYSCALE
        elif self.config.subsample:
            flags |= _FLAG_SUBSAMPLE

        out = [
            _HEADER.pack(
                _MAGIC, _VERSION, flags, self.config.quality, height, width, len(planes)
            )
        ]
        for plane, table in zip(planes, tables):
            payload = self._encode_plane(plane, table)
            out.append(_PLANE_HEADER.pack(plane.shape[0], plane.shape[1], len(payload)))
            out.append(payload)
        return b"".join(out)

    def _encode_plane(self, plane: np.ndarray, table: np.ndarray) -> bytes:
        raw = quantize_plane(plane, table).astype("<i2").tobytes()
        return zlib.compress(raw, self.config.zlib_level)

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode bytes produced by :meth:`encode` back into a uint8 image."""
        if len(data) < _HEADER.size:
            raise CorruptStreamError("stream shorter than header")
        magic, version, flags, quality, height, width, num_planes = _HEADER.unpack_from(
            data
        )
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise CorruptStreamError(f"unsupported version {version}")

        grayscale = bool(flags & _FLAG_GRAYSCALE)
        subsampled = bool(flags & _FLAG_SUBSAMPLE)
        validate_plane_count(num_planes, grayscale)
        validate_header_dims(height, width)
        luma_table = quality_scaled_table(BASE_LUMA_TABLE, quality)
        chroma_table = quality_scaled_table(BASE_CHROMA_TABLE, quality)

        offset = _HEADER.size
        planes = []
        for index in range(num_planes):
            if offset + _PLANE_HEADER.size > len(data):
                raise CorruptStreamError("truncated plane header")
            p_h, p_w, p_len = _PLANE_HEADER.unpack_from(data, offset)
            offset += _PLANE_HEADER.size
            want_h, want_w = expected_plane_dims(
                index, grayscale, subsampled, height, width
            )
            if (p_h, p_w) != (want_h, want_w):
                raise CorruptStreamError(
                    f"plane {index} claims {p_h}x{p_w}, header implies "
                    f"{want_h}x{want_w}"
                )
            if offset + p_len > len(data):
                raise CorruptStreamError("truncated plane payload")
            table = luma_table if index == 0 else chroma_table
            planes.append(
                self._decode_plane(data[offset : offset + p_len], p_h, p_w, table)
            )
            offset += p_len
        if offset != len(data):
            raise CorruptStreamError(
                f"{len(data) - offset} trailing bytes after the last plane"
            )
        return assemble_image(planes, grayscale, subsampled, height, width)

    def _decode_plane(
        self, payload: bytes, height: int, width: int, table: np.ndarray
    ) -> np.ndarray:
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise CorruptStreamError(f"deflate stream corrupt: {exc}") from exc
        flat = np.frombuffer(raw, dtype="<i2")
        if flat.size % 64:
            raise CorruptStreamError(f"coefficient count {flat.size} not 64-aligned")
        flat = flat.reshape(-1, 64)
        if flat.shape[0] != num_blocks_for(height, width):
            raise CorruptStreamError(
                f"plane carries {flat.shape[0]} blocks, "
                f"{height}x{width} needs {num_blocks_for(height, width)}"
            )
        return reconstruct_plane(flat, height, width, table)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _validate(image: np.ndarray) -> np.ndarray:
        if not isinstance(image, np.ndarray):
            raise UnsupportedImageError(f"expected ndarray, got {type(image).__name__}")
        if image.dtype != np.uint8:
            raise UnsupportedImageError(f"expected uint8 image, got {image.dtype}")
        if image.ndim == 3 and image.shape[2] != 3:
            raise UnsupportedImageError(f"expected 3 channels, got {image.shape[2]}")
        if image.ndim not in (2, 3):
            raise UnsupportedImageError(f"expected 2-D or 3-D image, got {image.ndim}-D")
        if image.shape[0] < 1 or image.shape[1] < 1:
            raise UnsupportedImageError(f"empty image {image.shape}")
        return image


def encoded_size(image: np.ndarray, config: Optional[CodecConfig] = None) -> int:
    """Return the encoded byte size of ``image`` under ``config``."""
    return len(ToyJpegCodec(config).encode(image))
