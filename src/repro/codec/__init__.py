"""Toy image codec used as the synthetic stand-in for JPEG.

The paper's datasets are JPEG files; SOPHON's behaviour depends on the fact
that a compressed raw file can be either smaller or larger than the
decoded-and-cropped uint8 pixels.  This package provides a real, lossy,
content-dependent codec (8x8 block DCT + quality-scaled quantization + zigzag
+ DC prediction + deflate) so that encoded sizes respond to image content the
way JPEG sizes do, without shipping binary JPEG machinery.

Public API:

- :class:`ToyJpegCodec` -- encode/decode uint8 RGB images.
- :class:`CodecConfig` -- quality / subsampling knobs.
- :func:`encoded_size` -- convenience wrapper returning only the byte count.
- :class:`ProgressiveJpegCodec` / :class:`ProgressiveCodecConfig` -- the
  layered variant whose streams decode from any scan prefix
  (:mod:`repro.codec.progressive`).
- :func:`truncate_scans` / :func:`scan_sizes` / :func:`scan_count_of` --
  byte-level scan-prefix manipulation of progressive streams.
- :func:`scan_prefix_metrics` / :class:`ScanFidelity` -- PSNR/MSE of each
  scan prefix against the full decode.
"""

from repro.codec.errors import CodecError, CorruptStreamError
from repro.codec.quant import BASE_LUMA_TABLE, quality_scaled_table
from repro.codec.zigzag import zigzag_indices, zigzag_order, inverse_zigzag
from repro.codec.jpeg import CodecConfig, ToyJpegCodec, encoded_size
from repro.codec.metrics import compression_ratio, mse, psnr
from repro.codec.progressive import (
    DEFAULT_SCAN_BANDS,
    ProgressiveCodecConfig,
    ProgressiveJpegCodec,
    ScanFidelity,
    scan_count_of,
    scan_prefix_metrics,
    scan_sizes,
    truncate_scans,
)

__all__ = [
    "BASE_LUMA_TABLE",
    "CodecConfig",
    "CodecError",
    "CorruptStreamError",
    "DEFAULT_SCAN_BANDS",
    "ProgressiveCodecConfig",
    "ProgressiveJpegCodec",
    "ScanFidelity",
    "ToyJpegCodec",
    "compression_ratio",
    "encoded_size",
    "inverse_zigzag",
    "mse",
    "psnr",
    "quality_scaled_table",
    "scan_count_of",
    "scan_prefix_metrics",
    "scan_sizes",
    "truncate_scans",
    "zigzag_indices",
    "zigzag_order",
]
