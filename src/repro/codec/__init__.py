"""Toy image codec used as the synthetic stand-in for JPEG.

The paper's datasets are JPEG files; SOPHON's behaviour depends on the fact
that a compressed raw file can be either smaller or larger than the
decoded-and-cropped uint8 pixels.  This package provides a real, lossy,
content-dependent codec (8x8 block DCT + quality-scaled quantization + zigzag
+ DC prediction + deflate) so that encoded sizes respond to image content the
way JPEG sizes do, without shipping binary JPEG machinery.

Public API:

- :class:`ToyJpegCodec` -- encode/decode uint8 RGB images.
- :class:`CodecConfig` -- quality / subsampling knobs.
- :func:`encoded_size` -- convenience wrapper returning only the byte count.
"""

from repro.codec.errors import CodecError, CorruptStreamError
from repro.codec.quant import BASE_LUMA_TABLE, quality_scaled_table
from repro.codec.zigzag import zigzag_indices, zigzag_order, inverse_zigzag
from repro.codec.jpeg import CodecConfig, ToyJpegCodec, encoded_size

__all__ = [
    "BASE_LUMA_TABLE",
    "CodecConfig",
    "CodecError",
    "CorruptStreamError",
    "ToyJpegCodec",
    "encoded_size",
    "inverse_zigzag",
    "quality_scaled_table",
    "zigzag_indices",
    "zigzag_order",
]
