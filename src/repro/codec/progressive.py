"""Progressive variant of the toy codec: truncatable spectral-selection scans.

Following *Progressive Compressed Records* (Kuchnik et al.), the encoder
serializes the same quantized DCT coefficients as :class:`ToyJpegCodec`,
but grouped into **scans** by zigzag frequency band: the DC terms and low
frequencies ship first, higher bands follow.  Scans are laid out
scan-major (scan 0 of every plane, then scan 1 of every plane, ...), so
keeping any prefix of the scan sequence is literally keeping a byte
prefix of the payload region -- :func:`truncate_scans` slices, it never
re-encodes.

A decoder reconstructs a valid (reduced-fidelity) image from any scan
prefix by treating the missing bands as zero coefficients; decoding *all*
scans reproduces the baseline codec's output byte-for-byte, because both
paths share the plane primitives in :mod:`repro.codec.jpeg`.

Stream format (little endian)::

    header     <4sBBBIIBB>  magic "TJPP", version, flags, quality,
                            height, width, num_planes, num_scans
    band table num_scans bytes: cumulative zigzag upper bounds, last = 64
    directory  num_scans * num_planes uint32 payload lengths, scan-major
    payloads   deflated int16 band coefficients, scan-major

The directory always describes the *full* scan sequence, so a truncated
stream still knows what it is missing -- the traffic-vs-fidelity planner
reads rung sizes straight from the directory of the stored object.
"""

import dataclasses
import struct
import zlib
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.errors import CorruptStreamError
from repro.codec.jpeg import (
    CodecConfig,
    ToyJpegCodec,
    assemble_image,
    expected_plane_dims,
    num_blocks_for,
    quantize_plane,
    reconstruct_plane,
    split_planes,
    validate_header_dims,
    validate_plane_count,
)
from repro.codec.metrics import mse, psnr
from repro.codec.quant import BASE_CHROMA_TABLE, BASE_LUMA_TABLE, quality_scaled_table

PROGRESSIVE_MAGIC = b"TJPP"
_BASELINE_MAGIC = b"TJPG"
_VERSION = 1
# magic, version, flags, quality, height, width, num_planes, num_scans
_HEADER = struct.Struct("<4sBBBIIBB")
_LENGTH = struct.Struct("<I")

_FLAG_SUBSAMPLE = 0x01
_FLAG_GRAYSCALE = 0x02

#: Default spectral-selection bands (cumulative zigzag upper bounds): the
#: DC scan, then progressively wider AC bands.  Five rungs give the
#: planner a usable fidelity ladder without per-scan overhead dominating.
DEFAULT_SCAN_BANDS: Tuple[int, ...] = (1, 6, 15, 28, 64)


@dataclasses.dataclass(frozen=True)
class ProgressiveCodecConfig:
    """Knobs for :class:`ProgressiveJpegCodec`.

    base: the underlying DCT/quantization/deflate knobs (shared with the
        baseline codec so full-scan decodes match it exactly).
    scan_bands: cumulative zigzag-coefficient upper bounds, one per scan;
        strictly increasing, first >= 1, last == 64.  ``(1, 6, 15, 28, 64)``
        means scan 0 carries the DC terms, scan 1 coefficients 1..5, and
        so on.
    """

    base: CodecConfig = dataclasses.field(default_factory=CodecConfig)
    scan_bands: Tuple[int, ...] = DEFAULT_SCAN_BANDS

    def __post_init__(self) -> None:
        bands = tuple(int(b) for b in self.scan_bands)
        object.__setattr__(self, "scan_bands", bands)
        if not bands:
            raise ValueError("scan_bands must name at least one scan")
        if bands[0] < 1:
            raise ValueError(f"first scan band must be >= 1, got {bands[0]}")
        if any(b2 <= b1 for b1, b2 in zip(bands, bands[1:])):
            raise ValueError(f"scan_bands must strictly increase, got {bands}")
        if bands[-1] != 64:
            raise ValueError(f"last scan band must be 64, got {bands[-1]}")

    @property
    def num_scans(self) -> int:
        return len(self.scan_bands)


@dataclasses.dataclass(frozen=True)
class _ParsedStream:
    """Everything the header region of a progressive stream pins down."""

    flags: int
    quality: int
    height: int
    width: int
    grayscale: bool
    subsampled: bool
    num_planes: int
    bands: Tuple[int, ...]
    #: lengths[scan][plane] -> deflated payload byte length.
    lengths: Tuple[Tuple[int, ...], ...]
    #: Absolute stream offset where each scan's payload group starts;
    #: one extra entry marking the end of the final scan.
    scan_offsets: Tuple[int, ...]
    #: Complete scans actually present in the (possibly truncated) stream.
    available_scans: int

    @property
    def num_scans(self) -> int:
        return len(self.bands)

    def plane_dims(self, index: int) -> Tuple[int, int]:
        return expected_plane_dims(
            index, self.grayscale, self.subsampled, self.height, self.width
        )

    def band_range(self, scan: int) -> Tuple[int, int]:
        lo = 0 if scan == 0 else self.bands[scan - 1]
        return lo, self.bands[scan]


def _parse_stream(data: bytes) -> _ParsedStream:
    """Parse and validate everything up to the payload region.

    Accepts streams whose payload region is truncated at a scan boundary;
    anything else -- bad magic, inconsistent flags, a directory that does
    not match the bytes on the wire -- raises :class:`CorruptStreamError`.
    """
    if len(data) < _HEADER.size:
        raise CorruptStreamError("stream shorter than header")
    magic, version, flags, quality, height, width, num_planes, num_scans = (
        _HEADER.unpack_from(data)
    )
    if magic != PROGRESSIVE_MAGIC:
        raise CorruptStreamError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise CorruptStreamError(f"unsupported version {version}")
    if not 1 <= quality <= 100:
        raise CorruptStreamError(f"quality {quality} outside [1, 100]")
    grayscale = bool(flags & _FLAG_GRAYSCALE)
    subsampled = bool(flags & _FLAG_SUBSAMPLE)
    validate_plane_count(num_planes, grayscale)
    validate_header_dims(height, width)
    if num_scans < 1:
        raise CorruptStreamError("stream declares zero scans")

    offset = _HEADER.size
    if offset + num_scans > len(data):
        raise CorruptStreamError("truncated scan band table")
    bands = tuple(data[offset : offset + num_scans])
    offset += num_scans
    if bands[0] < 1 or bands[-1] != 64 or any(
        b2 <= b1 for b1, b2 in zip(bands, bands[1:])
    ):
        raise CorruptStreamError(f"invalid scan band table {bands}")

    directory_size = _LENGTH.size * num_scans * num_planes
    if offset + directory_size > len(data):
        raise CorruptStreamError("truncated scan directory")
    lengths: List[Tuple[int, ...]] = []
    for _ in range(num_scans):
        row = []
        for _ in range(num_planes):
            (length,) = _LENGTH.unpack_from(data, offset)
            offset += _LENGTH.size
            row.append(length)
        lengths.append(tuple(row))

    scan_offsets = [offset]
    for row in lengths:
        scan_offsets.append(scan_offsets[-1] + sum(row))

    available = 0
    for scan in range(num_scans):
        if scan_offsets[scan + 1] <= len(data):
            available = scan + 1
        else:
            break
    if len(data) != scan_offsets[available]:
        if len(data) > scan_offsets[-1]:
            raise CorruptStreamError(
                f"{len(data) - scan_offsets[-1]} trailing bytes after the last scan"
            )
        raise CorruptStreamError(
            f"stream ends mid-scan ({len(data)} bytes is not a scan boundary)"
        )
    if available < 1:
        raise CorruptStreamError("stream carries no complete scan")
    return _ParsedStream(
        flags=flags,
        quality=quality,
        height=height,
        width=width,
        grayscale=grayscale,
        subsampled=subsampled,
        num_planes=num_planes,
        bands=bands,
        lengths=tuple(lengths),
        scan_offsets=tuple(scan_offsets),
        available_scans=available,
    )


def _inflate_exact(payload: bytes, expected_bytes: int) -> bytes:
    """Inflate ``payload``, requiring exactly ``expected_bytes`` out.

    Decompression is capped at the expected size, so a hostile directory
    cannot drive a huge allocation through a deflate bomb.
    """
    inflater = zlib.decompressobj()
    try:
        raw = inflater.decompress(payload, expected_bytes + 1)
    except zlib.error as exc:
        raise CorruptStreamError(f"deflate stream corrupt: {exc}") from exc
    if len(raw) != expected_bytes or not inflater.eof or inflater.unused_data:
        raise CorruptStreamError(
            f"scan payload inflates to {len(raw)}+ bytes, expected {expected_bytes}"
        )
    return raw


class ProgressiveJpegCodec:
    """Layered image codec whose streams decode from any scan prefix."""

    def __init__(self, config: Optional[ProgressiveCodecConfig] = None) -> None:
        self.config = config if config is not None else ProgressiveCodecConfig()

    # -- encoding ---------------------------------------------------------

    def encode(self, image: np.ndarray) -> bytes:
        """Encode an (H, W, 3) or (H, W) uint8 image as a progressive stream."""
        image = ToyJpegCodec._validate(image)
        height, width = image.shape[:2]
        base = self.config.base
        grayscale, planes, tables = split_planes(image, base)

        flags = 0
        if grayscale:
            flags |= _FLAG_GRAYSCALE
        elif base.subsample:
            flags |= _FLAG_SUBSAMPLE

        coefficients = [
            quantize_plane(plane, table) for plane, table in zip(planes, tables)
        ]
        bands = self.config.scan_bands
        payloads: List[List[bytes]] = []
        for scan in range(len(bands)):
            lo = 0 if scan == 0 else bands[scan - 1]
            hi = bands[scan]
            payloads.append(
                [
                    zlib.compress(
                        np.ascontiguousarray(flat[:, lo:hi]).astype("<i2").tobytes(),
                        base.zlib_level,
                    )
                    for flat in coefficients
                ]
            )

        out = [
            _HEADER.pack(
                PROGRESSIVE_MAGIC,
                _VERSION,
                flags,
                base.quality,
                height,
                width,
                len(planes),
                len(bands),
            ),
            bytes(bands),
        ]
        for scan_payloads in payloads:
            for payload in scan_payloads:
                out.append(_LENGTH.pack(len(payload)))
        for scan_payloads in payloads:
            out.extend(scan_payloads)
        return b"".join(out)

    # -- decoding ---------------------------------------------------------

    def decode(self, data: bytes, scan_count: Optional[int] = None) -> np.ndarray:
        """Decode a scan prefix of ``data`` into a uint8 image.

        scan_count: how many leading scans to use; None means every scan
            the stream carries.  Decoding all scans of a complete stream
            is byte-identical to :meth:`ToyJpegCodec.decode` on the
            baseline encoding of the same image.

        Baseline (``TJPG``) streams are accepted too -- and delegated to
        :class:`ToyJpegCodec` -- so a pipeline's decode op handles stored
        objects of either format; ``scan_count`` must be None for them.
        """
        if data[:4] == _BASELINE_MAGIC:
            if scan_count is not None:
                raise CorruptStreamError(
                    "baseline stream has no scans to select from"
                )
            return ToyJpegCodec(self.config.base).decode(data)
        parsed = _parse_stream(data)
        if scan_count is None:
            scan_count = parsed.available_scans
        if not 1 <= scan_count <= parsed.num_scans:
            raise CorruptStreamError(
                f"scan_count {scan_count} outside [1, {parsed.num_scans}]"
            )
        if scan_count > parsed.available_scans:
            raise CorruptStreamError(
                f"stream carries {parsed.available_scans} scan(s), "
                f"{scan_count} requested"
            )

        luma_table = quality_scaled_table(BASE_LUMA_TABLE, parsed.quality)
        chroma_table = quality_scaled_table(BASE_CHROMA_TABLE, parsed.quality)
        planes: List[np.ndarray] = []
        for index in range(parsed.num_planes):
            p_h, p_w = parsed.plane_dims(index)
            blocks = num_blocks_for(p_h, p_w)
            flat = np.zeros((blocks, 64), dtype=np.int64)
            offset_base = parsed.scan_offsets
            for scan in range(scan_count):
                lo, hi = parsed.band_range(scan)
                start = offset_base[scan] + sum(parsed.lengths[scan][:index])
                payload = data[start : start + parsed.lengths[scan][index]]
                raw = _inflate_exact(payload, blocks * (hi - lo) * 2)
                band = np.frombuffer(raw, dtype="<i2").reshape(blocks, hi - lo)
                flat[:, lo:hi] = band
            table = luma_table if index == 0 else chroma_table
            planes.append(reconstruct_plane(flat, p_h, p_w, table))
        return assemble_image(
            planes, parsed.grayscale, parsed.subsampled, parsed.height, parsed.width
        )

    # -- stream introspection ---------------------------------------------

    def num_scans(self, data: bytes) -> int:
        """Complete scans present in ``data``."""
        return _parse_stream(data).available_scans


def scan_count_of(data: bytes) -> int:
    """Complete scans present in a progressive stream."""
    return _parse_stream(data).available_scans


def scan_sizes(data: bytes) -> Tuple[int, ...]:
    """Cumulative byte size of each scan prefix of ``data``.

    Entry ``k - 1`` is ``len(truncate_scans(data, k))``; sizes come from
    the scan directory, so they are valid even for a truncated stream
    (the directory always describes the full sequence).
    """
    parsed = _parse_stream(data)
    return tuple(parsed.scan_offsets[1:])


def truncate_scans(data: bytes, scan_count: int) -> bytes:
    """Keep the first ``scan_count`` scans of a progressive stream.

    Pure byte slicing -- deterministic, allocation-free beyond the copy,
    and idempotent (truncating to the stream's own scan count returns the
    stream unchanged).
    """
    parsed = _parse_stream(data)
    if not 1 <= scan_count <= parsed.num_scans:
        raise ValueError(
            f"scan_count {scan_count} outside [1, {parsed.num_scans}]"
        )
    if scan_count > parsed.available_scans:
        raise ValueError(
            f"stream carries {parsed.available_scans} scan(s), "
            f"cannot keep {scan_count}"
        )
    return data[: parsed.scan_offsets[scan_count]]


@dataclasses.dataclass(frozen=True)
class ScanFidelity:
    """Fidelity of one scan prefix, measured against the full decode."""

    scan_count: int
    prefix_bytes: int
    mse: float
    psnr_db: float


def scan_prefix_metrics(
    data: bytes,
    codec: Optional[ProgressiveJpegCodec] = None,
    reference: Optional[np.ndarray] = None,
) -> Tuple[ScanFidelity, ...]:
    """PSNR/MSE of every scan prefix of a progressive stream.

    reference: image to measure against; defaults to the full-scan decode,
        under which the final entry is exact (infinite PSNR) and fidelity
        improves monotonically as scans accumulate.
    """
    codec = codec if codec is not None else ProgressiveJpegCodec()
    parsed = _parse_stream(data)
    sizes = scan_sizes(data)
    if reference is None:
        reference = codec.decode(data, scan_count=parsed.available_scans)
    out = []
    for count in range(1, parsed.available_scans + 1):
        decoded = codec.decode(data, scan_count=count)
        error = mse(reference, decoded)
        out.append(
            ScanFidelity(
                scan_count=count,
                prefix_bytes=sizes[count - 1],
                mse=error,
                psnr_db=psnr(reference, decoded),
            )
        )
    return tuple(out)
