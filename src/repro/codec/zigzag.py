"""Zigzag scan order for 8x8 (or general NxN) DCT coefficient blocks.

The zigzag scan orders coefficients from low to high spatial frequency so
that the long runs of zeros produced by quantization end up contiguous,
which is what makes the deflate stage effective.
"""

import functools

import numpy as np


@functools.lru_cache(maxsize=None)
def zigzag_indices(n: int = 8) -> tuple:
    """Return (rows, cols) index arrays for the zigzag scan of an n x n block.

    The result is cached; callers may treat the arrays as immutable.
    """
    if n < 1:
        raise ValueError(f"block size must be >= 1, got {n}")
    coords = []
    for s in range(2 * n - 1):
        # Diagonal s holds cells with row + col == s; direction alternates.
        diag = [(i, s - i) for i in range(max(0, s - n + 1), min(s, n - 1) + 1)]
        if s % 2 == 0:
            diag.reverse()
        coords.extend(diag)
    rows = np.array([r for r, _ in coords], dtype=np.intp)
    cols = np.array([c for _, c in coords], dtype=np.intp)
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


def zigzag_order(block: np.ndarray) -> np.ndarray:
    """Flatten a square block (or stack of blocks) into zigzag order.

    ``block`` may be shaped ``(n, n)`` or ``(k, n, n)``; the scan applies to
    the trailing two axes.
    """
    n = block.shape[-1]
    if block.shape[-2] != n:
        raise ValueError(f"expected square trailing axes, got {block.shape}")
    rows, cols = zigzag_indices(n)
    return block[..., rows, cols]


def inverse_zigzag(flat: np.ndarray, n: int = 8) -> np.ndarray:
    """Rebuild square block(s) from zigzag-ordered coefficients.

    ``flat`` may be shaped ``(n*n,)`` or ``(k, n*n)``.
    """
    if flat.shape[-1] != n * n:
        raise ValueError(f"expected trailing axis of {n * n}, got {flat.shape}")
    rows, cols = zigzag_indices(n)
    out = np.zeros(flat.shape[:-1] + (n, n), dtype=flat.dtype)
    out[..., rows, cols] = flat
    return out
