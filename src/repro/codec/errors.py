"""Codec exception hierarchy."""


class CodecError(Exception):
    """Base class for all codec failures."""


class CorruptStreamError(CodecError):
    """The byte stream does not parse as a valid encoded image."""


class UnsupportedImageError(CodecError):
    """The input array is not an image this codec can encode."""
