"""Image fidelity metrics for codec evaluation."""

import math

import numpy as np

from repro.utils.floats import is_exact_zero


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    if reference.shape != candidate.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {candidate.shape}"
        )
    diff = reference.astype(np.float64) - candidate.astype(np.float64)
    return float((diff * diff).mean())


def psnr(reference: np.ndarray, candidate: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical images)."""
    error = mse(reference, candidate)
    # Bit-exact zero is meaningful here: identical integer images really do
    # have zero MSE, and "nearly zero" must still produce a finite PSNR.
    if is_exact_zero(error):
        return math.inf
    return 10.0 * math.log10(peak * peak / error)


def compression_ratio(original_bytes: int, encoded_bytes: int) -> float:
    """original / encoded; > 1 means the codec shrank the image."""
    if encoded_bytes <= 0:
        raise ValueError(f"encoded_bytes must be > 0, got {encoded_bytes}")
    return original_bytes / encoded_bytes
