"""Toy lossless audio codec (the FLAC stand-in).

Mono int16 PCM, delta-coded then deflated: smooth (low-frequency) signals
compress well, noisy ones poorly -- the same content-dependence property
the image codec provides for JPEG.  Lossless round-trip.

Stream layout: magic 'TAUD' | version u8 | sample_rate u32 |
num_samples u32 | deflate(delta-coded int16 LE).
"""

import struct
import zlib

import numpy as np

from repro.codec.errors import CorruptStreamError, UnsupportedImageError

_MAGIC = b"TAUD"
_VERSION = 1
_HEADER = struct.Struct("<4sBII")


class ToyFlacCodec:
    """Lossless compressor for mono int16 PCM."""

    def __init__(self, zlib_level: int = 6) -> None:
        if not 0 <= zlib_level <= 9:
            raise ValueError(f"zlib_level must be in [0, 9], got {zlib_level}")
        self.zlib_level = zlib_level

    def encode(self, pcm: np.ndarray, sample_rate: int = 16_000) -> bytes:
        """Encode a 1-D int16 array."""
        if not isinstance(pcm, np.ndarray):
            raise UnsupportedImageError(
                f"expected ndarray, got {type(pcm).__name__}"
            )
        if pcm.dtype != np.int16 or pcm.ndim != 1:
            raise UnsupportedImageError(
                f"expected 1-D int16 PCM, got {pcm.dtype} {pcm.shape}"
            )
        if len(pcm) < 1:
            raise UnsupportedImageError("empty signal")
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        # First-order prediction: residuals are small for smooth signals.
        deltas = np.diff(pcm.astype(np.int32), prepend=np.int32(0))
        residuals = deltas.astype(np.int16)  # wraps safely: int16 diff fits mod 2^16
        payload = zlib.compress(residuals.astype("<i2").tobytes(), self.zlib_level)
        return _HEADER.pack(_MAGIC, _VERSION, sample_rate, len(pcm)) + payload

    def decode(self, data: bytes):
        """Decode to (pcm int16 array, sample_rate)."""
        if len(data) < _HEADER.size:
            raise CorruptStreamError("stream shorter than header")
        magic, version, sample_rate, num_samples = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise CorruptStreamError(f"unsupported version {version}")
        try:
            raw = zlib.decompress(data[_HEADER.size :])
        except zlib.error as exc:
            raise CorruptStreamError(f"deflate stream corrupt: {exc}") from exc
        residuals = np.frombuffer(raw, dtype="<i2")
        if len(residuals) != num_samples:
            raise CorruptStreamError(
                f"header says {num_samples} samples, payload has {len(residuals)}"
            )
        # Undo the first-order prediction modulo 2^16 (int16 wraparound).
        pcm = np.cumsum(residuals.astype(np.int64)) % 65536
        pcm = np.where(pcm >= 32768, pcm - 65536, pcm).astype(np.int16)
        return pcm, sample_rate
