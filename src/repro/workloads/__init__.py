"""Model GPU profiles and standard experiment configurations."""

from repro.workloads.models import (
    MODEL_REGISTRY,
    ModelProfile,
    get_model_profile,
    register_model_profile,
)

__all__ = [
    "MODEL_REGISTRY",
    "ModelProfile",
    "get_model_profile",
    "register_model_profile",
]
