"""Per-batch GPU-time profiles for the paper's models.

Only the *relative* compute intensity matters for reproduction: AlexNet is
compute-light (easily I/O-bound, the paper's main workload), ResNet-18 is
mid, ResNet-50 is compute-heavy (near-full GPU utilization in Figure 1d).
Throughputs below are representative published numbers for the two GPUs the
paper mentions; they set T_G in the epoch model and the GPU hold time in the
event simulator.
"""

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class ModelProfile:
    """GPU timing for one (model, gpu) pair.

    images_per_second: steady-state training throughput when the GPU is
        never starved.
    batch_size: the batch size the throughput was profiled at (and the
        default batch size for experiments using this profile).
    """

    model: str
    gpu: str
    images_per_second: float
    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.images_per_second <= 0:
            raise ValueError(f"images_per_second must be > 0, got {self.images_per_second}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def seconds_per_image(self) -> float:
        return 1.0 / self.images_per_second

    def batch_time_s(self, batch_size: int) -> float:
        """GPU seconds for one batch of ``batch_size`` images."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return batch_size * self.seconds_per_image

    def epoch_gpu_time_s(self, num_samples: int) -> float:
        """Serial GPU seconds for one epoch over ``num_samples`` images."""
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        return num_samples * self.seconds_per_image


MODEL_REGISTRY: Dict[Tuple[str, str], ModelProfile] = {}


def register_model_profile(profile: ModelProfile) -> None:
    """Add or replace a profile in the registry."""
    MODEL_REGISTRY[(profile.model, profile.gpu)] = profile


for _profile in (
    # RTX-6000: the paper's evaluation GPU (section 4).
    ModelProfile("alexnet", "rtx6000", images_per_second=4000.0),
    ModelProfile("resnet18", "rtx6000", images_per_second=1300.0),
    ModelProfile("resnet50", "rtx6000", images_per_second=420.0),
    # V100: the GPU of the Figure 1d motivation experiment.
    ModelProfile("alexnet", "v100", images_per_second=3000.0),
    ModelProfile("resnet18", "v100", images_per_second=1100.0),
    ModelProfile("resnet50", "v100", images_per_second=390.0),
):
    register_model_profile(_profile)


def get_model_profile(model: str, gpu: str = "rtx6000") -> ModelProfile:
    """Look up a registered profile; raises KeyError with the known keys."""
    try:
        return MODEL_REGISTRY[(model, gpu)]
    except KeyError:
        known = ", ".join(f"{m}/{g}" for m, g in sorted(MODEL_REGISTRY))
        raise KeyError(f"no profile for {model}/{gpu}; known: {known}") from None
