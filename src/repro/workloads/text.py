"""LLM-style text ingestion workload (paper section 5's negative case).

"SOPHON may not help for Large Language Models (LLMs), where input data
preprocessing is less critical for accuracy, limiting opportunities for
preprocessing offloading."  There is also a mechanical reason, which this
module makes measurable: an LLM ingestion pipeline (tokenize -> pack to a
fixed sequence length) only ever *grows* a sample on the wire -- UTF-8
text is ~1 byte/token-ish while token ids are 4-byte integers -- so no
sample ever has a positive offloading efficiency and SOPHON's decision
engine plans nothing.

The pipeline is modeled directly as :class:`SampleRecord` stage algebra
(the decision engine's native currency), with sizes and CPU costs drawn
from a calibrated corpus generator.
"""

import dataclasses
import math
from typing import List

import numpy as np

from repro.preprocessing.records import SampleRecord
from repro.utils.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class TextCorpusSpec:
    """Synthetic pre-training corpus parameters.

    mean_doc_bytes: average UTF-8 document size (web-scraped documents
        cluster in the single-digit kilobytes).
    bytes_per_token: UTF-8 bytes consumed per produced token (~4 for
        typical BPE vocabularies on English text).
    token_id_bytes: serialized size of one token id (int32).
    seq_len: packing length; documents are chunked/padded to this.
    tokenize_ns_per_byte: single-core tokenizer throughput (~100 MB/s).
    """

    num_docs: int = 10_000
    mean_doc_bytes: float = 6_000.0
    sigma_doc_bytes: float = 0.8
    bytes_per_token: float = 4.0
    token_id_bytes: int = 4
    seq_len: int = 2048
    tokenize_ns_per_byte: float = 10.0

    def __post_init__(self) -> None:
        if self.num_docs < 0:
            raise ValueError(f"num_docs must be >= 0, got {self.num_docs}")
        if self.mean_doc_bytes <= 0 or self.bytes_per_token <= 0:
            raise ValueError("mean_doc_bytes and bytes_per_token must be > 0")
        if self.seq_len < 1 or self.token_id_bytes < 1:
            raise ValueError("seq_len and token_id_bytes must be >= 1")


def document_sizes(spec: TextCorpusSpec, seed: int = 0) -> np.ndarray:
    """Raw UTF-8 sizes of the corpus documents (lognormal, int64)."""
    rng = derive_rng(seed, 0x7E87)
    mu = math.log(spec.mean_doc_bytes) - spec.sigma_doc_bytes**2 / 2
    sizes = np.exp(rng.normal(mu, spec.sigma_doc_bytes, size=spec.num_docs))
    return np.maximum(np.round(sizes), 64).astype(np.int64)


def llm_ingestion_records(spec: TextCorpusSpec, seed: int = 0) -> List[SampleRecord]:
    """Per-document stage records for the tokenize -> pack pipeline.

    Stage 0: raw UTF-8 bytes.
    Stage 1 (Tokenize): ceil(bytes / bytes_per_token) int32 ids -- for any
        vocabulary with bytes_per_token < 4x token_id_bytes this *grows*
        the sample.
    Stage 2 (Pack): chunk/pad to multiples of seq_len -- grows again.
    """
    records = []
    for doc_id, raw in enumerate(document_sizes(spec, seed)):
        raw = int(raw)
        tokens = max(1, math.ceil(raw / spec.bytes_per_token))
        tokenized = tokens * spec.token_id_bytes
        chunks = max(1, math.ceil(tokens / spec.seq_len))
        packed = chunks * spec.seq_len * spec.token_id_bytes
        tokenize_cost = raw * spec.tokenize_ns_per_byte * 1e-9
        pack_cost = packed * 0.5e-9  # a memcpy-grade pass
        records.append(
            SampleRecord(
                sample_id=doc_id,
                stage_sizes=(raw, tokenized, packed),
                op_costs=(tokenize_cost, pack_cost),
            )
        )
    return records


def offloadable_fraction(records: List[SampleRecord]) -> float:
    """Fraction of documents with any positive offloading efficiency."""
    if not records:
        return 0.0
    return sum(1 for r in records if r.offload_efficiency > 0) / len(records)
