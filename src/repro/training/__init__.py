"""A small real-learning substrate for the section-3.3 accuracy claim.

The paper rejects preprocess-once-and-reuse because "random augmentations,
typically applied during online preprocessing, are crucial for DL training
accuracy".  This package makes that claim measurable without a deep-
learning framework: a numpy softmax-regression classifier, a labeled
procedural image dataset, and a controlled study comparing training with
fresh per-epoch augmentations (what SOPHON preserves) against training on
a single frozen augmentation per sample (what preprocess-once implies).
"""

from repro.training.softmax import SoftmaxClassifier
from repro.training.labeled import LabeledImageDataset, generate_labeled_image
from repro.training.augment_study import AugmentationStudy, StudyResult

__all__ = [
    "AugmentationStudy",
    "LabeledImageDataset",
    "SoftmaxClassifier",
    "StudyResult",
    "generate_labeled_image",
]
