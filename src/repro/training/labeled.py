"""Labeled procedural images for the accuracy study.

Four classes, one per brightness-gradient direction (up/down/left/right).
The label survives RandomResizedCrop (a crop of a gradient keeps its
direction) but per-image noise does not -- exactly the structure that
separates "fresh augmentation each epoch" from "one frozen augmentation".
Horizontal flips are *excluded* from the study pipeline since they swap
the left/right classes.
"""

from typing import Tuple

import numpy as np

from repro.utils.rng import derive_rng

CLASS_NAMES = ("up", "down", "left", "right")
NUM_CLASSES = len(CLASS_NAMES)


def generate_labeled_image(
    rng: np.random.Generator,
    height: int,
    width: int,
    class_id: int,
    noise: float = 0.35,
) -> np.ndarray:
    """An (H, W, 3) uint8 image whose gradient direction encodes the class."""
    if not 0 <= class_id < NUM_CLASSES:
        raise ValueError(f"class_id must be in [0, {NUM_CLASSES}), got {class_id}")
    if not 0.0 <= noise <= 2.0:
        raise ValueError(f"noise must be in [0, 2], got {noise}")

    ys = np.linspace(0.0, 1.0, height)[:, None]
    xs = np.linspace(0.0, 1.0, width)[None, :]
    ramps = {
        0: 1.0 - ys + 0.0 * xs,  # up: bright at the top
        1: ys + 0.0 * xs,  # down
        2: 1.0 - xs + 0.0 * ys,  # left
        3: xs + 0.0 * ys,  # right
    }
    signal = 0.5 + 0.3 * (ramps[class_id] - 0.5)

    # The distractor is *low-frequency*: smooth random waves that survive
    # the feature pooling and can locally overwhelm the class gradient --
    # a single crop can be genuinely ambiguous, the crop *distribution* is
    # not.  Shared across channels (like real lighting/shadows).
    distractor = np.zeros((height, width))
    for _ in range(3):
        fy, fx = rng.uniform(0.5, 2.5, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        distractor += np.sin(2 * np.pi * (fy * ys + fx * xs) + phase)
    distractor *= noise * 0.18

    channels = []
    for _ in range(3):
        tint = rng.uniform(0.9, 1.1)
        plane = (
            signal * tint
            + distractor
            + 0.05 * rng.standard_normal((height, width))
        )
        channels.append(plane)
    stacked = np.stack(channels, axis=-1)
    return np.clip(np.round(stacked * 255.0), 0, 255).astype(np.uint8)


class LabeledImageDataset:
    """Deterministic labeled dataset: image i has label i % NUM_CLASSES."""

    def __init__(
        self,
        num_samples: int,
        seed: int = 0,
        side_range: Tuple[int, int] = (96, 192),
        noise: float = 0.35,
    ) -> None:
        if num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {num_samples}")
        if not 8 <= side_range[0] <= side_range[1]:
            raise ValueError(f"bad side_range {side_range}")
        self.num_samples = num_samples
        self.seed = seed
        self.side_range = side_range
        self.noise = noise

    def __len__(self) -> int:
        return self.num_samples

    def label(self, sample_id: int) -> int:
        return sample_id % NUM_CLASSES

    def image(self, sample_id: int) -> np.ndarray:
        if not 0 <= sample_id < self.num_samples:
            raise IndexError(f"sample {sample_id} out of range")
        rng = derive_rng(self.seed, 0x1ABE1, sample_id)
        lo, hi = self.side_range
        height = int(rng.integers(lo, hi + 1))
        width = int(rng.integers(lo, hi + 1))
        return generate_labeled_image(
            rng, height, width, self.label(sample_id), self.noise
        )

    def labels(self) -> np.ndarray:
        return np.array([self.label(i) for i in range(self.num_samples)])
