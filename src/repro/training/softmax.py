"""Multinomial logistic regression in numpy (minibatch SGD)."""

import numpy as np


class SoftmaxClassifier:
    """Linear softmax classifier trained by minibatch SGD.

    Deliberately tiny: the accuracy study needs a real learner whose
    generalization responds to input diversity, not a deep network.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        learning_rate: float = 0.5,
        weight_decay: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if num_features < 1 or num_classes < 2:
            raise ValueError(
                f"need >= 1 feature and >= 2 classes, got {num_features}/{num_classes}"
            )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.01, size=(num_features, num_classes))
        self.bias = np.zeros(num_classes)
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.steps = 0

    def _logits(self, features: np.ndarray) -> np.ndarray:
        return features @ self.weights + self.bias

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._softmax(self._logits(np.atleast_2d(features)))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        proba = self.predict_proba(features)
        picked = proba[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def partial_fit(self, features: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step on a minibatch; returns the batch loss."""
        features = np.atleast_2d(features)
        labels = np.asarray(labels)
        if len(features) != len(labels):
            raise ValueError(
                f"{len(features)} feature rows vs {len(labels)} labels"
            )
        proba = self.predict_proba(features)
        loss = self.loss(features, labels)

        grad_logits = proba.copy()
        grad_logits[np.arange(len(labels)), labels] -= 1.0
        grad_logits /= len(labels)

        grad_w = features.T @ grad_logits + self.weight_decay * self.weights
        grad_b = grad_logits.sum(axis=0)

        # 1/sqrt step decay keeps late epochs from bouncing.
        rate = self.learning_rate / np.sqrt(1.0 + self.steps / 100.0)
        self.weights -= rate * grad_w
        self.bias -= rate * grad_b
        self.steps += 1
        return loss

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(features) == np.asarray(labels)).mean())
