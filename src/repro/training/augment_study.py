"""The section-3.3 study: fresh augmentation vs preprocess-once.

Two training regimes on identical data, models, and step counts:

- **online** -- each epoch draws a fresh RandomResizedCrop per sample (the
  behaviour SOPHON preserves by re-running augmentation remotely every
  epoch);
- **frozen** -- each sample's epoch-0 crop is computed once and reused in
  every epoch (what "preprocess once, store, and reuse" implies).

Evaluation uses held-out samples under random crops.  With a small noisy
training set, the frozen regime memorizes its fixed crops' noise while the
online regime sees a crop distribution -- a measurable generalization gap.
"""

import dataclasses
from typing import List, Optional

import numpy as np

from repro.preprocessing.ops import RandomResizedCrop
from repro.preprocessing.payload import Payload
from repro.training.labeled import NUM_CLASSES, LabeledImageDataset
from repro.training.softmax import SoftmaxClassifier
from repro.utils.rng import derive_rng


def crop_features(
    image: np.ndarray,
    rng: np.random.Generator,
    crop: RandomResizedCrop,
    pool: int = 8,
) -> np.ndarray:
    """Augment one image and reduce it to a small standardized feature row.

    The augmented crop is average-pooled to ``pool x pool`` per channel and
    standardized -- a stand-in for the early layers of a network.
    """
    payload = Payload.image(image)
    params = crop.draw_params(rng, payload.meta)
    out = crop.apply(payload, params).data.astype(np.float64) / 255.0
    side = out.shape[0]
    bins = side // pool
    pooled = out[: bins * pool, : bins * pool].reshape(
        pool, bins, pool, bins, 3
    ).mean(axis=(1, 3))
    flat = pooled.reshape(-1)
    return (flat - flat.mean()) / (flat.std() + 1e-9)


@dataclasses.dataclass
class StudyResult:
    """Accuracies of both regimes on the held-out set."""

    online_accuracy: float
    frozen_accuracy: float
    train_samples: int
    test_samples: int
    epochs: int

    @property
    def gap(self) -> float:
        return self.online_accuracy - self.frozen_accuracy


class AugmentationStudy:
    """Run the online-vs-frozen comparison end to end."""

    def __init__(
        self,
        train_samples: int = 24,
        test_samples: int = 120,
        epochs: int = 30,
        crop_size: int = 64,
        noise: float = 1.0,
        seed: int = 0,
    ) -> None:
        if train_samples < NUM_CLASSES or test_samples < NUM_CLASSES:
            raise ValueError("need at least one sample per class on each side")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.train = LabeledImageDataset(train_samples, seed=seed, noise=noise)
        self.test = LabeledImageDataset(test_samples, seed=seed + 1, noise=noise)
        self.epochs = epochs
        self.crop = RandomResizedCrop(size=crop_size, scale=(0.3, 1.0))
        self.seed = seed

    def _features(self, dataset: LabeledImageDataset, sample_id: int, salt: int) -> np.ndarray:
        rng = derive_rng(self.seed, salt, sample_id)
        return crop_features(dataset.image(sample_id), rng, self.crop)

    def _train_model(self, frozen: bool, model_seed: int) -> SoftmaxClassifier:
        probe = self._features(self.train, 0, salt=0)
        model = SoftmaxClassifier(
            num_features=probe.size, num_classes=NUM_CLASSES, seed=model_seed
        )
        labels = self.train.labels()
        order_rng = derive_rng(self.seed, 0x0BDE, model_seed)
        frozen_rows: Optional[List[np.ndarray]] = None
        if frozen:
            # Preprocess once: epoch-0 augmentation, reused forever.
            frozen_rows = [
                self._features(self.train, sid, salt=1)
                for sid in range(len(self.train))
            ]
        for epoch in range(self.epochs):
            order = order_rng.permutation(len(self.train))
            if frozen:
                rows = np.stack([frozen_rows[sid] for sid in order])
            else:
                rows = np.stack(
                    [
                        # salt = epoch + 1 keeps epoch 0 identical to the
                        # frozen regime's stored crops (same starting data).
                        self._features(self.train, sid, salt=epoch + 1)
                        for sid in order
                    ]
                )
            for start in range(0, len(order), 16):
                batch = slice(start, start + 16)
                model.partial_fit(rows[batch], labels[order[batch]])
        return model

    def _test_set(self) -> tuple:
        rows = np.stack(
            [
                self._features(self.test, sid, salt=0xE5A)
                for sid in range(len(self.test))
            ]
        )
        return rows, self.test.labels()

    def run(self, model_seed: int = 0) -> StudyResult:
        test_rows, test_labels = self._test_set()
        online = self._train_model(frozen=False, model_seed=model_seed)
        frozen = self._train_model(frozen=True, model_seed=model_seed)
        return StudyResult(
            online_accuracy=online.accuracy(test_rows, test_labels),
            frozen_accuracy=frozen.accuracy(test_rows, test_labels),
            train_samples=len(self.train),
            test_samples=len(self.test),
            epochs=self.epochs,
        )
