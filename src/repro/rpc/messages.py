"""Wire messages: fetch requests carrying offload directives, and responses.

Binary layout (little endian):

Request:  magic 'FQ01' | sample_id u32 | epoch u32 | split u8
Response: magic 'FR01' | sample_id u32 | epoch u32 | split u8 | kind u8 |
          height u32 | width u32 | channels u32 | payload_len u32 | payload

``kind`` is the :class:`~repro.preprocessing.payload.PayloadKind` of the
payload: encoded bytes for split 0, uint8 pixels after crop/flip, float32
tensors after ToTensor/Normalize.
"""

import dataclasses
import struct

import numpy as np

from repro.preprocessing.payload import Payload, PayloadKind

_REQUEST = struct.Struct("<4sIIB")
_RESPONSE = struct.Struct("<4sIIBBIIII")
_REQUEST_MAGIC = b"FQ01"
_RESPONSE_MAGIC = b"FR01"

REQUEST_HEADER_SIZE = _REQUEST.size
RESPONSE_HEADER_SIZE = _RESPONSE.size

_KIND_CODES = {
    PayloadKind.ENCODED: 0,
    PayloadKind.IMAGE_U8: 1,
    PayloadKind.TENSOR_F32: 2,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


class ProtocolError(Exception):
    """A message failed to parse or violated the protocol."""


@dataclasses.dataclass(frozen=True)
class FetchRequest:
    """Ask the storage server for a sample, offloading ops 1..split.

    split=0 requests the raw stored bytes (no offloading).
    """

    sample_id: int
    epoch: int
    split: int

    def __post_init__(self) -> None:
        if self.sample_id < 0:
            raise ValueError(f"sample_id must be >= 0, got {self.sample_id}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if not 0 <= self.split <= 255:
            raise ValueError(f"split must be in [0, 255], got {self.split}")

    def to_bytes(self) -> bytes:
        return _REQUEST.pack(_REQUEST_MAGIC, self.sample_id, self.epoch, self.split)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FetchRequest":
        if len(data) != _REQUEST.size:
            raise ProtocolError(f"request is {len(data)} bytes, expected {_REQUEST.size}")
        magic, sample_id, epoch, split = _REQUEST.unpack(data)
        if magic != _REQUEST_MAGIC:
            raise ProtocolError(f"bad request magic {magic!r}")
        return cls(sample_id=sample_id, epoch=epoch, split=split)


@dataclasses.dataclass(frozen=True)
class FetchResponse:
    """A sample with ops 1..split already applied by the storage server."""

    sample_id: int
    epoch: int
    split: int
    kind: PayloadKind
    height: int
    width: int
    channels: int
    payload: bytes

    def to_bytes(self) -> bytes:
        return (
            _RESPONSE.pack(
                _RESPONSE_MAGIC,
                self.sample_id,
                self.epoch,
                self.split,
                _KIND_CODES[self.kind],
                self.height,
                self.width,
                self.channels,
                len(self.payload),
            )
            + self.payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FetchResponse":
        if len(data) < _RESPONSE.size:
            raise ProtocolError(f"response truncated at {len(data)} bytes")
        (
            magic,
            sample_id,
            epoch,
            split,
            kind_code,
            height,
            width,
            channels,
            payload_len,
        ) = _RESPONSE.unpack_from(data)
        if magic != _RESPONSE_MAGIC:
            raise ProtocolError(f"bad response magic {magic!r}")
        if kind_code not in _CODE_KINDS:
            raise ProtocolError(f"unknown payload kind code {kind_code}")
        payload = data[_RESPONSE.size :]
        if len(payload) != payload_len:
            raise ProtocolError(
                f"payload length mismatch: header says {payload_len}, got {len(payload)}"
            )
        return cls(
            sample_id=sample_id,
            epoch=epoch,
            split=split,
            kind=_CODE_KINDS[kind_code],
            height=height,
            width=width,
            channels=channels,
            payload=payload,
        )

    @classmethod
    def from_payload(
        cls, request: FetchRequest, payload: Payload, raw_height: int, raw_width: int
    ) -> "FetchResponse":
        """Wrap a pipeline payload for the wire."""
        if payload.kind is PayloadKind.ENCODED:
            height, width, channels = raw_height, raw_width, 3
            body = bytes(payload.data)
        elif payload.kind is PayloadKind.IMAGE_U8:
            height, width, channels = payload.data.shape
            body = np.ascontiguousarray(payload.data).tobytes()
        else:
            channels, height, width = payload.data.shape
            body = np.ascontiguousarray(payload.data.astype("<f4")).tobytes()
        return cls(
            sample_id=request.sample_id,
            epoch=request.epoch,
            split=request.split,
            kind=payload.kind,
            height=height,
            width=width,
            channels=channels,
            payload=body,
        )

    def to_payload(self) -> Payload:
        """Reconstruct the pipeline payload on the client side."""
        if self.kind is PayloadKind.ENCODED:
            return Payload.encoded(self.payload, height=self.height, width=self.width)
        if self.kind is PayloadKind.IMAGE_U8:
            expected = self.height * self.width * self.channels
            if len(self.payload) != expected:
                raise ProtocolError(
                    f"image payload is {len(self.payload)} bytes, expected {expected}"
                )
            array = np.frombuffer(self.payload, dtype=np.uint8).reshape(
                self.height, self.width, self.channels
            )
            return Payload.image(array.copy())
        expected = self.height * self.width * self.channels * 4
        if len(self.payload) != expected:
            raise ProtocolError(
                f"tensor payload is {len(self.payload)} bytes, expected {expected}"
            )
        array = np.frombuffer(self.payload, dtype="<f4").reshape(
            self.channels, self.height, self.width
        )
        return Payload.tensor(array.astype(np.float32, copy=True))


def response_wire_size(payload_nbytes: int) -> int:
    """Total response size on the wire for a payload of ``payload_nbytes``.

    This is the exact formula the event simulator mirrors via
    ``ClusterSpec.response_overhead_bytes``.
    """
    if payload_nbytes < 0:
        raise ValueError(f"payload_nbytes must be >= 0, got {payload_nbytes}")
    return RESPONSE_HEADER_SIZE + payload_nbytes
