"""Wire messages: fetch requests carrying offload directives, and responses.

Binary layout (little endian):

Request:     magic 'FQ01' | sample_id u32 | epoch u32 | split u8
Response v2: magic 'FR02' | sample_id u32 | epoch u32 | split u8 | kind u8 |
             height u32 | width u32 | channels u32 | payload_len u32 |
             payload_crc32 u32 | payload
Response v1: magic 'FR01' | same fields minus payload_crc32 | payload

``kind`` is the :class:`~repro.preprocessing.payload.PayloadKind` of the
payload: encoded bytes for split 0, uint8 pixels after crop/flip, float32
tensors after ToTensor/Normalize.

Responses are emitted as v2 (checksummed); v1 frames from older peers are
still accepted.  A v2 frame whose payload fails its CRC32 raises
:class:`ChecksumError`, which the retry layer treats as transient -- the
payload was damaged in transit, not malformed by the sender -- so corrupted
samples are re-fetched instead of silently trained on.
"""

import dataclasses
import struct
import zlib

import numpy as np

from repro.preprocessing.payload import Payload, PayloadKind

_REQUEST = struct.Struct("<4sIIB")
_RESPONSE_V1 = struct.Struct("<4sIIBBIIII")
_RESPONSE_V2 = struct.Struct("<4sIIBBIIIII")
_REQUEST_MAGIC = b"FQ01"
_RESPONSE_MAGIC_V1 = b"FR01"
_RESPONSE_MAGIC_V2 = b"FR02"

REQUEST_HEADER_SIZE = _REQUEST.size
RESPONSE_HEADER_SIZE = _RESPONSE_V2.size
RESPONSE_HEADER_SIZE_V1 = _RESPONSE_V1.size


def payload_checksum(payload: bytes) -> int:
    """The CRC32 a v2 response carries for ``payload``."""
    return zlib.crc32(payload) & 0xFFFFFFFF

_KIND_CODES = {
    PayloadKind.ENCODED: 0,
    PayloadKind.IMAGE_U8: 1,
    PayloadKind.TENSOR_F32: 2,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


class ProtocolError(Exception):
    """A message failed to parse or violated the protocol."""


class ChecksumError(ProtocolError):
    """A v2 response's payload does not match its CRC32.

    Unlike other protocol errors this one is *transient* (the bytes were
    damaged on the wire); the retry layer re-fetches on it.
    """


@dataclasses.dataclass(frozen=True)
class FetchRequest:
    """Ask the storage server for a sample, offloading ops 1..split.

    split=0 requests the raw stored bytes (no offloading).
    """

    sample_id: int
    epoch: int
    split: int

    def __post_init__(self) -> None:
        if self.sample_id < 0:
            raise ValueError(f"sample_id must be >= 0, got {self.sample_id}")
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if not 0 <= self.split <= 255:
            raise ValueError(f"split must be in [0, 255], got {self.split}")

    def to_bytes(self) -> bytes:
        return _REQUEST.pack(_REQUEST_MAGIC, self.sample_id, self.epoch, self.split)

    @classmethod
    def from_bytes(cls, data: bytes) -> "FetchRequest":
        if len(data) != _REQUEST.size:
            raise ProtocolError(f"request is {len(data)} bytes, expected {_REQUEST.size}")
        magic, sample_id, epoch, split = _REQUEST.unpack(data)
        if magic != _REQUEST_MAGIC:
            raise ProtocolError(f"bad request magic {magic!r}")
        return cls(sample_id=sample_id, epoch=epoch, split=split)


@dataclasses.dataclass(frozen=True)
class FetchResponse:
    """A sample with ops 1..split already applied by the storage server."""

    sample_id: int
    epoch: int
    split: int
    kind: PayloadKind
    height: int
    width: int
    channels: int
    payload: bytes

    def to_bytes(self) -> bytes:
        """Serialize as a v2 (checksummed) frame."""
        return (
            _RESPONSE_V2.pack(
                _RESPONSE_MAGIC_V2,
                self.sample_id,
                self.epoch,
                self.split,
                _KIND_CODES[self.kind],
                self.height,
                self.width,
                self.channels,
                len(self.payload),
                payload_checksum(self.payload),
            )
            + self.payload
        )

    def to_bytes_v1(self) -> bytes:
        """Serialize as a legacy v1 frame (no checksum) -- compat emitters."""
        return (
            _RESPONSE_V1.pack(
                _RESPONSE_MAGIC_V1,
                self.sample_id,
                self.epoch,
                self.split,
                _KIND_CODES[self.kind],
                self.height,
                self.width,
                self.channels,
                len(self.payload),
            )
            + self.payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FetchResponse":
        if len(data) < 4:
            raise ProtocolError(f"response truncated at {len(data)} bytes")
        magic = bytes(data[:4])
        if magic == _RESPONSE_MAGIC_V2:
            header, checksum = _RESPONSE_V2, None
        elif magic == _RESPONSE_MAGIC_V1:
            header, checksum = _RESPONSE_V1, None
        else:
            raise ProtocolError(f"bad response magic {magic!r}")
        if len(data) < header.size:
            raise ProtocolError(f"response truncated at {len(data)} bytes")
        fields = header.unpack_from(data)
        if header is _RESPONSE_V2:
            (_, sample_id, epoch, split, kind_code, height, width, channels,
             payload_len, checksum) = fields
        else:
            (_, sample_id, epoch, split, kind_code, height, width, channels,
             payload_len) = fields
        if kind_code not in _CODE_KINDS:
            raise ProtocolError(f"unknown payload kind code {kind_code}")
        payload = data[header.size :]
        if len(payload) != payload_len:
            raise ProtocolError(
                f"payload length mismatch: header says {payload_len}, got {len(payload)}"
            )
        if checksum is not None and payload_checksum(payload) != checksum:
            raise ChecksumError(
                f"payload CRC32 {payload_checksum(payload):#010x} does not "
                f"match frame checksum {checksum:#010x}"
            )
        return cls(
            sample_id=sample_id,
            epoch=epoch,
            split=split,
            kind=_CODE_KINDS[kind_code],
            height=height,
            width=width,
            channels=channels,
            payload=payload,
        )

    @classmethod
    def from_payload(
        cls, request: FetchRequest, payload: Payload, raw_height: int, raw_width: int
    ) -> "FetchResponse":
        """Wrap a pipeline payload for the wire."""
        if payload.kind is PayloadKind.ENCODED:
            height, width, channels = raw_height, raw_width, 3
            body = bytes(payload.data)
        elif payload.kind is PayloadKind.IMAGE_U8:
            height, width, channels = payload.data.shape
            body = np.ascontiguousarray(payload.data).tobytes()
        else:
            channels, height, width = payload.data.shape
            body = np.ascontiguousarray(payload.data.astype("<f4")).tobytes()
        return cls(
            sample_id=request.sample_id,
            epoch=request.epoch,
            split=request.split,
            kind=payload.kind,
            height=height,
            width=width,
            channels=channels,
            payload=body,
        )

    def to_payload(self) -> Payload:
        """Reconstruct the pipeline payload on the client side."""
        if self.kind is PayloadKind.ENCODED:
            return Payload.encoded(self.payload, height=self.height, width=self.width)
        if self.kind is PayloadKind.IMAGE_U8:
            expected = self.height * self.width * self.channels
            if len(self.payload) != expected:
                raise ProtocolError(
                    f"image payload is {len(self.payload)} bytes, expected {expected}"
                )
            array = np.frombuffer(self.payload, dtype=np.uint8).reshape(
                self.height, self.width, self.channels
            )
            return Payload.image(array.copy())
        expected = self.height * self.width * self.channels * 4
        if len(self.payload) != expected:
            raise ProtocolError(
                f"tensor payload is {len(self.payload)} bytes, expected {expected}"
            )
        array = np.frombuffer(self.payload, dtype="<f4").reshape(
            self.channels, self.height, self.width
        )
        return Payload.tensor(array.astype(np.float32, copy=True))


#: Frame-type registry: wire magic -> frame class (RPC01 requires every
#: codec class to appear here, so generic tooling can decode any frame).
FRAME_TYPES = {
    _REQUEST_MAGIC: FetchRequest,
    _RESPONSE_MAGIC_V1: FetchResponse,
    _RESPONSE_MAGIC_V2: FetchResponse,
}


def frame_type_for(data: bytes) -> type:
    """The frame class that decodes *data*, by its 4-byte magic."""
    if len(data) < 4:
        raise ProtocolError(f"frame truncated at {len(data)} bytes, no magic")
    magic = bytes(data[:4])
    try:
        return FRAME_TYPES[magic]
    except KeyError:
        raise ProtocolError(f"bad frame magic {magic!r}") from None


def response_wire_size(payload_nbytes: int) -> int:
    """Total response size on the wire for a payload of ``payload_nbytes``.

    This is the exact formula the event simulator mirrors via
    ``ClusterSpec.response_overhead_bytes``.
    """
    if payload_nbytes < 0:
        raise ValueError(f"payload_nbytes must be >= 0, got {payload_nbytes}")
    return RESPONSE_HEADER_SIZE + payload_nbytes
