"""Bounded-retry wrapper around the storage client.

Fetches cross a network; transient transport failures (connection resets,
timeouts, checksum-detected corruption) should be retried a bounded number
of times -- with exponential backoff and full jitter, so a struggling
storage node is not hammered by a synchronized retry storm -- before the
data loader gives up.  Protocol errors are *not* retryable: a malformed
response will be malformed again.  :class:`ChecksumError` is the
exception's exception: the *sender's* frame was fine, the wire damaged it,
so a re-fetch is exactly the right move.

The sleep and clock are injectable so tests (and the simulator) run the
retry logic without real delays.
"""

import dataclasses
import random
import time
from typing import Callable, Optional, Tuple, Type

from repro.preprocessing.payload import Payload
from repro.rpc.fetcher import SupportsFetch
from repro.rpc.messages import ChecksumError
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id


class FetchFailedError(Exception):
    """All retry attempts were exhausted; the cause is chained."""


class DeadlineExceededError(FetchFailedError):
    """The per-fetch deadline elapsed before an attempt succeeded."""


class RetryBudgetExhaustedError(FetchFailedError):
    """The client's lifetime retry budget is spent; no more backoff.

    Distinct from :class:`DeadlineExceededError` (one fetch ran out of
    time) -- this is the *client* running out of patience across fetches,
    the signal a data loader uses to stop retrying a dead peer and demote
    to local preprocessing instead.
    """


def failure_outcome(exc: BaseException) -> str:
    """The ``rpc_fetch_seconds`` outcome label for a failed fetch.

    Keeps shed-vs-timeout distinguishable on one histogram: ``deadline``
    (per-fetch deadline), ``budget`` (client-wide retry budget),
    ``exhausted`` (attempts spent), ``error`` (non-retryable failure).
    """
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, RetryBudgetExhaustedError):
        return "budget"
    if isinstance(exc, FetchFailedError):
        return "exhausted"
    return "error"


@dataclasses.dataclass
class RetryStats:
    """Attempt accounting across the client's lifetime.

    attempts counts every call of the inner fetcher, including the one
    that ultimately fails -- so ``attempts == fetches + retries`` always
    holds, where retries counts re-attempts actually performed.
    """

    fetches: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    checksum_failures: int = 0
    backoff_s: float = 0.0
    #: Fetches that failed because the lifetime retry budget was spent.
    budget_exhaustions: int = 0


class RetryingClient:
    """Wraps any fetcher with bounded, backed-off retries on transient errors.

    base_delay/max_delay: exponential backoff bounds; the delay before
        retry k is drawn uniformly from [0, min(max_delay, base_delay*2^k)]
        (full jitter) unless ``jitter=False``, which uses the cap itself.
    deadline_s: optional wall-clock budget per fetch; once spent, the fetch
        fails with :class:`DeadlineExceededError` instead of retrying on.
    budget_s: optional *lifetime* retry budget -- total backoff seconds
        this client may spend across every fetch it ever makes.  A fetch
        whose next backoff would overdraw it fails immediately with
        :class:`RetryBudgetExhaustedError` (outcome label ``budget``); a
        peer that is down does not get to cost every fetch its full
        per-fetch retry dance.
    sleep/clock: injectable for instant tests; default to ``time.sleep``
        and ``time.monotonic``.
    """

    def __init__(
        self,
        inner: SupportsFetch,
        max_attempts: int = 3,
        retryable: Tuple[Type[BaseException], ...] = (
            ConnectionError,
            TimeoutError,
            ChecksumError,
        ),
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: bool = True,
        deadline_s: Optional[float] = None,
        budget_s: Optional[float] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"budget_s must be > 0, got {budget_s}")
        self.inner = inner
        self.max_attempts = max_attempts
        self.retryable = retryable
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.deadline_s = deadline_s
        self.budget_s = budget_s
        self._sleep = sleep if sleep is not None else time.sleep
        self._clock = clock if clock is not None else time.monotonic
        self._rng = random.Random(seed)
        self.stats = RetryStats()
        self.tracer = tracer

    def backoff_delay(self, retry_index: int) -> float:
        """The delay before re-attempt ``retry_index`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2**retry_index))
        if not self.jitter:
            return cap
        return self._rng.uniform(0.0, cap)

    @property
    def budget_remaining_s(self) -> Optional[float]:
        """Lifetime backoff seconds still spendable (None: unlimited)."""
        if self.budget_s is None:
            return None
        return max(0.0, self.budget_s - self.stats.backoff_s)

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        trace = trace_id(sample_id, epoch)
        duration = get_default_registry().histogram(
            "rpc_fetch_seconds",
            "end-to-end fetch latency including backoff and retries",
            labels=["outcome"],
        )
        started = self._clock()
        if self.tracer is not None:
            self.tracer.begin(trace, "rpc.fetch", split=split)
        try:
            payload = self._fetch(trace, sample_id, epoch, split)
        except BaseException as exc:
            outcome = failure_outcome(exc)
            duration.observe(self._clock() - started, outcome=outcome)
            if self.tracer is not None:
                self.tracer.end(
                    trace, "rpc.fetch", outcome=outcome, error=type(exc).__name__
                )
            raise
        duration.observe(self._clock() - started, outcome="ok")
        if self.tracer is not None:
            self.tracer.end(trace, "rpc.fetch", outcome="ok")
        return payload

    def _fetch(
        self, trace: str, sample_id: int, epoch: int, split: int
    ) -> Payload:
        registry = get_default_registry()
        attempts_total = registry.counter(
            "rpc_fetch_attempts_total",
            "individual fetch attempts, including the failing last one",
        )
        self.stats.fetches += 1
        registry.counter("rpc_fetches_total", "fetches through RetryingClient").inc()
        started = self._clock()
        last_error = None
        deadline_hit = False
        for attempt in range(self.max_attempts):
            if attempt > 0:
                delay = self.backoff_delay(attempt - 1)
                if self.deadline_s is not None:
                    remaining = self.deadline_s - (self._clock() - started)
                    if remaining <= delay:
                        deadline_hit = True
                        break  # sleeping would blow the deadline
                budget_left = self.budget_remaining_s
                if budget_left is not None and delay > budget_left:
                    self.stats.failures += 1
                    self.stats.budget_exhaustions += 1
                    registry.counter(
                        "rpc_fetch_failures_total",
                        "fetches that exhausted their budget",
                    ).inc()
                    raise RetryBudgetExhaustedError(
                        f"sample {sample_id}: the client's {self.budget_s}s "
                        f"retry budget is spent ({budget_left:.3f}s left, "
                        f"next backoff {delay:.3f}s)"
                    ) from last_error
                if delay > 0:
                    self._sleep(delay)
                    self.stats.backoff_s += delay
                    registry.counter(
                        "rpc_backoff_seconds_total", "time spent in retry backoff"
                    ).inc(delay)
                self.stats.retries += 1
                registry.counter(
                    "rpc_fetch_retries_total", "re-attempts after a transient error"
                ).inc()
                if self.tracer is not None:
                    self.tracer.instant(
                        trace, "rpc.retry", attempt=attempt, backoff_s=delay
                    )
            self.stats.attempts += 1
            attempts_total.inc()
            try:
                return self.inner.fetch(sample_id, epoch, split)
            except self.retryable as exc:
                last_error = exc
                registry.counter(
                    "rpc_fetch_errors_total",
                    "retryable attempt errors by exception type",
                    labels=["error"],
                ).inc(error=type(exc).__name__)
                if isinstance(exc, ChecksumError):
                    self.stats.checksum_failures += 1
                if (
                    self.deadline_s is not None
                    and self._clock() - started >= self.deadline_s
                ):
                    self.stats.failures += 1
                    raise DeadlineExceededError(
                        f"sample {sample_id} missed its {self.deadline_s}s "
                        f"deadline after {attempt + 1} attempts"
                    ) from exc
        self.stats.failures += 1
        registry.counter(
            "rpc_fetch_failures_total", "fetches that exhausted their budget"
        ).inc()
        if deadline_hit or (
            self.deadline_s is not None
            and self._clock() - started >= self.deadline_s
        ):
            raise DeadlineExceededError(
                f"sample {sample_id} missed its {self.deadline_s}s deadline"
            ) from last_error
        raise FetchFailedError(
            f"sample {sample_id} failed after {self.max_attempts} attempts"
        ) from last_error
