"""Bounded-retry wrapper around the storage client.

Fetches cross a network; transient transport failures (connection resets,
timeouts) should be retried a bounded number of times before the data
loader gives up.  Protocol errors are *not* retryable: a malformed
response will be malformed again.
"""

import dataclasses
from typing import Tuple, Type

from repro.preprocessing.payload import Payload


class FetchFailedError(Exception):
    """All retry attempts were exhausted; the cause is chained."""


@dataclasses.dataclass
class RetryStats:
    """Attempt accounting across the client's lifetime."""

    fetches: int = 0
    retries: int = 0
    failures: int = 0


class RetryingClient:
    """Wraps any fetcher with bounded retries on transient errors."""

    def __init__(
        self,
        inner,
        max_attempts: int = 3,
        retryable: Tuple[Type[BaseException], ...] = (ConnectionError, TimeoutError),
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.inner = inner
        self.max_attempts = max_attempts
        self.retryable = retryable
        self.stats = RetryStats()

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        self.stats.fetches += 1
        last_error = None
        for attempt in range(self.max_attempts):
            try:
                return self.inner.fetch(sample_id, epoch, split)
            except self.retryable as exc:
                last_error = exc
                if attempt + 1 < self.max_attempts:
                    self.stats.retries += 1
        self.stats.failures += 1
        raise FetchFailedError(
            f"sample {sample_id} failed after {self.max_attempts} attempts"
        ) from last_error
