"""The data-fetch wire protocol between compute and storage nodes.

The paper uses gRPC; here the transport is an in-process channel, but the
*protocol* is real: requests and responses are serialized to bytes, offload
directives ride on each fetch request (Figure 2d), the storage server
executes the requested pipeline prefix (Figure 2e), and every byte crossing
the channel is counted.  Traffic numbers on the materialized path come from
these actual message lengths.

The transport is hardened for unreliable storage nodes: v2 response frames
carry a payload CRC32 (:class:`ChecksumError` is retryable), the
:class:`RetryingClient` backs off exponentially with full jitter and
honours per-fetch deadlines, and a :class:`CircuitBreaker` stops a dead
server from costing every fetch its full retry budget (see
``docs/robustness.md``).
"""

from repro.rpc.messages import (
    FRAME_TYPES,
    REQUEST_HEADER_SIZE,
    RESPONSE_HEADER_SIZE,
    RESPONSE_HEADER_SIZE_V1,
    ChecksumError,
    FetchRequest,
    FetchResponse,
    ProtocolError,
    frame_type_for,
    payload_checksum,
    response_wire_size,
)
from repro.rpc.fetcher import SupportsFetch, SupportsScanFetch
from repro.rpc.channel import ChannelStats, InMemoryChannel
from repro.rpc.server import StorageServer
from repro.rpc.client import StorageClient
from repro.rpc.retry import (
    DeadlineExceededError,
    FetchFailedError,
    RetryBudgetExhaustedError,
    RetryingClient,
    RetryStats,
)
from repro.rpc.breaker import (
    BreakerOpenError,
    BreakerState,
    BreakerStats,
    CircuitBreaker,
)

__all__ = [
    "BreakerOpenError",
    "BreakerState",
    "BreakerStats",
    "ChannelStats",
    "ChecksumError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "FRAME_TYPES",
    "FetchFailedError",
    "FetchRequest",
    "FetchResponse",
    "InMemoryChannel",
    "ProtocolError",
    "REQUEST_HEADER_SIZE",
    "RESPONSE_HEADER_SIZE",
    "RESPONSE_HEADER_SIZE_V1",
    "RetryBudgetExhaustedError",
    "RetryStats",
    "RetryingClient",
    "StorageClient",
    "StorageServer",
    "SupportsFetch",
    "SupportsScanFetch",
    "frame_type_for",
    "payload_checksum",
    "response_wire_size",
]
