"""The data-fetch wire protocol between compute and storage nodes.

The paper uses gRPC; here the transport is an in-process channel, but the
*protocol* is real: requests and responses are serialized to bytes, offload
directives ride on each fetch request (Figure 2d), the storage server
executes the requested pipeline prefix (Figure 2e), and every byte crossing
the channel is counted.  Traffic numbers on the materialized path come from
these actual message lengths.
"""

from repro.rpc.messages import (
    REQUEST_HEADER_SIZE,
    RESPONSE_HEADER_SIZE,
    FetchRequest,
    FetchResponse,
    ProtocolError,
    response_wire_size,
)
from repro.rpc.channel import ChannelStats, InMemoryChannel
from repro.rpc.server import StorageServer
from repro.rpc.client import StorageClient

__all__ = [
    "ChannelStats",
    "FetchRequest",
    "FetchResponse",
    "InMemoryChannel",
    "ProtocolError",
    "REQUEST_HEADER_SIZE",
    "RESPONSE_HEADER_SIZE",
    "StorageClient",
    "StorageServer",
    "response_wire_size",
]
