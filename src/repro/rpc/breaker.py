"""Circuit breaker for the storage fetch path.

A dead storage node must not cost every fetch its full retry budget: after
``failure_threshold`` *consecutive* failures the breaker opens and the
degraded-mode fetcher stops talking to the server entirely (demoting
samples to the No-Off path).  After ``recovery_time_s`` the breaker goes
half-open and admits exactly one probe fetch: success closes it, failure
re-opens it and restarts the recovery timer.

The clock is injectable so tests (and simulations) drive the state machine
without real waiting.  Every state transition is kept in
:attr:`CircuitBreaker.transitions` -- the full closed -> open -> half-open
history with virtual timestamps, not just the current state -- and is
reported as telemetry: a ``breaker.transition`` span event on the optional
tracer, plus ``breaker_transitions_total`` on the default metrics
registry.
"""

import dataclasses
import enum
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, Type, TypeVar

from repro.telemetry.logs import StructuredLogger
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer

T = TypeVar("T")

#: Failure types :meth:`CircuitBreaker.call` counts toward tripping by
#: default: transport-level errors only.  Programming errors (TypeError,
#: KeyError, ...) propagate without tripping -- a bug in the handler is not
#: evidence that the storage node is dead.
DEFAULT_EXPECTED: Tuple[Type[BaseException], ...] = (
    ConnectionError,
    TimeoutError,
    OSError,
)


class BreakerState(enum.Enum):
    CLOSED = "closed"  # traffic flows, failures are counted
    OPEN = "open"  # traffic blocked until the recovery timer expires
    HALF_OPEN = "half_open"  # one probe in flight decides the next state


@dataclasses.dataclass
class BreakerStats:
    successes: int = 0
    failures: int = 0
    opens: int = 0
    probes: int = 0
    rejections: int = 0


@dataclasses.dataclass(frozen=True)
class BreakerTransition:
    """One edge of the breaker state machine, stamped in virtual time."""

    from_state: BreakerState
    to_state: BreakerState
    at_s: float
    reason: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (what ``/v1/status`` and ``replay`` render)."""
        return {
            "from": self.from_state.value,
            "to": self.to_state.value,
            "at_s": self.at_s,
            "reason": self.reason,
        }


class BreakerOpenError(Exception):
    """The breaker is open; the call was not attempted."""


class CircuitBreaker:
    """Trip after consecutive failures; probe half-open after a cooldown."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
        tracer: Optional[Tracer] = None,
        trace: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time_s < 0:
            raise ValueError(f"recovery_time_s must be >= 0, got {recovery_time_s}")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self._clock = clock if clock is not None else time.monotonic
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Concurrent loader workers share one breaker: every check-and-set
        # of the state machine (most critically the half-open probe slot,
        # which admits exactly ONE caller) must be atomic.  Reentrant
        # because ``state`` promotion runs inside locked methods.
        self._lock = threading.RLock()
        self.stats = BreakerStats()
        self.tracer = tracer
        self.trace = trace
        # Structured log records share the breaker's virtual clock, so log
        # timestamps line up with transition timestamps.
        self.log = StructuredLogger("repro.rpc.breaker", clock=self._clock)
        #: Every state change since construction, in order (the audit
        #: trail a bare ``state`` property cannot give you).
        self.transitions: List[BreakerTransition] = []

    def _transition(self, to_state: BreakerState, reason: str) -> None:
        transition = BreakerTransition(
            from_state=self._state,
            to_state=to_state,
            at_s=self._clock(),
            reason=reason,
        )
        self._state = to_state
        self.transitions.append(transition)
        get_default_registry().counter(
            "breaker_transitions_total",
            "circuit breaker state transitions",
            labels=["from_state", "to_state"],
        ).inc(
            from_state=transition.from_state.value,
            to_state=transition.to_state.value,
        )
        if self.tracer is not None:
            self.tracer.instant(
                self.trace,
                "breaker.transition",
                from_state=transition.from_state.value,
                to_state=transition.to_state.value,
                reason=reason,
            )

    def transition_history(self) -> List[BreakerTransition]:
        """A consistent snapshot of every transition so far."""
        with self._lock:
            return list(self.transitions)

    @property
    def state(self) -> BreakerState:
        """Current state, promoting OPEN to HALF_OPEN once the cooldown ends."""
        with self._lock:
            if (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.recovery_time_s
            ):
                self._transition(BreakerState.HALF_OPEN, reason="cooldown-elapsed")
                self._probe_in_flight = False
            return self._state

    def allow(self) -> bool:
        """May a fetch go to the server right now?

        In HALF_OPEN, the first ``allow()`` claims the single probe slot;
        callers that get True *must* report the outcome via
        ``record_success``/``record_failure`` to settle the state.
        """
        with self._lock:
            state = self.state
            if state is BreakerState.CLOSED:
                return True
            if state is BreakerState.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                self.stats.probes += 1
                return True
            self.stats.rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.stats.successes += 1
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state is not BreakerState.CLOSED:
                self._transition(
                    BreakerState.CLOSED,
                    reason="probe-succeeded"
                    if self._state is BreakerState.HALF_OPEN
                    else "success",
                )

    def record_failure(self) -> None:
        with self._lock:
            self.stats.failures += 1
            self._consecutive_failures += 1
            state = self.state
            if state is BreakerState.HALF_OPEN:
                self._trip(reason="probe-failed")  # back to OPEN, timer restarted
            elif (
                state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip(reason="failure-threshold")

    def _trip(self, reason: str) -> None:
        self._transition(BreakerState.OPEN, reason=reason)
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self.stats.opens += 1

    def call(
        self,
        fn: Callable[..., T],
        *args: object,
        expected: Tuple[Type[BaseException], ...] = DEFAULT_EXPECTED,
        **kwargs: object,
    ) -> T:
        """Guard an arbitrary call: raises BreakerOpenError when blocked.

        Only ``expected`` exception types count as failures (and are
        logged); anything else propagates without touching the failure
        count, releasing the half-open probe slot if one was claimed.
        """
        if not self.allow():
            raise BreakerOpenError(
                "circuit open for another "
                f"{self.recovery_time_s - (self._clock() - self._opened_at):.3g}s"
            )
        try:
            result = fn(*args, **kwargs)
        except expected as exc:
            self.record_failure()
            self.log.warning(
                "breaker-guarded call failed",
                trace=self.trace,
                error_type=type(exc).__name__,
                error=str(exc),
                consecutive=self._consecutive_failures,
                threshold=self.failure_threshold,
            )
            raise
        except BaseException:
            # Not a transport failure: don't trip the breaker, but release
            # the half-open probe slot so a real probe can still run.
            with self._lock:
                self._probe_in_flight = False
            raise
        self.record_success()
        return result
