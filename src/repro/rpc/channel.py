"""In-process transport with byte accounting (the gRPC channel stand-in)."""

import dataclasses
from typing import Callable, Optional


@dataclasses.dataclass
class ChannelStats:
    """Bytes and calls that crossed the channel."""

    calls: int = 0
    request_bytes: int = 0
    response_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes

    def reset(self) -> None:
        self.calls = 0
        self.request_bytes = 0
        self.response_bytes = 0


class InMemoryChannel:
    """Carries serialized messages to a handler and counts every byte.

    ``fault`` (if set) is invoked with each request's bytes before delivery
    and may raise -- used by fault injection to model transport errors
    (connection resets, timeouts).

    ``response_fault`` (if set) maps the handler's response bytes to what
    the wire actually delivers -- fault injection uses it to corrupt
    payloads in transit, which the v2 frame checksum then detects.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        fault: Optional[Callable[[bytes], None]] = None,
        response_fault: Optional[Callable[[bytes], bytes]] = None,
    ) -> None:
        self._handler = handler
        self._fault = fault
        self._response_fault = response_fault
        self.stats = ChannelStats()

    def call(self, request_bytes: bytes) -> bytes:
        if not isinstance(request_bytes, (bytes, bytearray)):
            raise TypeError(
                f"channel carries bytes, got {type(request_bytes).__name__}"
            )
        if self._fault is not None:
            self._fault(bytes(request_bytes))
        self.stats.calls += 1
        self.stats.request_bytes += len(request_bytes)
        response = self._handler(bytes(request_bytes))
        if not isinstance(response, (bytes, bytearray)):
            raise TypeError(f"handler returned {type(response).__name__}, expected bytes")
        if self._response_fault is not None:
            response = self._response_fault(bytes(response))
        self.stats.response_bytes += len(response)
        return bytes(response)
