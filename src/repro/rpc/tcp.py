"""Real TCP transport for the fetch protocol (localhost two-node mode).

The in-memory channel is the default transport; this module provides an
actual socket path -- a threaded TCP server wrapping a
:class:`~repro.rpc.server.StorageServer` and a client that speaks the same
length-prefixed framing -- so the "two nodes" of the paper's testbed can
be two processes (or just two sockets) for real.

Framing: every message (request or response) is preceded by a u32 length,
little-endian.  One TCP connection carries many sequential fetches.

Failure semantics (the loader's retry layer depends on these):

- connect/read stalls surface as ``TimeoutError`` (retryable);
- a dropped connection surfaces as ``ConnectionError`` (retryable);
- oversized frames and server-side errors surface as ``ProtocolError``
  (non-retryable) -- the server answers an explicit error frame before
  closing, so clients can tell "you sent garbage" from "the network ate it".
"""

import socket
import struct
import threading
from typing import Callable, Optional, Tuple

from repro.preprocessing.payload import Payload
from repro.rpc.messages import FetchRequest, FetchResponse, ProtocolError
from repro.telemetry.logs import StructuredLogger

# Module-level structured logger (logical clock: the transport has no
# virtual time axis of its own; ordering is what matters).
logger = StructuredLogger("repro.rpc.tcp")

_LENGTH = struct.Struct("<I")
_MAX_MESSAGE = 512 * 1024 * 1024  # sanity cap, not a protocol limit
_ERROR_PREFIX = b"ERR!"


def _send_message(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count > 0:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None  # peer closed
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_message(
    sock: socket.socket, max_bytes: int = _MAX_MESSAGE
) -> Optional[bytes]:
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise ProtocolError(f"message of {length} bytes exceeds the {max_bytes} cap")
    return _recv_exact(sock, length)


class TcpStorageServer:
    """Serves a request handler over TCP, one thread per connection.

    ``stop()``/``close()`` shuts down every accepted connection, so client
    fetches in flight fail fast with ``ConnectionError`` instead of hanging.
    A frame larger than ``max_message_bytes`` is answered with an explicit
    protocol-error frame (then the connection closes, since the stream can
    no longer be trusted) -- the client sees ``ProtocolError``, not a
    retryable transport error.

    Use as a context manager::

        with TcpStorageServer(server.handle) as tcp:
            client = TcpStorageClient(tcp.address)
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        host: str = "127.0.0.1",
        max_message_bytes: int = _MAX_MESSAGE,
    ) -> None:
        if max_message_bytes < 1:
            raise ValueError(f"max_message_bytes must be >= 1, got {max_message_bytes}")
        self._handler = handler
        self._max_message = max_message_bytes
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()
        self._stop = threading.Event()
        self._threads = []
        self._connections = []
        self._conn_lock = threading.Lock()
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self.requests_served = 0

    def start(self) -> "TcpStorageServer":
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._conn_lock:
                if self._stop.is_set():
                    conn.close()
                    return
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            with self._conn_lock:
                self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                while not self._stop.is_set():
                    try:
                        request = _recv_message(conn, self._max_message)
                    except ProtocolError as exc:
                        # Oversized frame: tell the client *why* before
                        # closing (the stream position is now unknown).
                        try:
                            _send_message(
                                conn,
                                _ERROR_PREFIX
                                + str(exc).encode("utf-8", "replace"),
                            )
                        except OSError:
                            pass
                        return
                    except OSError:
                        return
                    if request is None:
                        return
                    try:
                        response = self._handler(request)
                    except Exception as exc:  # report, don't kill the connection
                        logger.warning(
                            "handler failed serving a fetch",
                            error_type=type(exc).__name__,
                            error=str(exc),
                        )
                        response = _ERROR_PREFIX + str(exc).encode("utf-8", "replace")
                    try:
                        _send_message(conn, response)
                    except OSError:
                        return
                    with self._conn_lock:
                        self.requests_served += 1
        finally:
            with self._conn_lock:
                if conn in self._connections:
                    self._connections.remove(conn)

    def stop(self) -> None:
        """Stop accepting and close every live connection cleanly."""
        self._stop.set()
        self._listener.close()
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread.is_alive():
            self._accept_thread.join(timeout=2.0)
        with self._conn_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=2.0)

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "TcpStorageServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class TcpStorageClient:
    """Fetch samples over a TCP connection; satisfies the Fetcher protocol.

    connect_timeout: seconds to wait for the TCP connection (was a
        hardcoded 10 s).
    read_timeout: per-recv stall budget; None blocks forever (the old
        behaviour -- a stalled server hangs the loader), a finite value
        surfaces stalls as retryable ``TimeoutError``.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        connect_timeout: float = 10.0,
        read_timeout: Optional[float] = None,
    ) -> None:
        if connect_timeout <= 0:
            raise ValueError(f"connect_timeout must be > 0, got {connect_timeout}")
        if read_timeout is not None and read_timeout <= 0:
            raise ValueError(f"read_timeout must be > 0, got {read_timeout}")
        self._sock = socket.create_connection(address, timeout=connect_timeout)
        self._sock.settimeout(read_timeout)
        self.traffic_bytes = 0  # response payload bytes received
        self.checksum_failures = 0
        self._lock = threading.Lock()

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        from repro.rpc.messages import ChecksumError

        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=split)
        try:
            # This lock exists precisely to serialize request/response
            # pairs on the single shared socket, so the blocking I/O
            # *must* happen inside it.
            with self._lock:
                _send_message(self._sock, request.to_bytes())  # sophon-lint: disable=GUARD02
                wire = _recv_message(self._sock)  # sophon-lint: disable=GUARD02
        except socket.timeout as exc:
            raise TimeoutError(f"fetch of sample {sample_id} timed out") from exc
        except ConnectionError:
            raise
        except OSError as exc:
            # A torn-down socket (server killed, EBADF, RST variants) is a
            # transport failure: map onto the retryable path.
            raise ConnectionError(f"transport failed: {exc}") from exc
        if wire is None:
            raise ConnectionError("server closed the connection")
        if wire.startswith(_ERROR_PREFIX):
            raise ProtocolError(wire[len(_ERROR_PREFIX):].decode("utf-8", "replace"))
        with self._lock:
            self.traffic_bytes += len(wire)
        try:
            response = FetchResponse.from_bytes(wire)
        except ChecksumError:
            with self._lock:
                self.checksum_failures += 1
            raise
        if response.sample_id != sample_id or response.split != split:
            raise ProtocolError("response does not match the request")
        return response.to_payload()

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TcpStorageClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
