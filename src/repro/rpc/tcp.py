"""Real TCP transport for the fetch protocol (localhost two-node mode).

The in-memory channel is the default transport; this module provides an
actual socket path -- a threaded TCP server wrapping a
:class:`~repro.rpc.server.StorageServer` and a client that speaks the same
length-prefixed framing -- so the "two nodes" of the paper's testbed can
be two processes (or just two sockets) for real.

Framing: every message (request or response) is preceded by a u32 length,
little-endian.  One TCP connection carries many sequential fetches.
"""

import socket
import struct
import threading
from typing import Callable, Optional

from repro.preprocessing.payload import Payload
from repro.rpc.messages import FetchRequest, FetchResponse, ProtocolError

_LENGTH = struct.Struct("<I")
_MAX_MESSAGE = 512 * 1024 * 1024  # sanity cap, not a protocol limit


def _send_message(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count > 0:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            return None  # peer closed
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _recv_message(sock: socket.socket) -> Optional[bytes]:
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_MESSAGE:
        raise ProtocolError(f"message of {length} bytes exceeds sanity cap")
    return _recv_exact(sock, length)


class TcpStorageServer:
    """Serves a request handler over TCP, one thread per connection.

    Use as a context manager::

        with TcpStorageServer(server.handle) as tcp:
            client = TcpStorageClient(tcp.address)
    """

    def __init__(self, handler: Callable[[bytes], bytes], host: str = "127.0.0.1") -> None:
        self._handler = handler
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()
        self._stop = threading.Event()
        self._threads = []
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self.requests_served = 0

    def start(self) -> "TcpStorageServer":
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    request = _recv_message(conn)
                except (OSError, ProtocolError):
                    return
                if request is None:
                    return
                try:
                    response = self._handler(request)
                except Exception as exc:  # report, don't kill the connection
                    response = b"ERR!" + str(exc).encode("utf-8", "replace")
                try:
                    _send_message(conn, response)
                except OSError:
                    return
                self.requests_served += 1

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        if self._accept_thread.is_alive():
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "TcpStorageServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class TcpStorageClient:
    """Fetch samples over a TCP connection; satisfies the Fetcher protocol."""

    def __init__(self, address) -> None:
        self._sock = socket.create_connection(address, timeout=10.0)
        self.traffic_bytes = 0  # response payload bytes received
        self._lock = threading.Lock()

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=split)
        with self._lock:
            _send_message(self._sock, request.to_bytes())
            wire = _recv_message(self._sock)
        if wire is None:
            raise ConnectionError("server closed the connection")
        if wire.startswith(b"ERR!"):
            raise ProtocolError(wire[4:].decode("utf-8", "replace"))
        self.traffic_bytes += len(wire)
        response = FetchResponse.from_bytes(wire)
        if response.sample_id != sample_id or response.split != split:
            raise ProtocolError("response does not match the request")
        return response.to_payload()

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TcpStorageClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
