"""The storage server: serves fetch requests, executing offloaded prefixes.

Mirrors Figure 2(e): the server reads the sample from its (in-memory)
store, runs the ops named by the request's offload directive, and returns
the partially preprocessed payload.  Augmentation randomness comes from the
shared per-(seed, epoch, sample, op) derivation, so the client's remaining
ops continue the exact stream a local run would have used.
"""

from typing import Dict

from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline
from repro.rpc.messages import FetchRequest, FetchResponse, ProtocolError


class StorageServer:
    """Serves one dataset through one preprocessing pipeline."""

    def __init__(self, dataset: Dataset, pipeline: Pipeline, seed: int = 0) -> None:
        if not dataset.is_materialized:
            raise ValueError(
                "StorageServer needs a materialized dataset (trace datasets "
                "are evaluated through the event simulator instead)"
            )
        self.dataset = dataset
        self.pipeline = pipeline
        self.seed = seed
        # Served-op accounting (per split point), for tests and reports.
        self.requests_served = 0
        self.ops_executed = 0
        self.cpu_seconds = 0.0
        self.splits_served: Dict[int, int] = {}

    def handle(self, request_bytes: bytes) -> bytes:
        """Transport entry point: bytes in, bytes out."""
        request = FetchRequest.from_bytes(request_bytes)
        return self.serve(request).to_bytes()

    def serve(self, request: FetchRequest) -> FetchResponse:
        if not 0 <= request.sample_id < len(self.dataset):
            raise ProtocolError(
                f"sample {request.sample_id} out of range [0, {len(self.dataset)})"
            )
        if request.split > len(self.pipeline):
            raise ProtocolError(
                f"split {request.split} exceeds pipeline length {len(self.pipeline)}"
            )
        payload = self.dataset.raw_payload(request.sample_id)
        meta = self.dataset.raw_meta(request.sample_id)
        if request.split > 0:
            run = self.pipeline.run(
                payload,
                seed=self.seed,
                epoch=request.epoch,
                sample_id=request.sample_id,
                stop=request.split,
            )
            payload = run.payload
            self.ops_executed += len(run.stages)
            self.cpu_seconds += run.total_cost_s
        self.requests_served += 1
        self.splits_served[request.split] = self.splits_served.get(request.split, 0) + 1
        return FetchResponse.from_payload(request, payload, meta.height, meta.width)
