"""The storage server: serves fetch requests, executing offloaded prefixes.

Mirrors Figure 2(e): the server reads the sample from its (in-memory)
store, runs the ops named by the request's offload directive, and returns
the partially preprocessed payload.  Augmentation randomness comes from the
shared per-(seed, epoch, sample, op) derivation, so the client's remaining
ops continue the exact stream a local run would have used.
"""

from typing import Dict, Optional

from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline
from repro.rpc.messages import FetchRequest, FetchResponse, ProtocolError
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id


class StorageServer:
    """Serves one dataset through one preprocessing pipeline."""

    def __init__(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not dataset.is_materialized:
            raise ValueError(
                "StorageServer needs a materialized dataset (trace datasets "
                "are evaluated through the event simulator instead)"
            )
        self.dataset = dataset
        self.pipeline = pipeline
        self.seed = seed
        self.tracer = tracer
        # Served-op accounting (per split point), for tests and reports.
        self.requests_served = 0
        self.ops_executed = 0
        self.cpu_seconds = 0.0
        self.splits_served: Dict[int, int] = {}

    def handle(self, request_bytes: bytes) -> bytes:
        """Transport entry point: bytes in, bytes out."""
        request = FetchRequest.from_bytes(request_bytes)
        return self.serve(request).to_bytes()

    def serve(self, request: FetchRequest) -> FetchResponse:
        if not 0 <= request.sample_id < len(self.dataset):
            raise ProtocolError(
                f"sample {request.sample_id} out of range [0, {len(self.dataset)})"
            )
        if request.split > len(self.pipeline):
            raise ProtocolError(
                f"split {request.split} exceeds pipeline length {len(self.pipeline)}"
            )
        registry = get_default_registry()
        trace = trace_id(request.sample_id, request.epoch)
        payload = self.dataset.raw_payload(request.sample_id)
        meta = self.dataset.raw_meta(request.sample_id)
        if request.split > 0:
            if self.tracer is not None:
                self.tracer.begin(trace, "server.prefix", split=request.split)
            run = self.pipeline.run(
                payload,
                seed=self.seed,
                epoch=request.epoch,
                sample_id=request.sample_id,
                stop=request.split,
            )
            payload = run.payload
            self.ops_executed += len(run.stages)
            self.cpu_seconds += run.total_cost_s
            registry.counter(
                "server_cpu_seconds_total", "storage CPU spent executing prefixes"
            ).inc(run.total_cost_s)
            registry.counter(
                "server_ops_executed_total", "preprocessing ops run server-side"
            ).inc(len(run.stages))
            if self.tracer is not None:
                self.tracer.end(trace, "server.prefix", cpu_s=run.total_cost_s)
        self.requests_served += 1
        self.splits_served[request.split] = self.splits_served.get(request.split, 0) + 1
        registry.counter(
            "server_requests_total", "fetch requests served by split",
            labels=["split"],
        ).inc(split=request.split)
        return FetchResponse.from_payload(request, payload, meta.height, meta.width)
