"""The compute-node client of the storage server."""

from typing import Optional

from repro.preprocessing.payload import Payload
from repro.rpc.channel import InMemoryChannel
from repro.rpc.messages import ChecksumError, FetchRequest, FetchResponse, ProtocolError
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id


class StorageClient:
    """Fetch samples through a channel; satisfies the loader's Fetcher."""

    def __init__(
        self, channel: InMemoryChannel, tracer: Optional[Tracer] = None
    ) -> None:
        self.channel = channel
        self.tracer = tracer
        #: Payloads whose CRC32 failed on arrival (each was re-fetched, not
        #: trained on -- the wire-format v2 guarantee).
        self.checksum_failures = 0

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        """Fetch a sample with ops 1..split applied remotely."""
        registry = get_default_registry()
        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=split)
        wire = self.channel.call(request.to_bytes())
        registry.counter(
            "client_response_bytes_total", "storage -> compute bytes received"
        ).inc(len(wire))
        try:
            response = FetchResponse.from_bytes(wire)
        except ChecksumError:
            self.checksum_failures += 1
            registry.counter(
                "client_checksum_failures_total", "payloads rejected by CRC32"
            ).inc()
            if self.tracer is not None:
                self.tracer.instant(
                    trace_id(sample_id, epoch), "client.checksum_failure", split=split
                )
            raise
        if response.sample_id != sample_id:
            raise ProtocolError(
                f"response for sample {response.sample_id}, expected {sample_id}"
            )
        if response.split != split:
            raise ProtocolError(
                f"server applied split {response.split}, requested {split}"
            )
        return response.to_payload()

    @property
    def traffic_bytes(self) -> int:
        """Storage -> compute bytes observed so far (the paper's metric)."""
        return self.channel.stats.response_bytes
