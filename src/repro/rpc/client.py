"""The compute-node client of the storage server."""

from repro.preprocessing.payload import Payload
from repro.rpc.channel import InMemoryChannel
from repro.rpc.messages import ChecksumError, FetchRequest, FetchResponse, ProtocolError


class StorageClient:
    """Fetch samples through a channel; satisfies the loader's Fetcher."""

    def __init__(self, channel: InMemoryChannel) -> None:
        self.channel = channel
        #: Payloads whose CRC32 failed on arrival (each was re-fetched, not
        #: trained on -- the wire-format v2 guarantee).
        self.checksum_failures = 0

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        """Fetch a sample with ops 1..split applied remotely."""
        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=split)
        wire = self.channel.call(request.to_bytes())
        try:
            response = FetchResponse.from_bytes(wire)
        except ChecksumError:
            self.checksum_failures += 1
            raise
        if response.sample_id != sample_id:
            raise ProtocolError(
                f"response for sample {response.sample_id}, expected {sample_id}"
            )
        if response.split != split:
            raise ProtocolError(
                f"server applied split {response.split}, requested {split}"
            )
        return response.to_payload()

    @property
    def traffic_bytes(self) -> int:
        """Storage -> compute bytes observed so far (the paper's metric)."""
        return self.channel.stats.response_bytes
