"""The compute-node client of the storage server."""

from repro.preprocessing.payload import Payload
from repro.rpc.channel import InMemoryChannel
from repro.rpc.messages import FetchRequest, FetchResponse, ProtocolError


class StorageClient:
    """Fetch samples through a channel; satisfies the loader's Fetcher."""

    def __init__(self, channel: InMemoryChannel) -> None:
        self.channel = channel

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        """Fetch a sample with ops 1..split applied remotely."""
        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=split)
        response = FetchResponse.from_bytes(self.channel.call(request.to_bytes()))
        if response.sample_id != sample_id:
            raise ProtocolError(
                f"response for sample {response.sample_id}, expected {sample_id}"
            )
        if response.split != split:
            raise ProtocolError(
                f"server applied split {response.split}, requested {split}"
            )
        return response.to_payload()

    @property
    def traffic_bytes(self) -> int:
        """Storage -> compute bytes observed so far (the paper's metric)."""
        return self.channel.stats.response_bytes
