"""The fetcher contract shared by every sample transport.

Everything that serves samples to the data loader -- the RPC client, the
TCP client, retry/degraded-mode wrappers, cache fetchers -- exposes the
same structural interface: ``fetch(sample_id, epoch, split) -> Payload``.
This Protocol names that contract so wrappers can annotate the fetchers
they wrap (sophon-lint API01) without forcing an inheritance hierarchy on
transports that only share a method shape.
"""

from typing import Protocol, runtime_checkable

from repro.preprocessing.payload import Payload


@runtime_checkable
class SupportsFetch(Protocol):
    """Anything that can serve a sample with ops ``1..split`` applied."""

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        """Return sample *sample_id* for *epoch* with the prefix applied."""
        ...


@runtime_checkable
class SupportsScanFetch(Protocol):
    """A source that can serve a truncated scan prefix of a raw sample.

    The fidelity axis's transport contract: samples stored as progressive
    streams (:mod:`repro.codec.progressive`) can ship only their first
    ``scan_count`` scans -- fewer bytes, reduced fidelity, still decodable.
    """

    def fetch_scans(self, sample_id: int, epoch: int, scan_count: int) -> Payload:
        """Return the first ``scan_count`` scans of the raw encoded sample."""
        ...
