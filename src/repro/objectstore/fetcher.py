"""Loader-compatible fetcher over the object store's lambda interface.

Completes the S3-Object-Lambda deployment path: the DataLoader fetches
through :class:`LambdaRegistry.get_through`, with each sample's offload
directive passed as lambda arguments -- no RPC server involved.
"""

from repro.objectstore.dataset import sample_key
from repro.objectstore.lambdas import (
    LambdaRegistry,
    PreprocessingLambda,
    ScanTruncationLambda,
)
from repro.preprocessing.payload import Payload
from repro.rpc.messages import FetchResponse


class ObjectLambdaFetcher:
    """Fetch samples by invoking the preprocessing lambda on GET."""

    def __init__(self, registry: LambdaRegistry) -> None:
        if PreprocessingLambda.NAME not in registry.names():
            raise ValueError(
                f"registry has no {PreprocessingLambda.NAME!r} lambda; "
                "install a PreprocessingLambda first"
            )
        self.registry = registry
        self.response_bytes = 0

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        key = sample_key(sample_id)
        meta = self.registry.bucket.head(key).metadata_dict()
        wire = self.registry.get_through(
            key,
            PreprocessingLambda.NAME,
            {
                "sample_id": sample_id,
                "epoch": epoch,
                "split": split,
                "height": int(meta["height"]),
                "width": int(meta["width"]),
            },
        )
        self.response_bytes += len(wire)
        return FetchResponse.from_bytes(wire).to_payload()

    def fetch_scans(self, sample_id: int, epoch: int, scan_count: int) -> Payload:
        """Fetch only the first ``scan_count`` scans of a progressive sample.

        The :class:`SupportsScanFetch` side of the fidelity axis; requires a
        :class:`ScanTruncationLambda` installed in the registry.
        """
        if ScanTruncationLambda.NAME not in self.registry.names():
            raise ValueError(
                f"registry has no {ScanTruncationLambda.NAME!r} lambda; "
                "install a ScanTruncationLambda first"
            )
        key = sample_key(sample_id)
        meta = self.registry.bucket.head(key).metadata_dict()
        wire = self.registry.get_through(
            key,
            ScanTruncationLambda.NAME,
            {
                "sample_id": sample_id,
                "epoch": epoch,
                "scan_count": scan_count,
                "height": int(meta["height"]),
                "width": int(meta["width"]),
            },
        )
        self.response_bytes += len(wire)
        return FetchResponse.from_bytes(wire).to_payload()

    @property
    def traffic_bytes(self) -> int:
        """Bytes that left the storage cluster (post-lambda)."""
        return self.response_bytes
