"""An in-memory object store: buckets, keys, range reads, stats."""

import dataclasses
from typing import Dict, List, Optional, Tuple


class ObjectStoreError(Exception):
    """Base class for object-store failures."""


class NoSuchBucketError(ObjectStoreError):
    """The named bucket does not exist."""


class NoSuchKeyError(ObjectStoreError):
    """The named key does not exist in the bucket."""


@dataclasses.dataclass(frozen=True)
class ObjectMeta:
    """Metadata of one stored object."""

    key: str
    size: int
    etag: str
    user_metadata: Tuple[Tuple[str, str], ...] = ()

    def metadata_dict(self) -> Dict[str, str]:
        return dict(self.user_metadata)


@dataclasses.dataclass
class BucketStats:
    """Traffic counters per bucket."""

    puts: int = 0
    gets: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


def _etag(data: bytes) -> str:
    """A cheap content fingerprint (not cryptographic)."""
    import zlib

    return f"{zlib.crc32(data):08x}-{len(data)}"


class Bucket:
    """A flat namespace of byte objects."""

    def __init__(self, name: str) -> None:
        if not name or "/" in name:
            raise ValueError(f"bad bucket name {name!r}")
        self.name = name
        self._objects: Dict[str, bytes] = {}
        self._metas: Dict[str, ObjectMeta] = {}
        self.stats = BucketStats()

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def put(self, key: str, data: bytes, metadata: Optional[Dict[str, str]] = None) -> ObjectMeta:
        """Store (or overwrite) an object."""
        if not key:
            raise ValueError("object key must be non-empty")
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"object data must be bytes, got {type(data).__name__}")
        data = bytes(data)
        meta = ObjectMeta(
            key=key,
            size=len(data),
            etag=_etag(data),
            user_metadata=tuple(sorted((metadata or {}).items())),
        )
        self._objects[key] = data
        self._metas[key] = meta
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        return meta

    def get(self, key: str, byte_range: Optional[Tuple[int, int]] = None) -> bytes:
        """Read an object, optionally a [start, end) byte range."""
        if key not in self._objects:
            raise NoSuchKeyError(f"{self.name}/{key}")
        data = self._objects[key]
        if byte_range is not None:
            start, end = byte_range
            if not 0 <= start <= end <= len(data):
                raise ValueError(
                    f"range [{start}, {end}) invalid for {len(data)}-byte object"
                )
            data = data[start:end]
        self.stats.gets += 1
        self.stats.bytes_read += len(data)
        return data

    def head(self, key: str) -> ObjectMeta:
        """Metadata without reading the body (no read traffic counted)."""
        if key not in self._metas:
            raise NoSuchKeyError(f"{self.name}/{key}")
        return self._metas[key]

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise NoSuchKeyError(f"{self.name}/{key}")
        del self._objects[key]
        del self._metas[key]

    def keys(self, prefix: str = "") -> List[str]:
        """Sorted keys, optionally filtered by prefix."""
        return sorted(k for k in self._objects if k.startswith(prefix))

    def total_bytes(self) -> int:
        return sum(len(v) for v in self._objects.values())


class ObjectStore:
    """A collection of buckets (one storage cluster)."""

    def __init__(self) -> None:
        self._buckets: Dict[str, Bucket] = {}

    def create_bucket(self, name: str) -> Bucket:
        if name in self._buckets:
            raise ObjectStoreError(f"bucket {name!r} already exists")
        bucket = Bucket(name)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> Bucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise NoSuchBucketError(name) from None

    def delete_bucket(self, name: str, force: bool = False) -> None:
        bucket = self.bucket(name)
        if len(bucket) and not force:
            raise ObjectStoreError(f"bucket {name!r} not empty (use force=True)")
        del self._buckets[name]

    def buckets(self) -> List[str]:
        return sorted(self._buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._buckets
