"""Dataset view over an object-store bucket.

``upload_dataset`` pushes a materialized dataset into a bucket (one object
per sample, with decoded dimensions in object metadata);
``ObjectBackedDataset`` exposes the bucket back through the standard
Dataset interface, so the whole SOPHON stack -- profilers, servers,
loaders, simulator -- runs unchanged against the store.
"""

from typing import Optional

from repro.data.dataset import Dataset
from repro.objectstore.store import Bucket
from repro.preprocessing.payload import Payload, StageMeta


def sample_key(sample_id: int) -> str:
    """The bucket key for one sample (zero-padded for sane listings)."""
    if sample_id < 0:
        raise ValueError(f"sample_id must be >= 0, got {sample_id}")
    return f"samples/{sample_id:08d}"


def upload_dataset(dataset: Dataset, bucket: Bucket) -> int:
    """Copy a materialized dataset into ``bucket``; returns bytes written."""
    if not dataset.is_materialized:
        raise ValueError("only materialized datasets can be uploaded")
    written = 0
    for sid in dataset.sample_ids():
        payload = dataset.raw_payload(sid)
        meta = dataset.raw_meta(sid)
        bucket.put(
            sample_key(sid),
            payload.data,
            metadata={"height": str(meta.height), "width": str(meta.width)},
        )
        written += payload.nbytes
    return written


class ObjectBackedDataset(Dataset):
    """Samples served from an object-store bucket."""

    def __init__(self, bucket: Bucket, name: Optional[str] = None) -> None:
        self.bucket = bucket
        self.name = name if name is not None else f"bucket:{bucket.name}"
        self._keys = bucket.keys(prefix="samples/")
        if not all(
            key == sample_key(index) for index, key in enumerate(self._keys)
        ):
            raise ValueError(
                f"bucket {bucket.name!r} does not hold a contiguous sample "
                "range under samples/"
            )

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def is_materialized(self) -> bool:
        return True

    def _dims(self, sample_id: int) -> tuple:
        meta = self.bucket.head(self._keys[sample_id]).metadata_dict()
        try:
            return int(meta["height"]), int(meta["width"])
        except KeyError as exc:
            raise ValueError(
                f"object {self._keys[sample_id]} lacks dimension metadata"
            ) from exc

    def raw_meta(self, sample_id: int) -> StageMeta:
        self._check_id(sample_id)
        height, width = self._dims(sample_id)
        size = self.bucket.head(self._keys[sample_id]).size
        return StageMeta.for_encoded(size, height, width)

    def raw_payload(self, sample_id: int) -> Payload:
        self._check_id(sample_id)
        height, width = self._dims(sample_id)
        data = self.bucket.get(self._keys[sample_id])
        return Payload.encoded(data, height=height, width=width)
