"""Near-storage object store with compute-on-read (section 5 substrate).

The paper's deployment story rests on storage services that can run user
code next to the data: "Ceph enables near-storage data processing through
dynamic object interfaces [and] Amazon S3 Object Lambda allows users to
submit custom data processing code that is executed automatically before
data is returned."  This package is that substrate:

- :class:`ObjectStore` / :class:`Bucket` -- an in-memory object store with
  puts, gets, range reads, listing, and per-bucket statistics;
- :class:`LambdaRegistry` -- named compute-on-read transforms executed by
  the store before data leaves it (the S3 Object Lambda analogue);
- :class:`ObjectBackedDataset` -- a Dataset view over a bucket, so the
  whole SOPHON stack (server, loader, simulator) can run against the
  store;
- :class:`PreprocessingLambda` -- the offload directive as an object
  lambda: ops 1..split executed by the store on GET.
"""

from repro.objectstore.store import (
    Bucket,
    BucketStats,
    NoSuchBucketError,
    NoSuchKeyError,
    ObjectMeta,
    ObjectStore,
    ObjectStoreError,
)
from repro.objectstore.lambdas import (
    LambdaError,
    LambdaRegistry,
    PreprocessingLambda,
    ScanTruncationLambda,
)
from repro.objectstore.dataset import ObjectBackedDataset, upload_dataset
from repro.objectstore.fetcher import ObjectLambdaFetcher

__all__ = [
    "Bucket",
    "BucketStats",
    "LambdaError",
    "LambdaRegistry",
    "NoSuchBucketError",
    "NoSuchKeyError",
    "ObjectBackedDataset",
    "ObjectLambdaFetcher",
    "ObjectMeta",
    "ObjectStore",
    "ObjectStoreError",
    "PreprocessingLambda",
    "ScanTruncationLambda",
    "upload_dataset",
]
