"""Compute-on-read: object lambdas executed by the store before return.

The S3 Object Lambda analogue: a named transform registered with the
store, invoked at GET time with the raw object bytes and caller-supplied
arguments, returning the bytes that actually leave the storage cluster.
SOPHON's offload directive is exactly such a transform
(:class:`PreprocessingLambda`): run ops 1..split, serialize the result.
"""

import dataclasses
import logging
from typing import Callable, Dict, Optional

from repro.codec.errors import CodecError
from repro.codec.progressive import scan_count_of, truncate_scans
from repro.objectstore.store import Bucket
from repro.preprocessing.payload import Payload
from repro.preprocessing.pipeline import Pipeline
from repro.rpc.messages import FetchRequest, FetchResponse
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id

logger = logging.getLogger(__name__)


class LambdaError(Exception):
    """An object lambda failed or was misused."""


LambdaFn = Callable[[bytes, Dict[str, object]], bytes]


class LambdaRegistry:
    """Named compute-on-read transforms over a bucket."""

    def __init__(self, bucket: Bucket) -> None:
        self.bucket = bucket
        self._lambdas: Dict[str, LambdaFn] = {}
        self.invocations: Dict[str, int] = {}
        #: Failed invocations per lambda, so operators can see a transform
        #: that is quietly erroring instead of inferring it from traffic.
        self.failures: Dict[str, int] = {}

    def register(self, name: str, fn: LambdaFn) -> None:
        if not name:
            raise ValueError("lambda name must be non-empty")
        if name in self._lambdas:
            raise LambdaError(f"lambda {name!r} already registered")
        self._lambdas[name] = fn

    def unregister(self, name: str) -> None:
        if name not in self._lambdas:
            raise LambdaError(f"no lambda named {name!r}")
        del self._lambdas[name]

    def names(self) -> list:
        return sorted(self._lambdas)

    def get_through(
        self, key: str, lambda_name: Optional[str], args: Optional[Dict[str, object]] = None
    ) -> bytes:
        """GET an object, transformed by the named lambda (None = raw)."""
        raw = self.bucket.get(key)
        if lambda_name is None:
            return raw
        if lambda_name not in self._lambdas:
            raise LambdaError(f"no lambda named {lambda_name!r}")
        self.invocations[lambda_name] = self.invocations.get(lambda_name, 0) + 1
        get_default_registry().counter(
            "lambda_invocations_total",
            "object lambda invocations by lambda name",
            labels=["name"],
        ).inc(name=lambda_name)
        try:
            result = self._lambdas[lambda_name](raw, dict(args or {}))
        except LambdaError:
            self._record_failure(lambda_name, key)
            raise
        except (ValueError, TypeError, KeyError, IndexError, ArithmeticError) as exc:
            # The failure modes a transform over sample bytes actually has:
            # malformed payloads, bad arguments, codec math errors.  Anything
            # else (MemoryError, bugs in the store itself) propagates as-is.
            self._record_failure(lambda_name, key)
            raise LambdaError(f"lambda {lambda_name!r} failed: {exc}") from exc
        if not isinstance(result, (bytes, bytearray)):
            self._record_failure(lambda_name, key)
            raise LambdaError(
                f"lambda {lambda_name!r} returned {type(result).__name__}, expected bytes"
            )
        return bytes(result)

    def _record_failure(self, lambda_name: str, key: str) -> None:
        self.failures[lambda_name] = self.failures.get(lambda_name, 0) + 1
        get_default_registry().counter(
            "lambda_failures_total",
            "object lambda failures by lambda name",
            labels=["name"],
        ).inc(name=lambda_name)
        logger.warning(
            "object lambda %r failed on key %r (%d failure(s) so far)",
            lambda_name,
            key,
            self.failures[lambda_name],
        )


@dataclasses.dataclass
class PreprocessingLambda:
    """SOPHON's offload directive as an object lambda.

    Executes ops 1..``split`` of ``pipeline`` on the stored bytes and
    returns a serialized :class:`FetchResponse` -- the same wire format the
    RPC server produces, so the client-side deserialization is shared.

    Arguments at invocation time (the GET's ``args``): ``sample_id``,
    ``epoch``, ``split``, ``height``, ``width``.
    """

    pipeline: Pipeline
    seed: int = 0
    tracer: Optional[Tracer] = None

    #: Registry name used by :func:`install`.
    NAME = "sophon-preprocess"

    def __call__(self, raw: bytes, args: Dict[str, object]) -> bytes:
        try:
            sample_id = int(args["sample_id"])
            epoch = int(args["epoch"])
            split = int(args["split"])
            height = int(args["height"])
            width = int(args["width"])
        except KeyError as exc:
            raise LambdaError(f"missing lambda argument {exc}") from exc
        if not 0 <= split <= len(self.pipeline):
            raise LambdaError(
                f"split {split} out of range for {len(self.pipeline)}-op pipeline"
            )
        trace = trace_id(sample_id, epoch)
        payload = Payload.encoded(raw, height=height, width=width)
        if split > 0:
            if self.tracer is not None:
                self.tracer.begin(trace, "lambda.prefix", split=split)
            run = self.pipeline.run(
                payload, seed=self.seed, epoch=epoch, sample_id=sample_id, stop=split
            )
            payload = run.payload
            get_default_registry().counter(
                "lambda_cpu_seconds_total",
                "storage CPU spent inside the preprocessing lambda",
            ).inc(run.total_cost_s)
            if self.tracer is not None:
                self.tracer.end(trace, "lambda.prefix", cpu_s=run.total_cost_s)
        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=split)
        return FetchResponse.from_payload(request, payload, height, width).to_bytes()

    def install(self, registry: LambdaRegistry) -> None:
        registry.register(self.NAME, self)


@dataclasses.dataclass
class ScanTruncationLambda:
    """The fidelity axis as an object lambda: ship only a scan prefix.

    For objects stored as progressive streams
    (:mod:`repro.codec.progressive`), truncates to the first
    ``scan_count`` scans at GET time -- pure byte slicing on the storage
    side, no decode -- and returns a serialized :class:`FetchResponse`
    whose payload is the truncated (still decodable) encoded stream.

    Arguments at invocation time: ``sample_id``, ``epoch``,
    ``scan_count``, ``height``, ``width``.
    """

    tracer: Optional[Tracer] = None

    #: Registry name used by :func:`install`.
    NAME = "sophon-truncate-scans"

    def __call__(self, raw: bytes, args: Dict[str, object]) -> bytes:
        try:
            sample_id = int(args["sample_id"])
            epoch = int(args["epoch"])
            scan_count = int(args["scan_count"])
            height = int(args["height"])
            width = int(args["width"])
        except KeyError as exc:
            raise LambdaError(f"missing lambda argument {exc}") from exc
        # CodecError is not in get_through's exception tunnel (it is not a
        # ValueError), so a non-progressive or corrupt stored object must be
        # mapped to LambdaError here.
        try:
            available = scan_count_of(raw)
            if not 1 <= scan_count <= available:
                raise LambdaError(
                    f"scan_count {scan_count} outside [1, {available}] for "
                    f"sample {sample_id}"
                )
            truncated = truncate_scans(raw, scan_count)
        except CodecError as exc:
            raise LambdaError(
                f"stored object is not a valid progressive stream: {exc}"
            ) from exc
        get_default_registry().counter(
            "lambda_truncated_bytes_total",
            "bytes kept off the wire by scan truncation",
        ).inc(len(raw) - len(truncated))
        if self.tracer is not None:
            self.tracer.instant(
                trace_id(sample_id, epoch),
                "lambda.truncate",
                scan_count=scan_count,
                saved_bytes=len(raw) - len(truncated),
            )
        payload = Payload.encoded(truncated, height=height, width=width)
        request = FetchRequest(sample_id=sample_id, epoch=epoch, split=0)
        return FetchResponse.from_payload(request, payload, height, width).to_bytes()

    def install(self, registry: LambdaRegistry) -> None:
        registry.register(self.NAME, self)
