"""repro.telemetry: deterministic, virtual-time-aware observability.

Three layers (see docs/observability.md):

1. A **metrics registry** -- counters, gauges, histograms with label sets,
   snapshot/diff support, and a swappable process-local default that all
   hot paths report into (:mod:`repro.telemetry.registry`).
2. **Per-sample spans** -- a trace context (``trace_id`` = sample id +
   epoch) threaded through the offload path, emitting structured events
   with virtual timestamps from an injectable clock
   (:mod:`repro.telemetry.spans`), plus the **decision audit log**
   explaining every sample's offload decision
   (:mod:`repro.telemetry.audit`).
3. **Exporters** -- Prometheus text exposition, a replayable JSONL event
   log (:mod:`repro.telemetry.exporters`), and chrome-trace span rendering
   in :mod:`repro.metrics.chrometrace`.

The package is a leaf: it imports nothing from the rest of ``repro``, so
any subsystem may report into it without cycles.  It never reads wall
time -- every timestamp comes from an injected
:data:`~repro.telemetry.clock.Clock` (DET01-clean by construction).
"""

from repro.telemetry.audit import (
    NOT_BENEFICIAL,
    OFFLOADED,
    PLANNING_STOPPED,
    SKIPPED_WOULD_WORSEN,
    AuditLog,
    BudgetState,
    CandidateSplit,
    DecisionRecord,
)
from repro.telemetry.clock import Clock, LogicalClock, ManualClock
from repro.telemetry.exporters import (
    ReplayedTelemetry,
    parse_prometheus,
    read_jsonl,
    render_prometheus,
    replay_jsonl_lines,
    telemetry_jsonl_lines,
    write_jsonl,
)
from repro.telemetry.flight import FlightRecorder, FlightSnapshot
from repro.telemetry.logs import (
    LEVELS,
    LogRecord,
    StructuredLogger,
    render_json,
    render_logfmt,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramValue,
    MetricError,
    MetricsRegistry,
    MetricsSnapshot,
    get_default_registry,
    set_default_registry,
    use_registry,
)
from repro.telemetry.slo import (
    Objective,
    ObjectiveResult,
    SloEvaluator,
    SloReport,
    latency_objective,
    percentile,
    rate_objective,
)
from repro.telemetry.spans import (
    BEGIN,
    END,
    INSTANT,
    TRACE_HEADER,
    SpanEvent,
    Tracer,
    encode_trace_header,
    parse_trace_header,
    parse_trace_id,
    trace_id,
)

__all__ = [
    "AuditLog",
    "BEGIN",
    "BudgetState",
    "CandidateSplit",
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "DecisionRecord",
    "END",
    "FlightRecorder",
    "FlightSnapshot",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "INSTANT",
    "LEVELS",
    "LogRecord",
    "LogicalClock",
    "ManualClock",
    "MetricError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NOT_BENEFICIAL",
    "OFFLOADED",
    "Objective",
    "ObjectiveResult",
    "PLANNING_STOPPED",
    "ReplayedTelemetry",
    "SKIPPED_WOULD_WORSEN",
    "SloEvaluator",
    "SloReport",
    "SpanEvent",
    "StructuredLogger",
    "TRACE_HEADER",
    "Tracer",
    "encode_trace_header",
    "get_default_registry",
    "latency_objective",
    "parse_prometheus",
    "parse_trace_header",
    "parse_trace_id",
    "percentile",
    "rate_objective",
    "read_jsonl",
    "render_json",
    "render_logfmt",
    "render_prometheus",
    "replay_jsonl_lines",
    "set_default_registry",
    "telemetry_jsonl_lines",
    "trace_id",
    "use_registry",
    "write_jsonl",
]
