"""Exporters: Prometheus text exposition and the JSONL event log.

Both formats are *round-trippable* by design: the Prometheus text parses
back into an equal :class:`~repro.telemetry.registry.MetricsSnapshot`, and
a JSONL log replays into a registry/tracer/audit-log triple whose state
matches what was exported.  Round-tripping is what the determinism gate
leans on -- identical seeds must produce byte-identical JSONL files, and
byte-identical files must replay to equal state.

Chrome-trace rendering of spans lives in :mod:`repro.metrics.chrometrace`,
next to the existing batch-timeline renderer.
"""

import dataclasses
import json
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.audit import AuditLog
from repro.telemetry.registry import (
    HistogramValue,
    MetricsRegistry,
    MetricsSnapshot,
    SeriesKey,
    SeriesValue,
)
from repro.telemetry.spans import SpanEvent, Tracer

#: Schema version stamped into every JSONL log.
JSONL_VERSION = 1


# -- Prometheus text exposition ---------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in labels)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(source: Union[MetricsRegistry, MetricsSnapshot]) -> str:
    """Prometheus text exposition of a registry or snapshot."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], SeriesValue]]] = {}
    for (name, labels), value in snapshot.series.items():
        by_name.setdefault(name, []).append((labels, value))
    lines: List[str] = []
    for name in sorted(by_name):
        kind = snapshot.kinds[name]
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in sorted(by_name[name]):
            if isinstance(value, HistogramValue):
                cumulative = 0
                for bound, count in zip(value.buckets, value.bucket_counts):
                    cumulative += count
                    le = (*labels, ("le", _format_value(bound)))
                    lines.append(
                        f"{name}_bucket{_format_labels(le)} {cumulative}"
                    )
                cumulative += value.bucket_counts[-1]
                inf_labels = (*labels, ("le", "+Inf"))
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {_format_value(value.sum)}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {value.count}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<name>[A-Za-z_][A-Za-z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def _parse_labels(text: Optional[str]) -> Tuple[Tuple[str, str], ...]:
    if not text:
        return ()
    return tuple(
        (m.group("name"), _unescape_label(m.group("value")))
        for m in _LABEL_RE.finditer(text)
    )


@dataclasses.dataclass
class _HistogramAccumulator:
    buckets: List[Tuple[float, int]] = dataclasses.field(default_factory=list)
    inf_count: int = 0
    sum: float = 0.0
    count: int = 0

    def finish(self) -> HistogramValue:
        ordered = sorted(self.buckets)
        bounds = tuple(b for b, _ in ordered)
        per_bucket: List[int] = []
        previous = 0
        for _, cumulative in ordered:
            per_bucket.append(cumulative - previous)
            previous = cumulative
        per_bucket.append(self.inf_count - previous)  # the +Inf overflow
        return HistogramValue(
            buckets=bounds,
            bucket_counts=tuple(per_bucket),
            sum=self.sum,
            count=self.count,
        )


def parse_prometheus(text: str) -> MetricsSnapshot:
    """Parse exposition text back into a snapshot (the round-trip twin)."""
    kinds: Dict[str, str] = {}
    scalars: Dict[SeriesKey, float] = {}
    histograms: Dict[SeriesKey, _HistogramAccumulator] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw_line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = name[: -len(suffix)] if name.endswith(suffix) else None
            if candidate and kinds.get(candidate) == "histogram":
                base = (candidate, suffix)
                break
        if base is not None:
            hist_name, suffix = base
            bare_labels = tuple(
                (k, v) for k, v in labels if not (suffix == "_bucket" and k == "le")
            )
            acc = histograms.setdefault(
                (hist_name, bare_labels), _HistogramAccumulator()
            )
            if suffix == "_bucket":
                le = dict(labels)["le"]
                if le == "+Inf":
                    acc.inf_count = int(value)
                else:
                    acc.buckets.append((_parse_value(le), int(value)))
            elif suffix == "_sum":
                acc.sum = value
            else:
                acc.count = int(value)
        else:
            scalars[(name, labels)] = value
    series: Dict[SeriesKey, SeriesValue] = dict(scalars)
    for key, acc in histograms.items():
        series[key] = acc.finish()
    return MetricsSnapshot(series=series, kinds=kinds)


# -- JSONL event log --------------------------------------------------------

def _dump(obj: Mapping[str, object]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _encode_float(value: float) -> object:
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return value


def _decode_float(value: object) -> float:
    if isinstance(value, str):
        return float(value)
    assert isinstance(value, (int, float))
    return float(value)


def metric_jsonl_lines(snapshot: MetricsSnapshot) -> List[str]:
    lines: List[str] = []
    for (name, labels), value in sorted(snapshot.series.items()):
        entry: Dict[str, object] = {
            "kind": "metric",
            "metric": name,
            "type": snapshot.kinds[name],
            "labels": dict(labels),
        }
        if isinstance(value, HistogramValue):
            entry.update(
                buckets=list(value.buckets),
                bucket_counts=list(value.bucket_counts),
                sum=_encode_float(value.sum),
                count=value.count,
            )
        else:
            entry["value"] = _encode_float(value)
        lines.append(_dump(entry))
    return lines


def span_jsonl_lines(events: Iterable[SpanEvent]) -> List[str]:
    return [
        _dump(
            {
                "kind": "span",
                "trace": event.trace_id,
                "name": event.name,
                "phase": event.phase,
                "t_s": _encode_float(event.t_s),
                "attrs": {k: event.attrs[k] for k in sorted(event.attrs)},
            }
        )
        for event in events
    ]


def audit_jsonl_lines(audit: AuditLog) -> List[str]:
    return [_dump({"kind": "audit", **entry}) for entry in audit.to_dicts()]


def telemetry_jsonl_lines(
    registry: Optional[Union[MetricsRegistry, MetricsSnapshot]] = None,
    tracer: Optional[Tracer] = None,
    audit: Optional[AuditLog] = None,
) -> List[str]:
    """The full JSONL document: header, metrics, spans, audit records."""
    lines = [_dump({"kind": "header", "format": "repro-telemetry", "version": JSONL_VERSION})]
    if registry is not None:
        snapshot = (
            registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
        )
        lines.extend(metric_jsonl_lines(snapshot))
    if tracer is not None:
        lines.extend(span_jsonl_lines(tracer.events))
    if audit is not None:
        lines.extend(audit_jsonl_lines(audit))
    return lines


def write_jsonl(
    path: str,
    registry: Optional[Union[MetricsRegistry, MetricsSnapshot]] = None,
    tracer: Optional[Tracer] = None,
    audit: Optional[AuditLog] = None,
) -> None:
    """Write a telemetry JSONL log; bytes are deterministic per content."""
    lines = telemetry_jsonl_lines(registry=registry, tracer=tracer, audit=audit)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write("\n".join(lines) + "\n")


@dataclasses.dataclass
class ReplayedTelemetry:
    """What :func:`replay_jsonl_lines` reconstructs from a log."""

    registry: MetricsRegistry
    tracer: Tracer
    audit: AuditLog


def replay_jsonl_lines(lines: Iterable[str]) -> ReplayedTelemetry:
    """Rebuild registry/tracer/audit state from an exported JSONL log.

    The reconstructed registry's snapshot equals the exported one; span
    events come back in order with identical timestamps and attrs.
    """
    registry = MetricsRegistry()
    tracer = Tracer()
    audit_entries: List[Dict[str, object]] = []
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        entry = json.loads(line)
        kind = entry["kind"]
        if kind == "header":
            if entry.get("version") != JSONL_VERSION:
                raise ValueError(
                    f"unsupported telemetry log version {entry.get('version')!r}"
                )
        elif kind == "metric":
            _replay_metric(registry, entry)
        elif kind == "span":
            tracer.events.append(
                SpanEvent(
                    trace_id=entry["trace"],
                    name=entry["name"],
                    phase=entry["phase"],
                    t_s=_decode_float(entry["t_s"]),
                    attrs=dict(entry["attrs"]),
                )
            )
        elif kind == "audit":
            audit_entries.append({k: v for k, v in entry.items() if k != "kind"})
        else:
            raise ValueError(f"unknown telemetry record kind {kind!r}")
    return ReplayedTelemetry(
        registry=registry,
        tracer=tracer,
        audit=AuditLog.from_dicts(audit_entries),
    )


def _replay_metric(registry: MetricsRegistry, entry: Mapping[str, object]) -> None:
    name = str(entry["metric"])
    labels = dict(entry["labels"])  # type: ignore[arg-type]
    label_names = sorted(labels)
    mtype = entry["type"]
    if mtype == "counter":
        registry.counter(name, labels=label_names).inc(
            _decode_float(entry["value"]), **labels
        )
    elif mtype == "gauge":
        registry.gauge(name, labels=label_names).set(
            _decode_float(entry["value"]), **labels
        )
    elif mtype == "histogram":
        histogram = registry.histogram(
            name, labels=label_names, buckets=[float(b) for b in entry["buckets"]]  # type: ignore[union-attr]
        )
        histogram.restore(
            HistogramValue(
                buckets=tuple(float(b) for b in entry["buckets"]),  # type: ignore[union-attr]
                bucket_counts=tuple(int(c) for c in entry["bucket_counts"]),  # type: ignore[union-attr]
                sum=_decode_float(entry["sum"]),
                count=int(entry["count"]),  # type: ignore[arg-type]
            ),
            **labels,
        )
    else:
        raise ValueError(f"unknown metric type {mtype!r}")


def read_jsonl(path: str) -> ReplayedTelemetry:
    with open(path, "r", encoding="utf-8") as handle:
        return replay_jsonl_lines(handle)
