"""The decision audit log: why each sample got the split it got.

SOPHON's contribution is a per-sample decision, so the audit unit is the
sample: every :class:`DecisionRecord` captures the candidate splits the
engine saw (serialized size, prefix CPU cost, bytes saved, per-split
efficiency), the sample's rank in the efficiency ordering, the budget
state (the analytic epoch estimate) at the moment the engine considered
it, and the outcome.  ``sophon-repro audit <sample-id>`` renders one
record end-to-end; exporters serialize the whole log to JSONL.
"""

import dataclasses
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

#: Outcome vocabulary for one sample's decision.
OFFLOADED = "offloaded"
SKIPPED_WOULD_WORSEN = "skipped-would-worsen"
NOT_BENEFICIAL = "not-beneficial"
PLANNING_STOPPED = "planning-stopped"
FIDELITY_DEGRADED = "fidelity-degraded"

_OUTCOMES = (
    OFFLOADED,
    SKIPPED_WOULD_WORSEN,
    NOT_BENEFICIAL,
    PLANNING_STOPPED,
    FIDELITY_DEGRADED,
)


@dataclasses.dataclass(frozen=True)
class CandidateSplit:
    """One possible split point for one sample, as the engine costed it."""

    split: int
    size_bytes: int
    prefix_cpu_s: float
    savings_bytes: int

    @property
    def efficiency(self) -> float:
        """Bytes saved per CPU-second of offloaded work at this split."""
        if self.split == 0 or self.savings_bytes <= 0:
            return 0.0
        if self.prefix_cpu_s <= 0.0:
            return float("inf")
        return self.savings_bytes / self.prefix_cpu_s


@dataclasses.dataclass(frozen=True)
class BudgetState:
    """The analytic budget at the moment a sample was considered."""

    accepted_samples: int
    epoch_estimate_s: float
    bottleneck: str
    network_bound: bool
    storage_cpu_s: float
    traffic_bytes: float


@dataclasses.dataclass(frozen=True)
class DecisionRecord:
    """The full story of one sample's offload decision."""

    sample_id: int
    candidates: Tuple[CandidateSplit, ...]
    chosen_split: int
    best_split: int
    efficiency: float
    #: 1-based position in the engine's candidate ordering; None when the
    #: sample never entered the ordering (no positive-efficiency split).
    efficiency_rank: Optional[int]
    outcome: str
    reason: str
    budget: Optional[BudgetState] = None
    #: Fidelity axis: scans of the raw stream the plan ships (None = full
    #: fidelity -- the axis was unused for this sample).
    chosen_scans: Optional[int] = None
    #: PSNR (dB, vs. the full decode) of the chosen scan prefix.
    fidelity_psnr_db: Optional[float] = None

    def __post_init__(self) -> None:
        if self.outcome not in _OUTCOMES:
            raise ValueError(
                f"outcome must be one of {_OUTCOMES}, got {self.outcome!r}"
            )

    def candidate_at(self, split: int) -> CandidateSplit:
        for candidate in self.candidates:
            if candidate.split == split:
                return candidate
        raise KeyError(f"sample {self.sample_id} has no candidate split {split}")


class AuditLog:
    """Per-sample decision records for one planning pass."""

    def __init__(self) -> None:
        self._records: Dict[int, DecisionRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, sample_id: int) -> bool:
        return sample_id in self._records

    def __iter__(self) -> Iterator[DecisionRecord]:
        for sample_id in sorted(self._records):
            yield self._records[sample_id]

    def add(self, record: DecisionRecord) -> None:
        if record.sample_id in self._records:
            raise ValueError(f"sample {record.sample_id} already audited")
        self._records[record.sample_id] = record

    def amend(self, sample_id: int, **changes: object) -> DecisionRecord:
        """Replace fields of an existing record (a second planning pass
        refining an earlier decision, e.g. the fidelity planner degrading a
        sample the engine left at split 0).  Returns the new record."""
        updated = dataclasses.replace(self.get(sample_id), **changes)  # type: ignore[arg-type]
        self._records[sample_id] = updated
        return updated

    def get(self, sample_id: int) -> DecisionRecord:
        try:
            return self._records[sample_id]
        except KeyError:
            raise KeyError(
                f"no decision record for sample {sample_id}; audited samples: "
                f"{len(self._records)}"
            ) from None

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    # -- rendering ---------------------------------------------------------

    def explain(self, sample_id: int) -> str:
        """A human-readable account of one sample's decision."""
        record = self.get(sample_id)
        lines = [f"sample {record.sample_id}: {record.outcome} ({record.reason})"]
        rank = (
            f"#{record.efficiency_rank}" if record.efficiency_rank is not None
            else "unranked"
        )
        lines.append(
            f"  best split {record.best_split}, chosen split "
            f"{record.chosen_split}, efficiency {_fmt_eff(record.efficiency)} "
            f"bytes/cpu-s (rank {rank})"
        )
        if record.chosen_scans is not None:
            psnr = (
                f"{record.fidelity_psnr_db:.1f}dB"
                if record.fidelity_psnr_db is not None
                else "unknown"
            )
            lines.append(
                f"  fidelity: ship {record.chosen_scans} scan(s) of the raw "
                f"stream (prefix PSNR {psnr} vs. full decode)"
            )
        lines.append("  candidate splits:")
        lines.append(
            "    split    size(B)   saved(B)   prefix-cpu(s)   efficiency"
        )
        for cand in record.candidates:
            marker = " <- chosen" if cand.split == record.chosen_split else ""
            lines.append(
                f"    {cand.split:>5}   {cand.size_bytes:>8}   "
                f"{cand.savings_bytes:>8}   {cand.prefix_cpu_s:>13.6f}   "
                f"{_fmt_eff(cand.efficiency):>10}{marker}"
            )
        if record.budget is not None:
            b = record.budget
            lines.append(
                f"  budget at decision time: {b.accepted_samples} samples "
                f"already offloaded, expected epoch {b.epoch_estimate_s:.3f}s, "
                f"bottleneck {b.bottleneck} "
                f"({'network-bound' if b.network_bound else 'not network-bound'}), "
                f"storage CPU {b.storage_cpu_s:.3f}s, "
                f"traffic {b.traffic_bytes / 1e6:.2f}MB"
            )
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready dicts, sorted by sample id (for the JSONL exporter)."""
        out: List[Dict[str, object]] = []
        for record in self:
            entry: Dict[str, object] = {
                "sample_id": record.sample_id,
                "candidates": [
                    {
                        "split": c.split,
                        "size_bytes": c.size_bytes,
                        "prefix_cpu_s": c.prefix_cpu_s,
                        "savings_bytes": c.savings_bytes,
                    }
                    for c in record.candidates
                ],
                "chosen_split": record.chosen_split,
                "best_split": record.best_split,
                "efficiency": _json_float(record.efficiency),
                "efficiency_rank": record.efficiency_rank,
                "outcome": record.outcome,
                "reason": record.reason,
                "budget": None
                if record.budget is None
                else dataclasses.asdict(record.budget),
            }
            # Fidelity keys appear only when the axis was used, so logs
            # from fidelity-free planning stay byte-identical to before the
            # axis existed.
            if record.chosen_scans is not None:
                entry["chosen_scans"] = record.chosen_scans
                entry["fidelity_psnr_db"] = _json_float(
                    record.fidelity_psnr_db
                    if record.fidelity_psnr_db is not None
                    else float("inf")
                )
            out.append(entry)
        return out

    @classmethod
    def from_dicts(cls, dicts: List[Mapping[str, object]]) -> "AuditLog":
        log = cls()
        for entry in dicts:
            budget_raw = entry.get("budget")
            budget = (
                BudgetState(**budget_raw)  # type: ignore[arg-type]
                if isinstance(budget_raw, dict)
                else None
            )
            log.add(
                DecisionRecord(
                    sample_id=int(entry["sample_id"]),  # type: ignore[arg-type]
                    candidates=tuple(
                        CandidateSplit(**c) for c in entry["candidates"]  # type: ignore[union-attr]
                    ),
                    chosen_split=int(entry["chosen_split"]),  # type: ignore[arg-type]
                    best_split=int(entry["best_split"]),  # type: ignore[arg-type]
                    efficiency=_parse_float(entry["efficiency"]),
                    efficiency_rank=(
                        None
                        if entry["efficiency_rank"] is None
                        else int(entry["efficiency_rank"])  # type: ignore[arg-type]
                    ),
                    outcome=str(entry["outcome"]),
                    reason=str(entry["reason"]),
                    budget=budget,
                    chosen_scans=(
                        None
                        if entry.get("chosen_scans") is None
                        else int(entry["chosen_scans"])  # type: ignore[arg-type]
                    ),
                    fidelity_psnr_db=(
                        None
                        if entry.get("fidelity_psnr_db") is None
                        else _parse_float(entry["fidelity_psnr_db"])
                    ),
                )
            )
        return log


def _fmt_eff(value: float) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.1f}"


def _json_float(value: float) -> object:
    """JSON has no Infinity literal; encode it as a string sentinel."""
    if value == float("inf"):
        return "inf"
    return value


def _parse_float(value: object) -> float:
    if isinstance(value, str):
        return float(value)
    assert isinstance(value, (int, float))
    return float(value)
