"""Declarative SLOs with sliding-window burn-rate evaluation.

An :class:`Objective` states one promise about the service: a latency
percentile bound ("p99 of request latency stays under 10s") or an outcome
rate bound ("no more than 20% of requests are shed").  The
:class:`SloEvaluator` accumulates per-request observations -- latency plus
a terminal outcome string -- on an injectable
:data:`~repro.telemetry.clock.Clock`, optionally pruning them to a sliding
window, and :meth:`~SloEvaluator.evaluate` renders a schema-versioned
:class:`SloReport` with the observed value, pass/fail verdict, and burn
rate (observed / threshold; 1.0 means the error budget is spent exactly
as fast as allowed) per objective.

``repro.service.loadgen`` embeds the report as the ``slo`` section of
``BENCH_service.json`` and exits non-zero on violations, which is what
lets ``make bench`` and CI gate on p50/p99 regressions.  The
``sophon-repro slo`` subcommand re-checks a saved report against
(possibly overridden) thresholds.
"""

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.clock import Clock, LogicalClock

#: Schema tag stamped on every serialized report.
SCHEMA = "sophon-slo/v1"

#: Objective kinds.
LATENCY = "latency"
RATE = "rate"


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) over an unsorted sequence."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclasses.dataclass(frozen=True)
class Objective:
    """One declarative promise: a latency percentile or an outcome rate.

    ``kind=LATENCY``: the ``quantile`` percentile of observed latencies
    must stay <= ``threshold`` seconds.  ``kind=RATE``: the fraction of
    observations whose outcome is in ``bad_outcomes`` must stay <=
    ``threshold``.
    """

    name: str
    kind: str
    threshold: float
    quantile: float = 0.0
    bad_outcomes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective name must be non-empty")
        if self.kind not in (LATENCY, RATE):
            raise ValueError(f"bad objective kind {self.kind!r}")
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if self.kind == LATENCY and not 0.0 < self.quantile <= 1.0:
            raise ValueError(
                f"latency objective needs quantile in (0, 1], got {self.quantile}"
            )
        if self.kind == RATE and not self.bad_outcomes:
            raise ValueError("rate objective needs at least one bad outcome")


def latency_objective(name: str, quantile: float, threshold_s: float) -> Objective:
    """Shorthand: the ``quantile`` latency must stay <= ``threshold_s``."""
    return Objective(name=name, kind=LATENCY, threshold=threshold_s, quantile=quantile)


def rate_objective(name: str, bad_outcomes: Sequence[str], max_rate: float) -> Objective:
    """Shorthand: the rate of ``bad_outcomes`` must stay <= ``max_rate``."""
    return Objective(
        name=name, kind=RATE, threshold=max_rate, bad_outcomes=tuple(bad_outcomes)
    )


@dataclasses.dataclass(frozen=True)
class ObjectiveResult:
    """One objective evaluated against the current window."""

    objective: Objective
    observed: Optional[float]  # None when the window holds no observations
    passed: bool
    burn_rate: Optional[float]  # observed / threshold; None if threshold == 0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "threshold": self.objective.threshold,
            "observed": self.observed,
            "passed": self.passed,
            "burn_rate": self.burn_rate,
        }
        if self.objective.kind == LATENCY:
            payload["quantile"] = self.objective.quantile
        else:
            payload["bad_outcomes"] = list(self.objective.bad_outcomes)
        return payload


@dataclasses.dataclass(frozen=True)
class SloReport:
    """Every objective's verdict over one evaluation window."""

    results: Tuple[ObjectiveResult, ...]
    samples: int
    window_s: Optional[float]

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "passed": self.passed,
            "samples": self.samples,
            "window_s": self.window_s,
            "objectives": [result.to_dict() for result in self.results],
        }

    def render(self) -> str:
        """Human-readable verdict table."""
        lines = [f"SLO report ({self.samples} samples)"]
        for result in self.results:
            objective = result.objective
            if objective.kind == LATENCY:
                what = f"p{objective.quantile * 100:g} latency <= {objective.threshold:g}s"
            else:
                outcomes = ",".join(objective.bad_outcomes)
                what = f"rate({outcomes}) <= {objective.threshold:g}"
            observed = "n/a" if result.observed is None else f"{result.observed:.6g}"
            burn = "n/a" if result.burn_rate is None else f"{result.burn_rate:.3g}"
            verdict = "ok" if result.passed else "VIOLATED"
            lines.append(
                f"  [{verdict:>8}] {objective.name}: {what} "
                f"(observed {observed}, burn rate {burn})"
            )
        lines.append(f"overall: {'pass' if self.passed else 'FAIL'}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class _Observation:
    at_s: float
    latency_s: float
    outcome: str


class SloEvaluator:
    """Accumulates observations and evaluates objectives over a window.

    ``window_s=None`` keeps every observation (batch mode, what the
    loadgen uses for its final report); a finite window prunes
    observations older than ``clock() - window_s`` on each record and
    evaluate, which is what turns burn rates into *recent* burn rates for
    a long-lived service.
    """

    def __init__(
        self,
        objectives: Sequence[Objective],
        window_s: Optional[float] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if not objectives:
            raise ValueError("need at least one objective")
        if window_s is not None and window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.objectives: Tuple[Objective, ...] = tuple(objectives)
        self.window_s = window_s
        self.clock: Clock = clock if clock is not None else LogicalClock()
        self._observations: List[_Observation] = []

    def record(self, latency_s: float, outcome: str = "ok") -> None:
        """One finished request: its latency and terminal outcome."""
        if latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {latency_s}")
        now = self.clock()
        self._observations.append(
            _Observation(at_s=now, latency_s=latency_s, outcome=outcome)
        )
        self._prune(now)

    def _prune(self, now_s: float) -> None:
        if self.window_s is None:
            return
        horizon = now_s - self.window_s
        # Observations arrive in clock order, so one scan from the left.
        keep = 0
        while keep < len(self._observations) and self._observations[keep].at_s < horizon:
            keep += 1
        if keep:
            del self._observations[:keep]

    @property
    def samples(self) -> int:
        return len(self._observations)

    def _evaluate_one(self, objective: Objective) -> ObjectiveResult:
        observed: Optional[float]
        if not self._observations:
            observed = None
            passed = True  # no data is no violation
        elif objective.kind == LATENCY:
            observed = percentile(
                [obs.latency_s for obs in self._observations], objective.quantile
            )
            passed = observed <= objective.threshold
        else:
            bad = sum(
                1 for obs in self._observations if obs.outcome in objective.bad_outcomes
            )
            observed = bad / len(self._observations)
            passed = observed <= objective.threshold
        burn_rate: Optional[float] = None
        if observed is not None and objective.threshold > 0:
            burn_rate = observed / objective.threshold
        return ObjectiveResult(
            objective=objective, observed=observed, passed=passed, burn_rate=burn_rate
        )

    def evaluate(self) -> SloReport:
        """Verdicts for every objective over the (pruned) window."""
        if self.window_s is not None:
            self._prune(self.clock())
        return SloReport(
            results=tuple(self._evaluate_one(obj) for obj in self.objectives),
            samples=len(self._observations),
            window_s=self.window_s,
        )
