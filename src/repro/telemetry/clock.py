"""The telemetry clock protocol: virtual time, injected everywhere.

Every timestamp the telemetry layer emits comes from a ``Clock`` -- any
zero-argument callable returning seconds as a float.  Nothing in
:mod:`repro.telemetry` ever reads wall time; harnesses bind tracers to the
simulator's virtual clock (``lambda: env.now``), unit tests bind them to a
:class:`ManualClock`, and code with no natural time axis (the decision
engine) uses a :class:`LogicalClock` whose "seconds" are just a
deterministic event counter.  The same protocol is what
:func:`repro.preprocessing.cost_model.calibrate` accepts as its injectable
timer, which is what lets DET01 cover both packages.
"""

from typing import Callable

#: Anything that yields the current time in (virtual) seconds.
Clock = Callable[[], float]


class ManualClock:
    """A clock that only moves when told to.

    The test-side twin of the simulator's ``env.now``: start it anywhere,
    ``advance`` it past timeouts, and every telemetry timestamp is exactly
    the value you set.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = float(start_s)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta_s: float) -> float:
        """Move time forward; returns the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance by {delta_s}; time moves forward")
        self._now += delta_s
        return self._now

    def set(self, now_s: float) -> None:
        if now_s < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {now_s}"
            )
        self._now = float(now_s)


class LogicalClock:
    """A clock whose time is an event counter: 0, step, 2*step, ...

    For code with no time axis at all (plan construction happens "at once")
    this still gives every event a strictly increasing, fully deterministic
    timestamp, so ordering survives any export format.
    """

    def __init__(self, step_s: float = 1.0) -> None:
        if step_s <= 0:
            raise ValueError(f"step_s must be > 0, got {step_s}")
        self.step_s = step_s
        self._ticks = 0

    def __call__(self) -> float:
        now = self._ticks * self.step_s
        self._ticks += 1
        return now

    @property
    def ticks(self) -> int:
        """How many timestamps have been handed out."""
        return self._ticks
