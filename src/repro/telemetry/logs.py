"""Structured logging: logfmt/JSON records with trace correlation.

The service and RPC layers used ad-hoc ``logging.warning(...)`` strings;
those are unparseable and carry no trace context.  This module replaces
them with frozen :class:`LogRecord` values -- a timestamp from an
injectable :data:`~repro.telemetry.clock.Clock`, a severity level, the
emitting logger name, a human message, an optional ``trace_id`` linking
the record to its :class:`~repro.telemetry.spans.SpanEvent` stream, and a
flat ``attrs`` mapping of JSON scalars.

Records render two ways: :func:`render_logfmt` (``ts=3 level=warning ...``,
grep-friendly) and :func:`render_json` (canonical sorted-key JSON, one
object per line).  Both are deterministic: identical records produce
identical bytes.

:class:`StructuredLogger` is the emitting side.  It stamps records from
its clock (default :class:`~repro.telemetry.clock.LogicalClock` -- never
wall time; DET01 covers this package), hands each record to an optional
``sink`` (the service wires the flight recorder here), and bridges to the
stdlib ``logging`` tree so existing handlers and ``caplog``-style tests
keep working.
"""

import dataclasses
import json
import logging as _stdlib_logging
import re
from typing import Callable, Mapping, Optional, Tuple

from repro.telemetry.clock import Clock, LogicalClock

#: Severity levels, least to most severe.
LEVELS: Tuple[str, ...] = ("debug", "info", "warning", "error")

_STDLIB_LEVELS = {
    "debug": _stdlib_logging.DEBUG,
    "info": _stdlib_logging.INFO,
    "warning": _stdlib_logging.WARNING,
    "error": _stdlib_logging.ERROR,
}

#: logfmt values containing none of these stay bare; anything else quotes.
_BARE_VALUE_RE = re.compile(r"^[A-Za-z0-9._:/+-]+$")


@dataclasses.dataclass(frozen=True)
class LogRecord:
    """One structured log line.

    attrs values must be JSON-representable scalars so both renderers
    produce stable bytes; the timestamp comes from the emitting logger's
    injected clock, never from wall time.
    """

    t_s: float
    level: str
    logger: str
    message: str
    trace_id: Optional[str] = None
    attrs: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"bad log level {self.level!r}; expected one of {LEVELS}")
        if not self.logger:
            raise ValueError("logger name must be non-empty")


def _logfmt_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    if text and _BARE_VALUE_RE.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'


def render_logfmt(record: LogRecord) -> str:
    """``ts=... level=... logger=... msg=... [trace=...] key=value...``

    Fixed fields lead in a fixed order; attrs follow sorted by key, so the
    same record always renders to the same bytes.
    """
    parts = [
        f"ts={record.t_s!r}",
        f"level={record.level}",
        f"logger={record.logger}",
        f"msg={_logfmt_value(record.message)}",
    ]
    if record.trace_id is not None:
        parts.append(f"trace={_logfmt_value(record.trace_id)}")
    for key in sorted(record.attrs):
        parts.append(f"{key}={_logfmt_value(record.attrs[key])}")
    return " ".join(parts)


def render_json(record: LogRecord) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace padding)."""
    payload = {
        "ts": record.t_s,
        "level": record.level,
        "logger": record.logger,
        "msg": record.message,
    }
    if record.trace_id is not None:
        payload["trace"] = record.trace_id
    if record.attrs:
        payload["attrs"] = {k: record.attrs[k] for k in sorted(record.attrs)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: Anything that accepts finished records (e.g. ``FlightRecorder.record_log``).
LogSink = Callable[[LogRecord], None]


class StructuredLogger:
    """Emits :class:`LogRecord` values stamped from an injectable clock.

    ``sink`` receives every record (the service points this at its flight
    recorder); when ``bridge`` is true (the default) each record is also
    forwarded to ``logging.getLogger(name)`` as a logfmt line, so stdlib
    handlers and test caplog fixtures observe the same stream.
    """

    def __init__(
        self,
        name: str,
        clock: Optional[Clock] = None,
        sink: Optional[LogSink] = None,
        bridge: bool = True,
    ) -> None:
        if not name:
            raise ValueError("logger name must be non-empty")
        self.name = name
        self.clock: Clock = clock if clock is not None else LogicalClock()
        self.sink = sink
        self._stdlib = _stdlib_logging.getLogger(name) if bridge else None

    def log(
        self, level: str, message: str, trace: Optional[str] = None, **attrs: object
    ) -> LogRecord:
        record = LogRecord(
            t_s=self.clock(),
            level=level,
            logger=self.name,
            message=message,
            trace_id=trace,
            attrs=dict(attrs),
        )
        if self.sink is not None:
            self.sink(record)
        if self._stdlib is not None:
            self._stdlib.log(_STDLIB_LEVELS[level], "%s", render_logfmt(record))
        return record

    def debug(self, message: str, trace: Optional[str] = None, **attrs: object) -> LogRecord:
        return self.log("debug", message, trace=trace, **attrs)

    def info(self, message: str, trace: Optional[str] = None, **attrs: object) -> LogRecord:
        return self.log("info", message, trace=trace, **attrs)

    def warning(self, message: str, trace: Optional[str] = None, **attrs: object) -> LogRecord:
        return self.log("warning", message, trace=trace, **attrs)

    def error(self, message: str, trace: Optional[str] = None, **attrs: object) -> LogRecord:
        return self.log("error", message, trace=trace, **attrs)
