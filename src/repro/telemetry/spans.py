"""Per-sample spans: a lightweight trace context for the offload path.

A sample's journey -- decision, RPC fetch (attempts, breaker transitions),
server-side prefix execution, degraded-mode demotion, cache hit/miss -- is
recorded as structured :class:`SpanEvent` objects under one ``trace_id``
derived from (sample id, epoch).  Timestamps come from the tracer's
injectable :data:`~repro.telemetry.clock.Clock`, so a tracer bound to the
simulator's virtual clock produces byte-identical event streams across
runs.

Events are deliberately flat (no object graph): a begin/end pair brackets
a phase, an instant marks a point event, and ``attrs`` carries the
structured details.  Exporters pair them back up into nested chrome-trace
spans.
"""

import contextlib
import dataclasses
import re
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.telemetry.clock import Clock, LogicalClock

#: Event phases, mirroring the trace-event vocabulary.
BEGIN = "B"
END = "E"
INSTANT = "I"

#: HTTP header carrying the trace id across the service boundary.
TRACE_HEADER = "X-Sophon-Trace"

#: Wire format for trace ids: 1-128 chars from a conservative token
#: charset (letters, digits, ``._:-``), leading char alphanumeric.  Both
#: the sample ids (``s12-e0``) and the service client's request ids
#: (``jobA-r3``) fit; anything else is dropped at the boundary rather
#: than propagated into journals or span streams.
_TRACE_HEADER_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:-]{0,127}$")


def trace_id(sample_id: int, epoch: int) -> str:
    """The canonical trace id for one sample in one epoch."""
    return f"s{sample_id}-e{epoch}"


def parse_trace_id(value: str) -> Tuple[int, int]:
    """Invert :func:`trace_id`; raises ValueError on foreign ids."""
    try:
        sample_part, epoch_part = value.split("-", 1)
        if sample_part[0] != "s" or epoch_part[0] != "e":
            raise ValueError
        return int(sample_part[1:]), int(epoch_part[1:])
    except (ValueError, IndexError):
        raise ValueError(f"not a sample trace id: {value!r}") from None


def encode_trace_header(trace: str) -> str:
    """Validate ``trace`` for the ``X-Sophon-Trace`` header; returns it.

    Raises ValueError on ids that would not survive the round trip, so
    senders fail loudly instead of emitting headers receivers must drop.
    """
    if not _TRACE_HEADER_RE.match(trace):
        raise ValueError(f"trace id not header-safe: {trace!r}")
    return trace


def parse_trace_header(value: Optional[str]) -> Optional[str]:
    """The trace id from a received header value, or None.

    Absent, empty, over-long, or badly-charactered values all come back as
    None: a malformed trace header must never fail a request, only strip
    its tracing.
    """
    if value is None:
        return None
    value = value.strip()
    if not _TRACE_HEADER_RE.match(value):
        return None
    return value


@dataclasses.dataclass(frozen=True)
class SpanEvent:
    """One structured event on one trace.

    attrs values must be JSON-representable scalars (str/int/float/bool);
    exporters serialize them with sorted keys so identical runs produce
    identical bytes.
    """

    trace_id: str
    name: str
    phase: str  # BEGIN | END | INSTANT
    t_s: float
    attrs: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.phase not in (BEGIN, END, INSTANT):
            raise ValueError(f"bad span phase {self.phase!r}")


class Tracer:
    """Collects span events, stamping them from an injectable clock.

    The default clock is a :class:`LogicalClock`: with no time axis given,
    events still carry strictly increasing deterministic timestamps.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Clock = clock if clock is not None else LogicalClock()
        self.events: List[SpanEvent] = []

    def _emit(self, trace: str, name: str, phase: str, attrs: Dict[str, object]) -> SpanEvent:
        event = SpanEvent(
            trace_id=trace, name=name, phase=phase, t_s=self.clock(), attrs=attrs
        )
        self.events.append(event)
        return event

    def begin(self, trace: str, name: str, **attrs: object) -> SpanEvent:
        """Open a phase on a trace (pair with :meth:`end`)."""
        return self._emit(trace, name, BEGIN, dict(attrs))

    def end(self, trace: str, name: str, **attrs: object) -> SpanEvent:
        """Close the innermost open phase of this name on the trace."""
        return self._emit(trace, name, END, dict(attrs))

    def instant(self, trace: str, name: str, **attrs: object) -> SpanEvent:
        """A point event: demotion, retry, breaker transition, cache hit."""
        return self._emit(trace, name, INSTANT, dict(attrs))

    @contextlib.contextmanager
    def span(self, trace: str, name: str, **attrs: object) -> Iterator[None]:
        """``with tracer.span(tid, "rpc.fetch"):`` brackets a phase."""
        self.begin(trace, name, **attrs)
        try:
            yield
        finally:
            self.end(trace, name)

    # -- queries -----------------------------------------------------------

    def for_trace(self, trace: str) -> List[SpanEvent]:
        """Every event on one trace, in emission order."""
        return [e for e in self.events if e.trace_id == trace]

    def for_sample(self, sample_id: int, epoch: int) -> List[SpanEvent]:
        return self.for_trace(trace_id(sample_id, epoch))

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order (deterministic)."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        self.events.clear()
