"""The metrics registry: counters, gauges and histograms with label sets.

Hot paths report into a process-local *default* registry
(:func:`get_default_registry`); tests and harnesses swap it out with
:func:`set_default_registry` or the :func:`use_registry` context manager so
every run's numbers land in a registry the caller owns.  Snapshots are
plain immutable mappings -- two snapshots from identically seeded runs
compare equal, and :meth:`MetricsSnapshot.diff` isolates what one phase of
a run contributed.

Nothing here reads wall time or iterates unordered containers: series are
keyed by (metric name, label values) and every export walks them sorted.
"""

import contextlib
import dataclasses
import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

#: One series key: (metric name, ((label, value), ...)) with labels sorted.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram buckets, in seconds: spans micro-scale op costs to
#: whole epochs.  Explicit on purpose -- bucket edges are part of the
#: exported schema, so changing them is a visible decision.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0
)


class MetricError(Exception):
    """A metric was declared or used inconsistently."""


@dataclasses.dataclass(frozen=True)
class HistogramValue:
    """Immutable state of one histogram series.

    ``bucket_counts`` has one entry per configured upper bound plus a final
    +Inf overflow bucket; counts are cumulative-free (per-bucket), the
    Prometheus cumulative form is derived at export time.
    """

    buckets: Tuple[float, ...]
    bucket_counts: Tuple[int, ...]
    sum: float
    count: int

    def diff(self, older: "HistogramValue") -> "HistogramValue":
        if self.buckets != older.buckets:
            raise MetricError("cannot diff histograms with different buckets")
        return HistogramValue(
            buckets=self.buckets,
            bucket_counts=tuple(
                new - old for new, old in zip(self.bucket_counts, older.bucket_counts)
            ),
            sum=self.sum - older.sum,
            count=self.count - older.count,
        )


SeriesValue = Union[float, HistogramValue]


def _label_key(
    label_names: Sequence[str], labels: Mapping[str, object]
) -> Tuple[Tuple[str, str], ...]:
    if set(labels) != set(label_names):
        raise MetricError(
            f"labels {sorted(labels)} do not match declared names "
            f"{sorted(label_names)}"
        )
    return tuple((name, str(labels[name])) for name in sorted(label_names))


class Metric:
    """Base class: one named metric owning many labelled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

    def series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], SeriesValue]]:
        """All (label key, value) pairs, sorted by label key."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease by {amount}")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], SeriesValue]]:
        return sorted(self._values.items())


class Gauge(Metric):
    """A value that goes up and down (queue depth, breaker state)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help, labels)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], SeriesValue]]:
        return sorted(self._values.items())


class Histogram(Metric):
    """A distribution over explicit bucket boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"histogram {name} buckets must strictly increase")
        self.buckets = bounds
        self._counts: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
        self._totals: Dict[Tuple[Tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(self.label_names, labels)
        if key not in self._counts:
            self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
            self._totals[key] = 0
        index = len(self.buckets)  # +Inf overflow by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self._counts[key][index] += 1
        self._sums[key] += value
        self._totals[key] += 1

    def value(self, **labels: object) -> HistogramValue:
        key = _label_key(self.label_names, labels)
        counts = self._counts.get(key, [0] * (len(self.buckets) + 1))
        return HistogramValue(
            buckets=self.buckets,
            bucket_counts=tuple(counts),
            sum=self._sums.get(key, 0.0),
            count=self._totals.get(key, 0),
        )

    def series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], SeriesValue]]:
        return sorted(
            (key, self.value(**dict(key))) for key in self._counts
        )

    def restore(self, value: HistogramValue, **labels: object) -> None:
        """Load one series' exact exported state (the JSONL replay path)."""
        if value.buckets != self.buckets:
            raise MetricError(
                f"histogram {self.name!r} restore with mismatched buckets"
            )
        key = _label_key(self.label_names, labels)
        if key in self._counts:
            raise MetricError(
                f"histogram {self.name!r} series {key} already populated"
            )
        self._counts[key] = list(value.bucket_counts)
        self._sums[key] = value.sum
        self._totals[key] = value.count


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time copy of a registry's series.

    ``kinds`` maps metric name to kind so exports can regenerate TYPE
    lines; ``series`` maps :data:`SeriesKey` to the sampled value.
    """

    series: Mapping[SeriesKey, SeriesValue]
    kinds: Mapping[str, str]

    def value(self, name: str, **labels: object) -> SeriesValue:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self.series[key]

    def diff(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``older`` and this snapshot.

        Counters and histograms subtract; gauges keep their newer value
        (a gauge delta is rarely meaningful).
        """
        out: Dict[SeriesKey, SeriesValue] = {}
        for key, value in self.series.items():
            kind = self.kinds[key[0]]
            if key not in older.series or kind == "gauge":
                out[key] = value
            elif isinstance(value, HistogramValue):
                previous = older.series[key]
                assert isinstance(previous, HistogramValue)
                out[key] = value.diff(previous)
            else:
                previous = older.series[key]
                assert isinstance(previous, float)
                out[key] = value - previous
        return MetricsSnapshot(series=out, kinds=dict(self.kinds))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return dict(self.series) == dict(other.series) and dict(self.kinds) == dict(
            other.kinds
        )


class MetricsRegistry:
    """Owns metrics by name; get-or-create with consistency checks."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Sequence[str],
        **kwargs: object,
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            if existing.label_names != tuple(labels):
                raise MetricError(
                    f"metric {name!r} re-declared with labels {tuple(labels)}, "
                    f"was {existing.label_names}"
                )
            return existing
        metric = cls(name, help, labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(Counter, name, help, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        metric = self._get_or_create(Gauge, name, help, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labels, buckets=buckets)
        assert isinstance(metric, Histogram)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise MetricError(
                f"histogram {name!r} re-declared with different buckets"
            )
        return metric

    def metrics(self) -> List[Metric]:
        """All registered metrics, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> MetricsSnapshot:
        series: Dict[SeriesKey, SeriesValue] = {}
        kinds: Dict[str, str] = {}
        for metric in self.metrics():
            kinds[metric.name] = metric.kind
            for label_key, value in metric.series():
                series[(metric.name, label_key)] = value
        return MetricsSnapshot(series=series, kinds=kinds)


# -- the process-local default registry -------------------------------------

_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def get_default_registry() -> MetricsRegistry:
    """The registry hot paths report into unless handed another one."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default; returns the previous registry."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope the default registry to ``registry`` (a fresh one if None)."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
