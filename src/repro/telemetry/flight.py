"""The flight recorder: a bounded ring of recent spans and log records.

A long-lived service cannot keep every span forever, but when a chaos run
fails you want the *recent* timeline: what the last N requests were doing
across queue-wait, admission, planning, and journal fsync when things went
sideways.  :class:`FlightRecorder` keeps two fixed-capacity rings (spans
and structured log records, oldest evicted first), counts what it dropped,
and renders the surviving window as a chrome-trace-compatible JSON object
(one row per trace, log records as instants on a ``logs`` row) that
``chrome://tracing`` / Perfetto load directly.

Everything is stamped from one injectable
:data:`~repro.telemetry.clock.Clock` and guarded by a single lock: the
service's HTTP handler threads and worker threads all emit into the same
recorder.  An optional ``tee`` :class:`~repro.telemetry.spans.Tracer`
receives every span as well, which is how a traced chaos run exports the
*full* unbounded stream while the ring stays bounded.
"""

import collections
import dataclasses
import json
import threading
from typing import Deque, Dict, List, Optional, Tuple

from repro.telemetry.clock import Clock, LogicalClock
from repro.telemetry.logs import LogRecord, render_logfmt
from repro.telemetry.spans import BEGIN, END, INSTANT, SpanEvent, Tracer


@dataclasses.dataclass(frozen=True)
class FlightSnapshot:
    """A consistent copy of the recorder's current window."""

    spans: Tuple[SpanEvent, ...]
    logs: Tuple[LogRecord, ...]
    dropped_spans: int
    dropped_logs: int


class FlightRecorder:
    """Thread-safe bounded recorder for spans + logs, chrome-trace dumpable."""

    def __init__(
        self,
        capacity: int = 2048,
        clock: Optional[Clock] = None,
        tee: Optional[Tracer] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock: Clock = clock if clock is not None else LogicalClock()
        self.tee = tee
        self._lock = threading.Lock()
        self._spans: Deque[SpanEvent] = collections.deque(maxlen=capacity)
        self._logs: Deque[LogRecord] = collections.deque(maxlen=capacity)
        self._span_total = 0
        self._log_total = 0

    # -- recording ---------------------------------------------------------

    def record_span(self, event: SpanEvent) -> SpanEvent:
        """Append a pre-built span event (and tee it, if teeing)."""
        with self._lock:
            self._spans.append(event)
            self._span_total += 1
            if self.tee is not None:
                self.tee.events.append(event)
        return event

    def _emit(
        self, trace: str, name: str, phase: str, attrs: Dict[str, object]
    ) -> SpanEvent:
        with self._lock:
            event = SpanEvent(
                trace_id=trace, name=name, phase=phase, t_s=self.clock(), attrs=attrs
            )
            self._spans.append(event)
            self._span_total += 1
            if self.tee is not None:
                self.tee.events.append(event)
        return event

    def begin(self, trace: str, name: str, **attrs: object) -> SpanEvent:
        """Open a phase on a trace (pair with :meth:`end`)."""
        return self._emit(trace, name, BEGIN, dict(attrs))

    def end(self, trace: str, name: str, **attrs: object) -> SpanEvent:
        """Close the innermost open phase of this name on the trace."""
        return self._emit(trace, name, END, dict(attrs))

    def instant(self, trace: str, name: str, **attrs: object) -> SpanEvent:
        """A point event on a trace."""
        return self._emit(trace, name, INSTANT, dict(attrs))

    def record_log(self, record: LogRecord) -> None:
        """Sink for :class:`~repro.telemetry.logs.StructuredLogger`."""
        with self._lock:
            self._logs.append(record)
            self._log_total += 1

    # -- inspection --------------------------------------------------------

    def snapshot(self) -> FlightSnapshot:
        with self._lock:
            return FlightSnapshot(
                spans=tuple(self._spans),
                logs=tuple(self._logs),
                dropped_spans=self._span_total - len(self._spans),
                dropped_logs=self._log_total - len(self._logs),
            )

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._logs.clear()
            self._span_total = 0
            self._log_total = 0

    # -- chrome-trace export -----------------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The current window as a chrome-trace JSON object.

        Each distinct trace id gets its own thread row (tid assigned in
        first-seen order); begin/end pairs become complete ``X`` events,
        unmatched begins close at the window's last timestamp, and log
        records land as instants on a dedicated ``logs`` row.  Purely a
        function of the recorded events, so identical windows dump to
        identical bytes.
        """
        snap = self.snapshot()
        events: List[Dict[str, object]] = []
        tids: Dict[str, int] = {}
        last_t = max(
            [e.t_s for e in snap.spans] + [r.t_s for r in snap.logs], default=0.0
        )

        def tid_for(trace: str) -> int:
            if trace not in tids:
                tids[trace] = len(tids) + 1
                events.append(
                    {
                        "ph": "M",
                        "pid": 1,
                        "tid": tids[trace],
                        "name": "thread_name",
                        "args": {"name": trace},
                    }
                )
            return tids[trace]

        open_stacks: Dict[Tuple[str, str], List[SpanEvent]] = {}
        for event in snap.spans:
            tid = tid_for(event.trace_id)
            key = (event.trace_id, event.name)
            if event.phase == BEGIN:
                open_stacks.setdefault(key, []).append(event)
            elif event.phase == END:
                stack = open_stacks.get(key)
                if stack:
                    begin = stack.pop()
                    args = dict(begin.attrs)
                    args.update(event.attrs)
                    events.append(
                        {
                            "ph": "X",
                            "pid": 1,
                            "tid": tid,
                            "name": event.name,
                            "ts": begin.t_s * 1e6,
                            "dur": (event.t_s - begin.t_s) * 1e6,
                            "args": args,
                        }
                    )
            else:  # INSTANT
                events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": tid,
                        "name": event.name,
                        "ts": event.t_s * 1e6,
                        "s": "t",
                        "args": dict(event.attrs),
                    }
                )
        # Begins whose end fell outside the window (or never came) still
        # deserve a box: close them at the window's last timestamp.
        for (trace, name), stack in open_stacks.items():
            for begin in stack:
                events.append(
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": tid_for(trace),
                        "name": name,
                        "ts": begin.t_s * 1e6,
                        "dur": (last_t - begin.t_s) * 1e6,
                        "args": dict(begin.attrs, truncated=True),
                    }
                )
        if snap.logs:
            log_tid = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": log_tid,
                    "name": "thread_name",
                    "args": {"name": "logs"},
                }
            )
            for record in snap.logs:
                events.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": log_tid,
                        "name": f"log.{record.level}",
                        "ts": record.t_s * 1e6,
                        "s": "t",
                        "args": {"line": render_logfmt(record)},
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "dropped_spans": snap.dropped_spans,
                "dropped_logs": snap.dropped_logs,
                "spans": len(snap.spans),
                "logs": len(snap.logs),
            },
        }

    def dump(self, path: str) -> str:
        """Write the chrome trace to ``path``; returns the path."""
        trace = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
        return path
