"""Fault injection: deterministic chaos for the offloading data path.

SOPHON puts a remote storage server on the training job's critical path;
this package makes that dependency safe to rely on by letting every layer
rehearse its failure.  A seeded :class:`FaultSchedule` describes crash
windows, link brownouts, storage-CPU drift, and payload corruption on one
time axis; :class:`FaultInjector` applies it to the wall-clock transport,
and the event simulator applies it to virtual time
(``TrainerSim.run_epoch(faults=...)``).  An empty schedule is guaranteed to
change nothing, so fault-free runs stay byte-identical.
"""

from repro.faults.schedule import (
    Brownout,
    CpuDrift,
    CrashWindow,
    FaultReport,
    FaultSchedule,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "Brownout",
    "CpuDrift",
    "CrashWindow",
    "FaultInjector",
    "FaultReport",
    "FaultSchedule",
]
