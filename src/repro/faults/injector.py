"""Apply a :class:`FaultSchedule` to the wall-clock transport.

The event simulator injects faults against virtual time; the in-memory
channel has no clock, so the injector supplies one: by default each fetch
advances time by one unit (a *call-index clock*), which makes schedules
written in "fetch counts" fully deterministic.  Pass ``clock=`` to use real
time instead.

Faults map onto the transport as:

- crash window covering now  -> ``ConnectionError`` (connection refused);
- brownout covering now      -> a seeded fraction ``1 - bandwidth_factor``
  of fetches raise ``TimeoutError`` (the collapse shows up as stalls);
- corruption coin for this   -> a payload byte is flipped in the response,
  message                       leaving the frame header parseable so the
                                v2 checksum -- not luck -- catches it.
"""

from typing import Callable, Optional

from repro.faults.schedule import FaultReport, FaultSchedule, fault_draw
from repro.rpc.channel import InMemoryChannel
from repro.rpc.messages import RESPONSE_HEADER_SIZE

_SALT_BROWNOUT = 1
_SALT_OFFSET = 2


class FaultInjector:
    """Turns a schedule into channel hooks, with fault accounting."""

    def __init__(
        self,
        schedule: FaultSchedule,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.schedule = schedule
        self._clock = clock
        self._calls = 0
        self.report = FaultReport()

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return float(self._calls)

    def channel(self, handler: Callable[[bytes], bytes]) -> InMemoryChannel:
        """An in-memory channel with this injector's hooks attached."""
        return InMemoryChannel(
            handler, fault=self.on_request, response_fault=self.on_response
        )

    # -- channel hooks ------------------------------------------------------

    def on_request(self, request_bytes: bytes) -> None:
        """``InMemoryChannel`` request hook: raise transport errors."""
        t = self.now()
        index = self._calls
        self._calls += 1
        if self.schedule.storage_down(t):
            self.report.note_failure(t)
            raise ConnectionError(
                f"storage node down at t={t:g} (restarts at "
                f"{self.schedule.restart_time(t):g})"
            )
        factor = self.schedule.bandwidth_factor(t)
        if factor < 1.0:
            self.report.brownout_chunks += 1
            if self._brownout_drops(index, factor):
                self.report.note_failure(t)
                raise TimeoutError(
                    f"fetch timed out in brownout at t={t:g} "
                    f"(bandwidth at {factor:.0%})"
                )
        self.report.note_success(t)

    def on_response(self, response_bytes: bytes) -> bytes:
        """``InMemoryChannel`` response hook: corrupt payloads in transit."""
        index = self._calls - 1  # the request hook already advanced the clock
        if not self.schedule.corrupts(index):
            return response_bytes
        if len(response_bytes) <= RESPONSE_HEADER_SIZE:
            return response_bytes  # no payload region to damage
        self.report.corrupted_payloads += 1
        damaged = bytearray(response_bytes)
        span = len(damaged) - RESPONSE_HEADER_SIZE
        offset = RESPONSE_HEADER_SIZE + self._corruption_offset(index, span)
        damaged[offset] ^= 0xFF
        return bytes(damaged)

    # -- seeded draws -------------------------------------------------------

    def _brownout_drops(self, index: int, factor: float) -> bool:
        draw = fault_draw(self.schedule.seed, index, salt=_SALT_BROWNOUT)
        return draw < (1.0 - factor)

    def _corruption_offset(self, index: int, span: int) -> int:
        return int(fault_draw(self.schedule.seed, index, salt=_SALT_OFFSET) * span)
