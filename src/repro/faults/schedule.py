"""Deterministic, seeded fault schedules for chaos experiments.

A :class:`FaultSchedule` describes *when* the two-node cluster misbehaves,
on a single time axis shared by every consumer:

- the event simulator reads it against virtual time (``env.now``);
- the in-memory channel reads it against a call-index clock (one fetch ==
  one time unit) via :class:`repro.faults.injector.FaultInjector`.

Everything is derived from explicit windows plus one seed, so two runs of
the same schedule inject byte-identical faults -- chaos results are
reproducible and an *empty* schedule is guaranteed to change nothing.

Fault classes (tentpole of the robustness issue):

- :class:`CrashWindow`: the storage node is down (crash .. restart);
- :class:`Brownout`: the link's bandwidth collapses and/or RTT rises;
- :class:`CpuDrift`: the storage node's CPUs slow down (noisy neighbour);
- payload corruption: a seeded per-message coin flips bytes on the wire.
"""

import dataclasses
import math
from typing import Optional, Tuple

from repro.utils.floats import is_exact_zero

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: full-avalanche 64-bit hash.

    A CRC is too linear here -- nearby seeds XOR every draw with the same
    constant, so two seeds can agree on *every* corruption decision.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def fault_draw(seed: int, index: int, salt: int = 0) -> float:
    """Deterministic uniform draw in [0, 1) for (seed, index, salt)."""
    return _mix64(_mix64(seed ^ (salt << 32)) ^ index) / 2**64


def _window_check(start: float, end: float, kind: str) -> None:
    if start < 0:
        raise ValueError(f"{kind} start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"{kind} must end after it starts: [{start}, {end})")


@dataclasses.dataclass(frozen=True)
class CrashWindow:
    """The storage node is unreachable during [start, end).

    ``end=math.inf`` models a crash with no restart (permanent outage).
    """

    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        _window_check(self.start, self.end, "crash window")

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclasses.dataclass(frozen=True)
class Brownout:
    """Link degradation during [start, end).

    bandwidth_factor: remaining fraction of the nominal bandwidth (0 < f <= 1).
    extra_rtt_s: additional round-trip latency while the window covers t.
    """

    start: float
    end: float
    bandwidth_factor: float = 0.1
    extra_rtt_s: float = 0.0

    def __post_init__(self) -> None:
        _window_check(self.start, self.end, "brownout")
        if not 0 < self.bandwidth_factor <= 1:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if self.extra_rtt_s < 0:
            raise ValueError(f"extra_rtt_s must be >= 0, got {self.extra_rtt_s}")

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclasses.dataclass(frozen=True)
class CpuDrift:
    """Storage-node CPU slowdown during [start, end); factor > 1 is slower."""

    start: float
    end: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        _window_check(self.start, self.end, "cpu drift")
        if self.factor < 1.0:
            raise ValueError(f"drift factor must be >= 1, got {self.factor}")

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """Every fault the run will inject, on one deterministic time axis."""

    crashes: Tuple[CrashWindow, ...] = ()
    brownouts: Tuple[Brownout, ...] = ()
    cpu_drifts: Tuple[CpuDrift, ...] = ()
    #: Probability that any given wire message has its payload corrupted.
    corruption_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.corruption_rate <= 1.0:
            raise ValueError(
                f"corruption_rate must be in [0, 1], got {self.corruption_rate}"
            )

    # -- builders -----------------------------------------------------------

    def with_crash(self, start: float, duration: float = math.inf) -> "FaultSchedule":
        end = math.inf if math.isinf(duration) else start + duration
        return dataclasses.replace(
            self, crashes=self.crashes + (CrashWindow(start, end),)
        )

    def with_brownout(
        self,
        start: float,
        duration: float,
        bandwidth_factor: float = 0.1,
        extra_rtt_s: float = 0.0,
    ) -> "FaultSchedule":
        window = Brownout(start, start + duration, bandwidth_factor, extra_rtt_s)
        return dataclasses.replace(self, brownouts=self.brownouts + (window,))

    def with_cpu_drift(
        self, start: float, duration: float, factor: float = 2.0
    ) -> "FaultSchedule":
        window = CpuDrift(start, start + duration, factor)
        return dataclasses.replace(self, cpu_drifts=self.cpu_drifts + (window,))

    def with_corruption(self, rate: float) -> "FaultSchedule":
        return dataclasses.replace(self, corruption_rate=rate)

    # -- queries ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return (
            not self.crashes
            and not self.brownouts
            and not self.cpu_drifts
            and is_exact_zero(self.corruption_rate)
        )

    def storage_down(self, t: float) -> bool:
        return any(w.covers(t) for w in self.crashes)

    def restart_time(self, t: float) -> Optional[float]:
        """When the storage node covering ``t`` comes back (None if up)."""
        ends = [w.end for w in self.crashes if w.covers(t)]
        return max(ends) if ends else None

    def next_crash_start(self, t: float) -> Optional[float]:
        """The first crash boundary at or after ``t`` (None if no more)."""
        starts = [w.start for w in self.crashes if w.start >= t]
        return min(starts) if starts else None

    def bandwidth_factor(self, t: float) -> float:
        """Remaining link bandwidth fraction at ``t`` (worst covering window)."""
        factors = [w.bandwidth_factor for w in self.brownouts if w.covers(t)]
        return min(factors) if factors else 1.0

    def extra_rtt_s(self, t: float) -> float:
        extras = [w.extra_rtt_s for w in self.brownouts if w.covers(t)]
        return max(extras) if extras else 0.0

    def storage_cpu_factor(self, t: float) -> float:
        factors = [w.factor for w in self.cpu_drifts if w.covers(t)]
        return max(factors) if factors else 1.0

    def corrupts(self, message_index: int) -> bool:
        """Seeded per-message corruption coin (stable across runs)."""
        if self.corruption_rate <= 0.0:
            return False
        if message_index < 0:
            raise ValueError(f"message_index must be >= 0, got {message_index}")
        return fault_draw(self.seed, message_index) < self.corruption_rate


@dataclasses.dataclass
class FaultReport:
    """What the fault layer observed while an epoch (or loader run) survived.

    Recovery latency is measured from the first failed offload to the first
    *successful* offloaded fetch afterwards -- the paper-relevant number:
    how long the job ran in degraded No-Off mode.
    """

    demoted_samples: int = 0
    crash_interrupts: int = 0
    corrupted_payloads: int = 0
    corrupt_retries: int = 0
    brownout_chunks: int = 0
    offload_attempts: int = 0
    offload_failures: int = 0
    first_failure_s: Optional[float] = None
    recovered_at_s: Optional[float] = None

    def note_failure(self, now: float) -> None:
        self.offload_failures += 1
        if self.first_failure_s is None:
            self.first_failure_s = now
        # A later failure re-opens the outage until the next success.
        if self.recovered_at_s is not None and now > self.recovered_at_s:
            pass  # keep the *first* recovery; chaos reports one latency

    def note_success(self, now: float) -> None:
        if self.first_failure_s is not None and self.recovered_at_s is None:
            self.recovered_at_s = now

    @property
    def recovery_latency_s(self) -> Optional[float]:
        if self.first_failure_s is None or self.recovered_at_s is None:
            return None
        return self.recovered_at_s - self.first_failure_s

    @property
    def saw_faults(self) -> bool:
        return (
            self.demoted_samples > 0
            or self.corrupted_payloads > 0
            or self.brownout_chunks > 0
            or self.crash_interrupts > 0
        )
