"""Batch twin of ``Pipeline.simulate`` for record building.

``simulate_batch`` pushes every sample in a batch through the pipeline's
size algebra and cost model with NumPy array arithmetic, drawing random
augmentation parameters from :class:`repro.parallel.pcg.LaneGenerators`
-- the vectorized bit-exact emulation of ``op_rng``.  The resulting
stage-size and op-cost matrices (and the :class:`SampleRecord` objects
``build_records_vectorized`` assembles from them) are **bit-identical**
to what the sequential ``build_record`` loop produces, floating point
included.  That contract is what lets every consumer (profilers, the
decision engine, the harnesses) switch freely between the two paths.

Bit-identity fine print, mirrored from the sequential code:

- ``RandomResizedCrop`` computes its aspect ratio with ``math.exp``,
  which differs from ``np.exp`` in the last ulp for ~5% of inputs in the
  crop's log-ratio range -- so the batch handler calls ``math.exp`` per
  lane.  ``np.sqrt``/``np.rint`` match ``math.sqrt``/``round`` exactly
  (IEEE-754 correct rounding and half-even ties) and stay vectorized.
- Cost expressions replicate ``OpCost.seconds`` term by term in the
  same association order: ``((fixed + a*in) + b*out) * 1e-9`` scaled by
  ``cpu_speed_factor`` as a separate multiply.
- Lanes that leave the crop's rejection loop early stop consuming
  draws, exactly like the sequential early ``return``; the center-crop
  fallback consumes none.

Ops without a registered batch handler fall back to a per-lane loop
using the real ``op_rng``/``draw_params``/``simulate`` path, so exotic
pipelines stay correct (just less accelerated).  Batches whose RNG key
components exceed 32 bits fall back to the sequential reference
entirely (``supports_batch`` tells callers in advance).
"""

import dataclasses
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.parallel.pcg import LaneGenerators, components_supported
from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.ops import (
    Decode,
    Normalize,
    Op,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
)
from repro.preprocessing.payload import PayloadKind, StageMeta
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord
from repro.utils.rng import op_rng


@dataclasses.dataclass
class BatchMeta:
    """Array-of-lanes form of :class:`StageMeta`.

    All arrays are int64 with one entry per sample lane; ``kind`` is
    shared by the whole batch (every op has a fixed output kind).
    """

    kind: PayloadKind
    nbytes: np.ndarray
    height: np.ndarray
    width: np.ndarray
    channels: np.ndarray

    @classmethod
    def from_metas(cls, metas: Sequence[StageMeta]) -> "BatchMeta":
        if not metas:
            raise ValueError("cannot build a BatchMeta from zero metas")
        kind = metas[0].kind
        if any(meta.kind is not kind for meta in metas):
            raise ValueError("batch mixes payload kinds")
        return cls(
            kind=kind,
            nbytes=np.array([meta.nbytes for meta in metas], dtype=np.int64),
            height=np.array([meta.height for meta in metas], dtype=np.int64),
            width=np.array([meta.width for meta in metas], dtype=np.int64),
            channels=np.array([meta.channels for meta in metas], dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.nbytes.shape[0])

    def lane(self, index: int) -> StageMeta:
        """The single-sample :class:`StageMeta` for one lane."""
        return StageMeta(
            kind=self.kind,
            nbytes=int(self.nbytes[index]),
            height=int(self.height[index]),
            width=int(self.width[index]),
            channels=int(self.channels[index]),
        )


#: A batch handler returns (out_meta, input_pixels, output_pixels).
BatchResult = Tuple[BatchMeta, np.ndarray, np.ndarray]
BatchHandler = Callable[[Op, BatchMeta, Optional[LaneGenerators]], BatchResult]


def _image_meta(height: np.ndarray, width: np.ndarray, channels: np.ndarray) -> BatchMeta:
    return BatchMeta(
        kind=PayloadKind.IMAGE_U8,
        nbytes=height * width * channels,
        height=height,
        width=width,
        channels=channels,
    )


def _decode_batch(
    op: Op, meta: BatchMeta, lanes: Optional[LaneGenerators]
) -> BatchResult:
    channels = np.full(len(meta), 3, dtype=np.int64)
    out = _image_meta(meta.height, meta.width, channels)
    return out, np.zeros(len(meta), dtype=np.int64), out.height * out.width


def _crop_batch(
    op: Op, meta: BatchMeta, lanes: Optional[LaneGenerators]
) -> BatchResult:
    assert isinstance(op, RandomResizedCrop) and lanes is not None
    n = len(meta)
    height = meta.height
    width = meta.width
    area = height * width
    log_ratio = (math.log(op.ratio[0]), math.log(op.ratio[1]))

    crop_h = np.zeros(n, dtype=np.int64)
    crop_w = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    for _ in range(10):
        idx = np.flatnonzero(active)
        if not idx.shape[0]:
            break
        target_area = area[idx] * lanes.uniform(op.scale[0], op.scale[1], idx)
        # math.exp, not np.exp: the two differ in the last ulp for ~5% of
        # inputs here, and the sequential path uses math.exp.
        aspect = np.array(
            [math.exp(value) for value in lanes.uniform(log_ratio[0], log_ratio[1], idx).tolist()],
            dtype=np.float64,
        )
        cand_w = np.rint(np.sqrt(target_area * aspect)).astype(np.int64)
        cand_h = np.rint(np.sqrt(target_area / aspect)).astype(np.int64)
        accepted = (cand_w > 0) & (cand_w <= width[idx]) & (cand_h > 0) & (cand_h <= height[idx])
        hit = idx[accepted]
        crop_w[hit] = cand_w[accepted]
        crop_h[hit] = cand_h[accepted]
        active[hit] = False
        # The sequential path draws top/left offsets here; they do not
        # affect sizes or costs and each op owns its own generator, so the
        # batch path can skip them without perturbing any later draw.

    # Center-crop fallback for lanes that exhausted their attempts.
    idx = np.flatnonzero(active)
    if idx.shape[0]:
        f_height = height[idx]
        f_width = width[idx]
        in_ratio = f_width / f_height
        f_crop_w = f_width.copy()
        f_crop_h = f_height.copy()
        narrow = in_ratio < op.ratio[0]
        f_crop_h[narrow] = np.minimum(
            f_height[narrow], np.rint(f_width[narrow] / op.ratio[0]).astype(np.int64)
        )
        wide = in_ratio > op.ratio[1]
        f_crop_w[wide] = np.minimum(
            f_width[wide], np.rint(f_height[wide] * op.ratio[1]).astype(np.int64)
        )
        crop_w[idx] = f_crop_w
        crop_h[idx] = f_crop_h

    size = np.full(n, op.size, dtype=np.int64)
    out = _image_meta(size, size, np.full(n, 3, dtype=np.int64))
    return out, crop_h * crop_w, out.height * out.width


def _flip_batch(
    op: Op, meta: BatchMeta, lanes: Optional[LaneGenerators]
) -> BatchResult:
    assert isinstance(op, RandomHorizontalFlip) and lanes is not None
    n = len(meta)
    flip = lanes.random(np.arange(n)) < op.p
    out = _image_meta(meta.height, meta.width, meta.channels)
    out_px = np.where(flip, out.height * out.width, 0)
    return out, np.zeros(n, dtype=np.int64), out_px


def _to_tensor_batch(
    op: Op, meta: BatchMeta, lanes: Optional[LaneGenerators]
) -> BatchResult:
    pixels = meta.height * meta.width
    out = BatchMeta(
        kind=PayloadKind.TENSOR_F32,
        nbytes=meta.height * meta.width * meta.channels * 4,
        height=meta.height,
        width=meta.width,
        channels=meta.channels,
    )
    return out, pixels, pixels


def _normalize_batch(
    op: Op, meta: BatchMeta, lanes: Optional[LaneGenerators]
) -> BatchResult:
    pixels = meta.height * meta.width
    out = BatchMeta(
        kind=PayloadKind.TENSOR_F32,
        nbytes=meta.height * meta.width * meta.channels * 4,
        height=meta.height,
        width=meta.width,
        channels=meta.channels,
    )
    return out, pixels, pixels


#: Registered batch handlers, keyed on the exact op class.  Handlers for
#: the deterministic ops take no generators (the sequential path derives a
#: generator it never draws from; creating none is observationally equal
#: because every op's generator is independent).
BATCH_HANDLERS: Dict[Type[Op], Tuple[BatchHandler, bool]] = {
    Decode: (_decode_batch, False),
    RandomResizedCrop: (_crop_batch, True),
    RandomHorizontalFlip: (_flip_batch, True),
    ToTensor: (_to_tensor_batch, False),
    Normalize: (_normalize_batch, False),
}


def _fallback_lanewise(
    op: Op,
    op_index: int,
    meta: BatchMeta,
    sample_ids: np.ndarray,
    seed: int,
    epoch: int,
) -> BatchResult:
    """Reference per-lane path for ops without a batch handler."""
    n = len(meta)
    nbytes = np.empty(n, dtype=np.int64)
    height = np.empty(n, dtype=np.int64)
    width = np.empty(n, dtype=np.int64)
    channels = np.empty(n, dtype=np.int64)
    in_px = np.empty(n, dtype=np.int64)
    out_px = np.empty(n, dtype=np.int64)
    out_kind: Optional[PayloadKind] = None
    for lane in range(n):
        lane_meta = meta.lane(lane)
        rng = op_rng(seed, epoch, int(sample_ids[lane]), op_index)
        params = op.draw_params(rng, lane_meta)
        out_meta = op.simulate(lane_meta, params)
        pixels = op.work_pixels(lane_meta, out_meta, params)
        nbytes[lane] = out_meta.nbytes
        height[lane] = out_meta.height
        width[lane] = out_meta.width
        channels[lane] = out_meta.channels
        in_px[lane], out_px[lane] = pixels
        out_kind = out_meta.kind
    assert out_kind is not None
    out = BatchMeta(kind=out_kind, nbytes=nbytes, height=height, width=width, channels=channels)
    return out, in_px, out_px


def supports_batch(pipeline: Pipeline, *key_components: int) -> bool:
    """Whether the fully-vectorized path covers this pipeline and key.

    False means ``build_records_vectorized`` will still be *correct* but
    may run per-lane fallbacks (unregistered ops) or delegate to the
    sequential reference (oversized key components).
    """
    return components_supported(*key_components) and all(
        type(op) in BATCH_HANDLERS for op in pipeline.ops
    )


def simulate_batch(
    pipeline: Pipeline,
    raw_metas: Sequence[StageMeta],
    sample_ids: Sequence[int],
    *,
    seed: int,
    epoch: int = 0,
    cost_model: Optional[CostModel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stage sizes and op costs for a whole batch.

    Returns ``(sizes, costs)`` -- int64 ``(n, n_ops + 1)`` and float64
    ``(n, n_ops)`` matrices whose rows equal the sequential
    ``build_record`` outputs for the same keys, bit for bit.
    """
    ids = np.asarray(sample_ids, dtype=np.int64)
    if ids.shape[0] != len(raw_metas):
        raise ValueError(f"{len(raw_metas)} metas for {ids.shape[0]} sample ids")
    model = cost_model if cost_model is not None else pipeline.cost_model
    n = ids.shape[0]
    n_ops = len(pipeline.ops)
    sizes = np.empty((n, n_ops + 1), dtype=np.int64)
    costs = np.empty((n, n_ops), dtype=np.float64)
    if not n:
        return sizes, costs

    meta = BatchMeta.from_metas(raw_metas)
    sizes[:, 0] = meta.nbytes
    batched_keys = components_supported(seed, epoch, int(ids.max()))
    for index, op in enumerate(pipeline.ops):
        entry = BATCH_HANDLERS.get(type(op))
        if entry is None or not batched_keys:
            meta, in_px, out_px = _fallback_lanewise(op, index, meta, ids, seed, epoch)
        else:
            handler, needs_rng = entry
            lanes = (
                LaneGenerators.for_op(seed, epoch, ids, index) if needs_rng else None
            )
            meta, in_px, out_px = handler(op, meta, lanes)
        sizes[:, index + 1] = meta.nbytes
        op_cost = model.cost_for(op.name)
        # Term-by-term twin of OpCost.seconds + CostModel.op_seconds.
        total_ns = op_cost.fixed_ns + op_cost.ns_per_input_pixel * in_px
        total_ns = total_ns + op_cost.ns_per_output_pixel * out_px
        costs[:, index] = (total_ns * 1e-9) * model.cpu_speed_factor
    return sizes, costs


def build_records_vectorized(
    pipeline: Pipeline,
    raw_metas: Sequence[StageMeta],
    sample_ids: Sequence[int],
    *,
    seed: int,
    epoch: int = 0,
    cost_model: Optional[CostModel] = None,
) -> List[SampleRecord]:
    """Vectorized twin of a ``build_record`` loop over ``sample_ids``."""
    sizes, costs = simulate_batch(
        pipeline, raw_metas, sample_ids, seed=seed, epoch=epoch, cost_model=cost_model
    )
    size_rows = sizes.tolist()
    cost_rows = costs.tolist()
    return [
        SampleRecord(
            sample_id=int(sample_id),
            stage_sizes=tuple(size_row),
            op_costs=tuple(cost_row),
        )
        for sample_id, size_row, cost_row in zip(sample_ids, size_rows, cost_rows)
    ]


def batch_total_costs(costs: np.ndarray) -> List[float]:
    """Per-sample pipeline cost with sequential-identical summation.

    ``PipelineRun.total_cost_s`` folds stage costs left to right with
    Python floats; NumPy's pairwise ``sum`` would round differently, so
    accumulate column by column instead and hand back Python floats.
    """
    if not costs.shape[0]:
        return []
    total = costs[:, 0].copy()
    for column in range(1, costs.shape[1]):
        total = total + costs[:, column]
    return total.tolist()
