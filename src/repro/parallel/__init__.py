"""Deterministic parallel + vectorized execution for profiling/planning.

The profiling hot path (``build_record`` over every sample) and the
planning hot path (``DecisionEngine.plan`` re-summing costs) dominate
every figure and benchmark run.  This package accelerates both without
changing a single output bit:

- :mod:`repro.parallel.pcg` -- vectorized bit-exact emulation of the
  ``op_rng`` generator derivation and draw paths.
- :mod:`repro.parallel.vectorized` -- batch twin of
  ``Pipeline.simulate`` producing identical :class:`SampleRecord`\\ s.
- :mod:`repro.parallel.sharded` -- worker-pool sharding with an
  order-independent merge keyed by ``sample_id``.
- :mod:`repro.parallel.cache` -- keyed record caching across planning
  passes (pipeline fingerprint x dataset fingerprint x seed x epoch).
- :mod:`repro.parallel.bench` -- the ``make bench`` perf-regression
  harness writing ``BENCH_profiling.json``.

Entry point: :func:`build_records` dispatches on a
:class:`ParallelConfig` (or its string shorthand, e.g. ``"vectorized"``
or ``"sharded:process:4"``).  ``PolicyContext.records(parallel=...)``,
``Sophon(parallel=...)``, and the harness/CLI ``--parallel`` flags all
funnel through it.
"""

import dataclasses
from typing import List, Optional, Sequence, Union

from repro.data.dataset import Dataset
from repro.parallel.cache import (
    RecordCache,
    dataset_fingerprint,
    pipeline_fingerprint,
    record_key,
)
from repro.parallel.sharded import build_records_sharded, shard_bounds
from repro.parallel.vectorized import (
    build_records_vectorized,
    simulate_batch,
    supports_batch,
)
from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord, build_record

_MODES = ("sequential", "vectorized", "sharded")


@dataclasses.dataclass(frozen=True)
class ParallelConfig:
    """How to execute a record-building pass.

    mode: "sequential" (reference loop), "vectorized" (numpy batch), or
        "sharded" (worker pool over sample shards).
    workers: pool size for sharded mode.
    backend: "thread" or "process" pool for sharded mode.
    vectorize_shards: whether sharded workers use the vectorized builder
        for their shard (the default) or the sequential reference.

    Every mode produces bit-identical records; the knobs trade setup
    overhead against throughput on the host at hand.
    """

    mode: str = "vectorized"
    workers: int = 2
    backend: str = "thread"
    vectorize_shards: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {self.backend!r}")

    @classmethod
    def parse(cls, value: "ParallelSpec") -> Optional["ParallelConfig"]:
        """Normalize a user-facing parallel spec.

        Accepts None (-> None, i.e. sequential), a ready config, or a
        string shorthand: ``"sequential"``, ``"vectorized"``,
        ``"sharded"``, ``"sharded:4"``, ``"sharded:process"``,
        ``"sharded:process:4"``.
        """
        if value is None or isinstance(value, cls):
            return value
        if not isinstance(value, str):
            raise TypeError(f"cannot parse parallel spec from {type(value).__name__}")
        parts = value.strip().lower().split(":")
        mode = parts[0]
        if mode in ("sequential", "vectorized"):
            if len(parts) > 1:
                raise ValueError(f"mode {mode!r} takes no options, got {value!r}")
            return cls(mode=mode)
        if mode != "sharded":
            raise ValueError(f"unknown parallel mode {mode!r} (from {value!r})")
        backend = "thread"
        workers = 2
        for part in parts[1:]:
            if part in ("thread", "process"):
                backend = part
            elif part.isdigit() and int(part) >= 1:
                workers = int(part)
            else:
                raise ValueError(f"bad sharded option {part!r} in {value!r}")
        return cls(mode="sharded", workers=workers, backend=backend)


#: Anything the public APIs accept as a parallel spec.
ParallelSpec = Union[None, str, ParallelConfig]


def build_records(
    pipeline: Pipeline,
    dataset: Dataset,
    *,
    seed: int,
    epoch: int = 0,
    cost_model: Optional[CostModel] = None,
    parallel: ParallelSpec = None,
    sample_ids: Optional[Sequence[int]] = None,
) -> List[SampleRecord]:
    """Profile ``dataset`` through ``pipeline`` under a parallel spec.

    With ``parallel=None`` (or "sequential") this is exactly the classic
    per-sample ``build_record`` loop; other modes produce bit-identical
    records faster.
    """
    config = ParallelConfig.parse(parallel)
    ids = list(dataset.sample_ids()) if sample_ids is None else list(sample_ids)
    if config is None or config.mode == "sequential":
        return [
            build_record(
                pipeline,
                dataset.raw_meta(sample_id),
                sample_id,
                seed=seed,
                epoch=epoch,
                cost_model=cost_model,
            )
            for sample_id in ids
        ]
    metas = [dataset.raw_meta(sample_id) for sample_id in ids]
    if config.mode == "vectorized":
        return build_records_vectorized(
            pipeline, metas, ids, seed=seed, epoch=epoch, cost_model=cost_model
        )
    return build_records_sharded(
        pipeline,
        metas,
        ids,
        seed=seed,
        epoch=epoch,
        cost_model=cost_model,
        workers=config.workers,
        backend=config.backend,
        vectorize=config.vectorize_shards,
    )


__all__ = [
    "ParallelConfig",
    "ParallelSpec",
    "RecordCache",
    "build_records",
    "build_records_sharded",
    "build_records_vectorized",
    "dataset_fingerprint",
    "pipeline_fingerprint",
    "record_key",
    "shard_bounds",
    "simulate_batch",
    "supports_batch",
]
