"""Perf-regression harness for the profiling -> planning hot path.

Times record building (sequential vs. vectorized vs. sharded) and
``DecisionEngine.plan`` at several dataset scales and writes the results
to ``BENCH_profiling.json`` with a schema that stays stable across PRs,
so successive runs on the same machine are directly comparable.

Every scale also runs a determinism gate: the vectorized and sharded
record lists must be *equal* to the sequential ones (SampleRecord
equality compares every float exactly), and the plans built from them
must match.  A speed number from a path that diverges is meaningless,
so ``identical: false`` fails the run.

Run it via ``make bench`` or directly::

    PYTHONPATH=src python -m repro.parallel.bench --out BENCH_profiling.json

Wall-clock use is injectable (``timer=time.perf_counter``) and confined
to the measurement loop; everything measured is itself deterministic.
"""

import argparse
import json
import time
import tracemalloc
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.spec import standard_cluster
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.catalog import make_openimages
from repro.parallel import build_records
from repro.preprocessing.pipeline import standard_pipeline
from repro.workloads.models import get_model_profile

Clock = Callable[[], float]

#: Schema tag for ``BENCH_profiling.json``.  Bump only when the layout
#: changes incompatibly; tools reading the file key off this string.
SCHEMA = "sophon-bench-profiling/v1"

#: Default dataset sizes.  The largest carries the headline speedup
#: claim; the smaller ones show how the gap scales.
DEFAULT_SCALES = (250, 1000, 4000)

#: The execution modes every scale is timed under, in report order.
MODES = ("sequential", "vectorized", "sharded:2")


def _best_of(fn: Callable[[], object], repeats: int, timer: Clock) -> float:
    """Minimum wall time of ``repeats`` calls -- the least-noisy estimator."""
    best = float("inf")
    for _ in range(repeats):
        started = timer()
        fn()
        elapsed = timer() - started
        if elapsed < best:
            best = elapsed
    return best


def bench_scale(
    num_samples: int,
    seed: int = 7,
    repeats: int = 3,
    timer: Clock = time.perf_counter,
) -> Dict[str, object]:
    """Benchmark one dataset scale; returns its JSON-ready result dict."""
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    dataset = make_openimages(num_samples=num_samples, seed=seed)
    pipeline = standard_pipeline()

    records_by_mode = {
        mode: build_records(pipeline, dataset, seed=seed, parallel=mode)
        for mode in MODES
    }
    baseline = records_by_mode["sequential"]
    identical = all(records_by_mode[mode] == baseline for mode in MODES)

    build_s = {
        mode: _best_of(
            lambda m=mode: build_records(pipeline, dataset, seed=seed, parallel=m),
            repeats,
            timer,
        )
        for mode in MODES
    }

    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=standard_cluster(storage_cores=48),
        model=get_model_profile("alexnet"),
        seed=seed,
    )
    engine = DecisionEngine(DecisionConfig())
    gpu_time_s = context.epoch_gpu_time_s
    plans = {
        mode: engine.plan(records_by_mode[mode], context.spec, gpu_time_s)
        for mode in MODES
    }
    identical = identical and all(plans[mode] == plans["sequential"] for mode in MODES)
    plan_s = _best_of(
        lambda: engine.plan(baseline, context.spec, gpu_time_s), repeats, timer
    )

    sequential_s = build_s["sequential"]
    return {
        "num_samples": num_samples,
        "seed": seed,
        "repeats": repeats,
        "identical": identical,
        "record_building": {
            "seconds": {mode: build_s[mode] for mode in MODES},
            "speedup_vs_sequential": {
                mode: sequential_s / build_s[mode] if build_s[mode] > 0 else None
                for mode in MODES
            },
        },
        "plan": {"seconds": plan_s, "num_offloaded": plans["sequential"].num_offloaded},
    }


def allocation_stats(num_samples: int, seed: int = 7) -> Dict[str, object]:
    """tracemalloc footprint of one record-building pass under each mode.

    ``peak_bytes`` is the high-water mark of traced allocations;
    ``live_blocks`` counts blocks still held when the pass returns (the
    records themselves plus any per-mode scaffolding that outlives it).
    """
    dataset = make_openimages(num_samples=num_samples, seed=seed)
    pipeline = standard_pipeline()
    out: Dict[str, object] = {"num_samples": num_samples}
    for mode in MODES:
        build_records(pipeline, dataset, seed=seed, parallel=mode)  # warm caches
        tracemalloc.start()
        records = build_records(pipeline, dataset, seed=seed, parallel=mode)
        snapshot = tracemalloc.take_snapshot()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out[mode] = {"peak_bytes": peak, "live_blocks": len(snapshot.traces)}
        del records, snapshot
    return out


def run_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    seed: int = 7,
    repeats: int = 3,
    timer: Clock = time.perf_counter,
) -> Dict[str, object]:
    """Benchmark every scale; returns the full ``BENCH_profiling.json`` dict."""
    if not scales:
        raise ValueError("need at least one scale to benchmark")
    results = [
        bench_scale(n, seed=seed, repeats=repeats, timer=timer)
        for n in sorted(scales)
    ]
    allocation = allocation_stats(sorted(scales)[0], seed=seed)
    largest = results[-1]
    speedups = largest["record_building"]["speedup_vs_sequential"]
    best_parallel = max(
        speedups[mode] or 0.0 for mode in MODES if mode != "sequential"
    )
    return {
        "schema": SCHEMA,
        "modes": list(MODES),
        "scales": results,
        "allocation": allocation,
        "identical": all(r["identical"] for r in results),
        "largest_scale": largest["num_samples"],
        "largest_scale_best_speedup": best_parallel,
    }


def render_summary(report: Dict[str, object]) -> str:
    """A terse human-readable digest of one report."""
    lines = [f"record-building speedups vs sequential ({report['schema']}):"]
    for entry in report["scales"]:
        speedups = entry["record_building"]["speedup_vs_sequential"]
        parts = ", ".join(
            f"{mode} {speedups[mode]:.1f}x"
            for mode in report["modes"]
            if mode != "sequential" and speedups[mode] is not None
        )
        flag = "" if entry["identical"] else "  [NOT IDENTICAL]"
        lines.append(f"  n={entry['num_samples']}: {parts}{flag}")
    alloc = report["allocation"]
    peaks = ", ".join(
        f"{mode} {alloc[mode]['peak_bytes'] / 1024:.0f} KiB"
        for mode in report["modes"]
    )
    lines.append(f"peak allocation at n={alloc['num_samples']}: {peaks}")
    lines.append(
        f"largest scale ({report['largest_scale']} samples): "
        f"{report['largest_scale_best_speedup']:.1f}x best parallel speedup"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time record building and planning; write BENCH_profiling.json."
    )
    parser.add_argument(
        "--scales", type=int, nargs="+", default=list(DEFAULT_SCALES),
        help=f"dataset sizes to benchmark (default {list(DEFAULT_SCALES)})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per measurement; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--out", default="BENCH_profiling.json",
        help="where to write the JSON report (default BENCH_profiling.json)",
    )
    args = parser.parse_args(argv)

    report = run_bench(scales=args.scales, seed=args.seed, repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render_summary(report))
    print(f"report written to {args.out}")
    if not report["identical"]:
        print("FAIL: a parallel path diverged from the sequential records/plan")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
