"""Vectorized, bit-exact emulation of the profiler's RNG derivation.

The sequential profiling path derives one ``np.random.Generator`` per
(seed, epoch, sample, op) via :func:`repro.utils.rng.op_rng`; generator
construction (SeedSequence hashing + PCG64 seeding) dominates record
building.  This module re-implements exactly that derivation -- NumPy's
``SeedSequence`` entropy-mixing hash, PCG64 (XSL-RR 128/64) seeding and
stepping, and the ``Generator`` draw paths the preprocessing ops use
(``random``, ``uniform``, 32-bit-buffered Lemire ``integers``) -- over
whole *batches* of sample lanes at once with uint64 array arithmetic.

Bit-identity with the sequential path is a hard contract, enforced by
``tests/parallel`` and the ``make bench`` determinism gate: every draw a
lane produces equals the draw the corresponding ``op_rng`` generator
would have produced, to the last bit.  The emulation never touches
NumPy's own RNG machinery (and nothing here reads wall time), so the
module stays inside the DET01/DET02 lint envelope.
"""

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF

# SeedSequence mixing constants (numpy/random/bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = 16
_POOL_SIZE = 4

# PCG64 128-bit LCG multiplier (pcg64.h PCG_DEFAULT_MULTIPLIER_128).
_PCG_MULT_HI = np.uint64(2549297995355413924)
_PCG_MULT_LO = np.uint64(4865540595714422341)

#: 2**-53, the double conversion factor Generator.random() uses.
_TO_DOUBLE = 1.0 / 9007199254740992.0


def components_supported(*components: int) -> bool:
    """Whether the lanes can emulate an ``op_rng`` keyed on *components*.

    The batch path handles the common case of 32-bit non-negative key
    components (each coerces to exactly one SeedSequence entropy word).
    Callers fall back to the sequential reference path otherwise.
    """
    return all(0 <= c <= _M32 for c in components)


def _hash_constants(count: int, init: int, mult: int) -> List[Tuple[int, int]]:
    """(xor, multiply) constant pairs for ``count`` sequential hash calls.

    SeedSequence's hash mixes each value with an evolving constant: the
    value is XORed with the constant *before* it advances and multiplied
    by it *after*.  The constant stream is data-independent, so it can be
    precomputed once per batch.
    """
    pairs = []
    const = init
    for _ in range(count):
        advanced = (const * mult) & _M32
        pairs.append((const, advanced))
        const = advanced
    return pairs


def _hashmix(value: np.ndarray, pair: Tuple[int, int]) -> np.ndarray:
    xor_const, mul_const = pair
    value = value ^ np.uint32(xor_const)
    value = value * np.uint32(mul_const)
    return value ^ (value >> np.uint32(_XSHIFT))


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = x * np.uint32(_MIX_MULT_L) - y * np.uint32(_MIX_MULT_R)
    return result ^ (result >> np.uint32(_XSHIFT))


def seed_state_words(
    seed: int, epoch: int, sample_ids: np.ndarray, op_index: int
) -> np.ndarray:
    """``SeedSequence([seed, epoch, id, op]).generate_state(4, uint64)``
    for every id in *sample_ids* at once.

    Returns a ``(4, n)`` uint64 array; column *i* equals what NumPy's
    SeedSequence would generate for lane *i* (asserted bit-for-bit by the
    parallel test suite).
    """
    if not components_supported(seed, epoch, op_index):
        raise ValueError(
            "seed/epoch/op_index must be 32-bit non-negative ints, got "
            f"({seed}, {epoch}, {op_index})"
        )
    ids = np.asarray(sample_ids, dtype=np.uint32)
    n = ids.shape[0]
    entropy = [
        np.full(n, seed, dtype=np.uint32),
        np.full(n, epoch, dtype=np.uint32),
        ids,
        np.full(n, op_index, dtype=np.uint32),
    ]

    # mix_entropy: 4 fill hashes + 4*3 pairwise mixing hashes.
    pairs = _hash_constants(_POOL_SIZE + _POOL_SIZE * (_POOL_SIZE - 1), _INIT_A, _MULT_A)
    pool = [_hashmix(entropy[i], pairs[i]) for i in range(_POOL_SIZE)]
    k = _POOL_SIZE
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], pairs[k]))
                k += 1

    # generate_state(4, uint64) == 8 uint32 words viewed little-endian.
    out_pairs = _hash_constants(2 * _POOL_SIZE, _INIT_B, _MULT_B)
    words32 = [
        _hashmix(pool[i % _POOL_SIZE], out_pairs[i]) for i in range(2 * _POOL_SIZE)
    ]
    words = np.empty((4, n), dtype=np.uint64)
    for w in range(4):
        words[w] = words32[2 * w].astype(np.uint64) | (
            words32[2 * w + 1].astype(np.uint64) << np.uint64(32)
        )
    return words


def _umul64(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Full 64x64 -> 128 multiply as (hi, lo) via 32-bit limbs."""
    a0 = a & np.uint64(_M32)
    a1 = a >> np.uint64(32)
    b0 = b & np.uint64(_M32)
    b1 = b >> np.uint64(32)
    m00 = a0 * b0
    m01 = a0 * b1
    m10 = a1 * b0
    m11 = a1 * b1
    mid = (m00 >> np.uint64(32)) + (m01 & np.uint64(_M32)) + (m10 & np.uint64(_M32))
    lo = (m00 & np.uint64(_M32)) | (mid << np.uint64(32))
    hi = m11 + (m01 >> np.uint64(32)) + (m10 >> np.uint64(32)) + (mid >> np.uint64(32))
    return hi, lo


def _rotr64(x: np.ndarray, r: np.ndarray) -> np.ndarray:
    # (64 - r) & 63 keeps the r == 0 lanes well-defined: x | x == x.
    return (x >> r) | (x << ((np.uint64(64) - r) & np.uint64(63)))


@dataclasses.dataclass
class LaneGenerators:
    """One PCG64 stream per sample lane, advanced with array arithmetic.

    Mirrors ``np.random.Generator(np.random.PCG64(seed_seq))`` exactly,
    including the 32-bit output buffer ``integers`` draws consume (NumPy
    serves bounded ranges below 2**32 from buffered halves of the 64-bit
    stream; the buffer survives interleaved ``random``/``uniform`` calls).
    """

    state_hi: np.ndarray
    state_lo: np.ndarray
    inc_hi: np.ndarray
    inc_lo: np.ndarray
    has_uint32: np.ndarray
    buffered: np.ndarray

    @classmethod
    def for_op(
        cls, seed: int, epoch: int, sample_ids: np.ndarray, op_index: int
    ) -> "LaneGenerators":
        """Lanes equivalent to ``op_rng(seed, epoch, id, op_index)``."""
        words = seed_state_words(seed, epoch, sample_ids, op_index)
        # pcg64_set_seed: state <- words[0:2], seq <- words[2:4];
        # inc = (seq << 1) | 1, then srandom: step, += initstate, step.
        inc_hi = (words[2] << np.uint64(1)) | (words[3] >> np.uint64(63))
        inc_lo = (words[3] << np.uint64(1)) | np.uint64(1)
        n = words.shape[1]
        lanes = cls(
            state_hi=np.zeros(n, dtype=np.uint64),
            state_lo=np.zeros(n, dtype=np.uint64),
            inc_hi=inc_hi,
            inc_lo=inc_lo,
            has_uint32=np.zeros(n, dtype=bool),
            buffered=np.zeros(n, dtype=np.uint64),
        )
        lanes._step_all()
        carry = lanes.state_lo > (lanes.state_lo + words[1])
        lanes.state_lo = lanes.state_lo + words[1]
        lanes.state_hi = lanes.state_hi + words[0] + carry.astype(np.uint64)
        lanes._step_all()
        return lanes

    def __len__(self) -> int:
        return int(self.state_hi.shape[0])

    def _step(self, idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Advance lanes *idx*: state = state * MULT + inc (mod 2**128)."""
        hi = self.state_hi[idx]
        lo = self.state_lo[idx]
        p_hi, p_lo = _umul64(lo, _PCG_MULT_LO)
        p_hi = p_hi + lo * _PCG_MULT_HI + hi * _PCG_MULT_LO
        inc_lo = self.inc_lo[idx]
        new_lo = p_lo + inc_lo
        carry = new_lo < p_lo
        new_hi = p_hi + self.inc_hi[idx] + carry.astype(np.uint64)
        self.state_hi[idx] = new_hi
        self.state_lo[idx] = new_lo
        return new_hi, new_lo

    def _step_all(self) -> None:
        self._step(np.arange(len(self)))

    def next64(self, idx: np.ndarray) -> np.ndarray:
        """The next raw 64-bit output for lanes *idx* (XSL-RR 128/64)."""
        hi, lo = self._step(idx)
        return _rotr64(hi ^ lo, hi >> np.uint64(58))

    def next32(self, idx: np.ndarray) -> np.ndarray:
        """The next buffered 32-bit output for lanes *idx* (as uint64)."""
        out = np.empty(idx.shape[0], dtype=np.uint64)
        use_buf = self.has_uint32[idx]
        buffered_lanes = idx[use_buf]
        out[use_buf] = self.buffered[buffered_lanes]
        self.has_uint32[buffered_lanes] = False
        fresh_lanes = idx[~use_buf]
        if fresh_lanes.shape[0]:
            raw = self.next64(fresh_lanes)
            out[~use_buf] = raw & np.uint64(_M32)
            self.buffered[fresh_lanes] = raw >> np.uint64(32)
            self.has_uint32[fresh_lanes] = True
        return out

    def random(self, idx: np.ndarray) -> np.ndarray:
        """``Generator.random()`` for lanes *idx*: a float64 in [0, 1)."""
        return (self.next64(idx) >> np.uint64(11)).astype(np.float64) * _TO_DOUBLE

    def uniform(self, low: float, high: float, idx: np.ndarray) -> np.ndarray:
        """``Generator.uniform(low, high)`` for lanes *idx*."""
        return low + (high - low) * self.random(idx)

    def integers(self, high: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """``Generator.integers(0, high)`` per lane (high exclusive).

        *high* gives each lane its own exclusive bound (>= 1, <= 2**32);
        lanes with ``high == 1`` return 0 without consuming a draw, as
        NumPy's bounded fill does.  Bias is removed with Lemire rejection
        over the buffered 32-bit stream, matching NumPy draw-for-draw.
        """
        high = np.asarray(high, dtype=np.uint64)
        if high.shape != idx.shape:
            raise ValueError(f"bounds shape {high.shape} != lanes shape {idx.shape}")
        if high.shape[0] and (int(high.min()) < 1 or int(high.max()) > _M32 + 1):
            raise ValueError("integers() bounds must be in [1, 2**32]")
        result = np.zeros(idx.shape[0], dtype=np.int64)
        rng = high - np.uint64(1)  # inclusive range, NumPy's internal form
        drawing = rng > 0
        draw_idx = idx[drawing]
        if not draw_idx.shape[0]:
            return result
        rng = rng[drawing]
        rng_excl = rng + np.uint64(1)
        threshold = (np.uint64(_M32) - rng) % rng_excl
        m = self.next32(draw_idx) * rng_excl
        rejected = (m & np.uint64(_M32)) < threshold
        while np.any(rejected):
            m[rejected] = self.next32(draw_idx[rejected]) * rng_excl[rejected]
            rejected = (m & np.uint64(_M32)) < threshold
        result[drawing] = (m >> np.uint64(32)).astype(np.int64)
        return result


def reference_state(
    seed: int, epoch: int, sample_id: int, op_index: int
) -> Tuple[int, int]:
    """The (state, inc) a real ``op_rng`` PCG64 would start from.

    A pure-Python single-sample twin of :meth:`LaneGenerators.for_op`,
    used by tests to triangulate the batch path against NumPy itself.
    """
    words = seed_state_words(seed, epoch, np.array([sample_id]), op_index)[:, 0]
    mask = (1 << 128) - 1
    mult = (int(_PCG_MULT_HI) << 64) | int(_PCG_MULT_LO)
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & mask
    state = inc & mask  # 0 * mult + inc
    state = (state + initstate) & mask
    state = (state * mult + inc) & mask
    return state, inc


def lane_subset(lanes: LaneGenerators, keep: Sequence[int]) -> Optional[LaneGenerators]:
    """A view-free copy of *lanes* restricted to positions *keep*."""
    keep_arr = np.asarray(keep, dtype=np.int64)
    if not keep_arr.shape[0]:
        return None
    return LaneGenerators(
        state_hi=lanes.state_hi[keep_arr].copy(),
        state_lo=lanes.state_lo[keep_arr].copy(),
        inc_hi=lanes.inc_hi[keep_arr].copy(),
        inc_lo=lanes.inc_lo[keep_arr].copy(),
        has_uint32=lanes.has_uint32[keep_arr].copy(),
        buffered=lanes.buffered[keep_arr].copy(),
    )
