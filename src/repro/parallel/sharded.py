"""Sharded record building over a thread or process pool.

Samples are split into contiguous shards, each shard is profiled by one
worker (vectorized by default, sequential reference on request), and the
per-shard results are merged keyed by ``sample_id`` -- so the merged
output is independent of worker scheduling order and identical to a
single sequential pass.  Determinism is therefore structural: every
(seed, epoch, sample, op) draw is keyed, never shared, so no worker
count or interleaving can change a single record.

Process workers receive ``(pipeline, metas, ids, ...)`` tuples, not the
dataset object, keeping the picklable surface small and dataset-agnostic.
"""

import concurrent.futures
from typing import List, Optional, Sequence, Tuple

from repro.parallel.vectorized import build_records_vectorized
from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.payload import StageMeta
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord, build_record

_BACKENDS = ("thread", "process")


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` bounds splitting ``total`` items.

    Sizes differ by at most one; empty shards are dropped.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(total, 1))
    base, extra = divmod(total, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds


def _build_shard(
    pipeline: Pipeline,
    metas: Sequence[StageMeta],
    sample_ids: Sequence[int],
    seed: int,
    epoch: int,
    cost_model: Optional[CostModel],
    vectorize: bool,
) -> List[SampleRecord]:
    """One worker's share.  Module-level so process pools can pickle it."""
    if vectorize:
        return build_records_vectorized(
            pipeline, metas, sample_ids, seed=seed, epoch=epoch, cost_model=cost_model
        )
    return [
        build_record(pipeline, meta, sample_id, seed=seed, epoch=epoch, cost_model=cost_model)
        for meta, sample_id in zip(metas, sample_ids)
    ]


def build_records_sharded(
    pipeline: Pipeline,
    raw_metas: Sequence[StageMeta],
    sample_ids: Sequence[int],
    *,
    seed: int,
    epoch: int = 0,
    cost_model: Optional[CostModel] = None,
    workers: int = 2,
    backend: str = "thread",
    vectorize: bool = True,
) -> List[SampleRecord]:
    """Build records for ``sample_ids`` across a worker pool.

    The merge is keyed by ``sample_id`` and the result ordered to match
    the input, so shard completion order cannot influence the output.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ids = list(sample_ids)
    if len(raw_metas) != len(ids):
        raise ValueError(f"{len(raw_metas)} metas for {len(ids)} sample ids")
    bounds = shard_bounds(len(ids), workers)
    if len(bounds) <= 1:
        return _build_shard(pipeline, raw_metas, ids, seed, epoch, cost_model, vectorize)

    pool_cls = (
        concurrent.futures.ThreadPoolExecutor
        if backend == "thread"
        else concurrent.futures.ProcessPoolExecutor
    )
    by_id = {}
    with pool_cls(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _build_shard,
                pipeline,
                raw_metas[start:stop],
                ids[start:stop],
                seed,
                epoch,
                cost_model,
                vectorize,
            )
            for start, stop in bounds
        ]
        for future in concurrent.futures.as_completed(futures):
            for record in future.result():
                by_id[record.sample_id] = record
    if len(by_id) != len(ids):
        raise RuntimeError(
            f"sharded merge produced {len(by_id)} records for {len(ids)} samples "
            "(duplicate or missing sample ids)"
        )
    return [by_id[sample_id] for sample_id in ids]
