"""Keyed caching of profiled records across planning passes.

Re-planning sweeps (fig3's five policies, fig4's core sweep, adaptive
re-planning) all rebuild the same records from the same (dataset,
pipeline, seed, epoch) key.  A :class:`RecordCache` makes that rebuild a
lookup: keys combine a *pipeline fingerprint* (op classes + op
configuration + cost-model constants), a *dataset fingerprint*, the RNG
seed, and the epoch.  Records are immutable, so cached lists are shared
freely across policies and threads.

Fingerprints hash configuration, not object identity: two independently
constructed but identically configured pipelines produce the same
fingerprint (covered by tests).  Dataset fingerprints combine type,
name, and length with a deterministic probe of a few raw metas rather
than a full scan -- synthetic datasets materialize samples lazily and a
full scan would defeat the point of caching.
"""

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord

#: How many samples the dataset fingerprint probes (spread evenly).
_PROBE_SAMPLES = 8

CacheKey = Tuple[str, str, int, int]


def _stable(value: object) -> str:
    """A deterministic, content-based string form of a config value."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, np.ndarray):
        return f"ndarray({value.dtype},{value.shape},{value.tobytes().hex()})"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_stable(item) for item in value)
        return f"[{inner}]"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_stable(key)}:{_stable(value[key])}" for key in sorted(value, key=repr)
        )
        return f"{{{inner}}}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return f"{type(value).__qualname__}({_stable(fields)})"
    if hasattr(value, "__dict__"):
        return f"{type(value).__qualname__}({_stable(vars(value))})"
    return f"{type(value).__qualname__}:{value!r}"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:32]


def pipeline_fingerprint(pipeline: Pipeline, cost_model: Optional[CostModel] = None) -> str:
    """Content fingerprint of a pipeline + effective cost model."""
    model = cost_model if cost_model is not None else pipeline.cost_model
    parts = [
        _stable([f"{type(op).__qualname__}:{_stable(vars(op))}" for op in pipeline.ops]),
        _stable({name: model.op_costs[name] for name in sorted(model.op_costs)}),
        repr(model.cpu_speed_factor),
    ]
    return _digest("|".join(parts))


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content fingerprint of a dataset (type, name, length, meta probe)."""
    n = len(dataset)
    if n:
        stride = max(1, n // _PROBE_SAMPLES)
        probe_ids = list(range(0, n, stride))[:_PROBE_SAMPLES]
        if probe_ids[-1] != n - 1:
            probe_ids.append(n - 1)
    else:
        probe_ids = []
    probes = []
    for sample_id in probe_ids:
        meta = dataset.raw_meta(sample_id)
        probes.append((sample_id, meta.nbytes, meta.height, meta.width, meta.channels))
    return _digest(f"{type(dataset).__qualname__}|{dataset.name}|{n}|{probes!r}")


def record_key(
    dataset: Dataset,
    pipeline: Pipeline,
    seed: int,
    epoch: int,
    cost_model: Optional[CostModel] = None,
) -> CacheKey:
    """The cache key for one profiling pass.

    Records are identical whichever execution mode built them (that is
    the parallel engine's determinism contract), so the key deliberately
    excludes the mode.
    """
    return (
        dataset_fingerprint(dataset),
        pipeline_fingerprint(pipeline, cost_model),
        seed,
        epoch,
    )


class RecordCache:
    """A bounded, thread-safe LRU cache of profiled record lists."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, List[SampleRecord]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[List[SampleRecord]]:
        with self._lock:
            records = self._entries.get(key)
            if records is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return records

    def put(self, key: CacheKey, records: List[SampleRecord]) -> None:
        with self._lock:
            self._entries[key] = records
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_build(
        self, key: CacheKey, builder: Callable[[], List[SampleRecord]]
    ) -> List[SampleRecord]:
        """The cached records for ``key``, building (and storing) on miss."""
        records = self.get(key)
        if records is None:
            records = builder()
            self.put(key, records)
        return records

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
