"""Multi-seed replication: mean/spread of any scalar experiment metric."""

import dataclasses
import math
from typing import Callable, List, Sequence


@dataclasses.dataclass(frozen=True)
class Replication:
    """Summary of one metric across seeds."""

    values: tuple
    seeds: tuple

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def spread(self) -> float:
        """(max - min) / mean; 0 for perfectly stable metrics."""
        if self.mean == 0:
            return 0.0
        return (max(self.values) - min(self.values)) / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={len(self.values)})"


def replicate(
    metric_fn: Callable[[int], float], seeds: Sequence[int]
) -> Replication:
    """Evaluate ``metric_fn(seed)`` for every seed and summarize.

    metric_fn must be a pure function of the seed (dataset synthesis,
    augmentation draws, and sampler order all key off it).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values: List[float] = [float(metric_fn(seed)) for seed in seeds]
    return Replication(values=tuple(values), seeds=tuple(seeds))
