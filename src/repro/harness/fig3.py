"""Figure 3: epoch time and data traffic per policy, ample storage CPUs."""

import dataclasses
from typing import Dict, List, Optional

from repro.cluster.spec import ClusterSpec, standard_cluster
from repro.data.dataset import Dataset
from repro.harness.runner import ExperimentResult, compare_policies
from repro.parallel import ParallelSpec
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds


@dataclasses.dataclass
class PolicyComparison:
    """Figure-3 style comparison on one dataset."""

    dataset_name: str
    results: List[ExperimentResult]

    def by_policy(self) -> Dict[str, ExperimentResult]:
        return {r.policy_name: r for r in self.results}

    def traffic_ratio(self, policy: str, baseline: str = "no-off") -> float:
        """traffic(policy) / traffic(baseline); <1 means policy reduced it."""
        table = self.by_policy()
        return table[policy].traffic_bytes / table[baseline].traffic_bytes

    def time_ratio(self, policy: str, baseline: str = "no-off") -> float:
        table = self.by_policy()
        return table[policy].epoch_time_s / table[baseline].epoch_time_s

    def render(self) -> str:
        rows = []
        base = self.by_policy().get("no-off")
        for result in self.results:
            rows.append(
                (
                    result.policy_name,
                    format_seconds(result.epoch_time_s),
                    format_bytes(result.traffic_bytes),
                    f"{result.traffic_bytes / base.traffic_bytes:.2f}x" if base else "-",
                    f"{result.gpu_utilization:.0%}",
                    result.plan.num_offloaded,
                )
            )
        title = f"[{self.dataset_name}] epoch time / traffic per policy"
        table = render_table(
            ("Policy", "Epoch", "Traffic", "vs No-Off", "GPU util", "Offloaded"),
            rows,
        )
        return f"{title}\n{table}"


def ample_cpu_comparison(
    dataset: Dataset,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    parallel: ParallelSpec = None,
) -> PolicyComparison:
    """Run all five policies with ample (48) storage cores (section 4.1)."""
    if cluster is None:
        cluster = standard_cluster(storage_cores=48)
    results = compare_policies(dataset, cluster, seed=seed, parallel=parallel)
    return PolicyComparison(dataset_name=dataset.name, results=results)
