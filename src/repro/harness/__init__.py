"""Experiment harness: run policies, regenerate every table and figure.

Each ``figN_*`` module produces the data behind one of the paper's
exhibits and renders it as a text table; the benchmark suite under
``benchmarks/`` calls these and asserts the paper's qualitative shape
(who wins, by what factor, where crossovers fall).
"""

from repro.harness.runner import (
    DEFAULT_POLICY_SET,
    ExperimentResult,
    compare_policies,
    run_experiment,
)
from repro.harness.table1 import capability_matrix, render_capability_matrix
from repro.harness.fig1 import (
    minstage_fractions,
    gpu_utilization_by_model,
    size_trace,
)
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.fig4 import limited_cpu_sweep
from repro.harness.chaos import (
    ChaosReport,
    ChaosRun,
    ChaosScenario,
    default_scenarios,
    run_chaos,
)

__all__ = [
    "ChaosReport",
    "ChaosRun",
    "ChaosScenario",
    "DEFAULT_POLICY_SET",
    "ExperimentResult",
    "ample_cpu_comparison",
    "capability_matrix",
    "compare_policies",
    "default_scenarios",
    "gpu_utilization_by_model",
    "limited_cpu_sweep",
    "minstage_fractions",
    "render_capability_matrix",
    "run_chaos",
    "run_experiment",
    "size_trace",
]
