"""Generate a full markdown results report in one call.

Runs every exhibit at the requested scale and emits a self-contained
markdown document -- the machine-generated sibling of EXPERIMENTS.md,
with *your* machine's numbers.  Used by ``sophon-repro report``.
"""

from typing import List, Optional

from repro.cluster.spec import standard_cluster
from repro.core.efficiency import efficiency_distribution
from repro.core.profiler import StageTwoProfiler
from repro.data.catalog import make_imagenet, make_openimages
from repro.harness.fig1 import (
    benefit_fraction,
    gpu_utilization_by_model,
    minstage_fractions,
    representative_samples,
    size_trace,
)
from repro.harness.fig3 import ample_cpu_comparison
from repro.harness.fig4 import limited_cpu_sweep
from repro.harness.table1 import render_capability_matrix
from repro.preprocessing.pipeline import standard_pipeline


def _code_block(text: str) -> List[str]:
    return ["```", text.rstrip(), "```", ""]


def generate_markdown_report(
    samples: int = 1000,
    seed: int = 7,
    cores: Optional[tuple] = None,
) -> str:
    """Regenerate every exhibit and return the report as markdown."""
    if samples < 50:
        raise ValueError(f"need >= 50 samples for stable statistics, got {samples}")
    cores = cores if cores is not None else (0, 1, 2, 3, 4, 5)
    openimages = make_openimages(num_samples=samples, seed=seed)
    imagenet = make_imagenet(num_samples=int(samples * 1.5), seed=seed)
    pipeline = standard_pipeline()

    lines: List[str] = [
        "# SOPHON reproduction report",
        "",
        f"Datasets: {len(openimages)} OpenImages / {len(imagenet)} ImageNet "
        f"samples, seed {seed}.  Times are virtual seconds on the simulated",
        "two-node cluster; see EXPERIMENTS.md for paper-vs-measured context.",
        "",
        "## Table 1 — capability matrix",
        "",
    ]
    lines += _code_block(render_capability_matrix())

    lines += ["## Figure 1a — size through the pipeline", ""]
    sample_a, sample_b = representative_samples(openimages, seed=seed)
    lines += _code_block(
        "Sample A (shrinks mid-pipeline):\n"
        + size_trace(openimages, sample_a, seed=seed).render()
        + "\n\nSample B (smallest raw):\n"
        + size_trace(openimages, sample_b, seed=seed).render()
    )

    lines += ["## Figure 1b — minimum-size stage fractions", ""]
    for dataset in (openimages, imagenet):
        fractions = minstage_fractions(dataset, seed=seed)
        lines.append(
            f"- **{dataset.name}**: {benefit_fraction(fractions):.1%} of samples "
            f"shrink mid-pipeline ({fractions['raw']:.1%} smallest raw)."
        )
    lines.append("")

    lines += ["## Figure 1c — offloading efficiency", ""]
    records = StageTwoProfiler().profile(openimages, pipeline, seed=seed)
    summary = efficiency_distribution(records)
    lines += [
        f"- zero-efficiency fraction: {summary.zero_fraction:.1%}",
        f"- nonzero median: {summary.median_nonzero:.3g} bytes/CPU-second "
        f"(p90 {summary.p90_nonzero:.3g})",
        "",
    ]

    lines += ["## Figure 1d — GPU utilization (V100, 1 Gbps)", ""]
    spec_1d = standard_cluster().with_bandwidth(1000.0)
    for model, utilization in gpu_utilization_by_model(openimages, spec_1d, seed=seed):
        lines.append(f"- {model}: {utilization:.0%}")
    lines.append("")

    for dataset in (openimages, imagenet):
        lines += [f"## Figure 3 — {dataset.name}, 48 storage cores", ""]
        comparison = ample_cpu_comparison(
            dataset, standard_cluster(storage_cores=48), seed=seed
        )
        lines += _code_block(comparison.render())
        lines.append(
            "SOPHON traffic reduction: "
            f"{1.0 / comparison.traffic_ratio('sophon'):.2f}x; "
            f"time reduction: {1.0 / comparison.time_ratio('sophon'):.2f}x."
        )
        lines.append("")

    lines += ["## Figure 4 — storage-core sweep (OpenImages)", ""]
    sweep = limited_cpu_sweep(openimages, cores=cores, seed=seed)
    lines += _code_block(sweep.render())
    gains = ", ".join(f"{g:.2f}s" for g in sweep.sophon_marginal_gains())
    lines += [f"SOPHON marginal gain per added core: {gains}", ""]

    return "\n".join(lines)
