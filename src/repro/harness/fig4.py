"""Figure 4: policy behaviour as storage-node CPU cores vary (section 4.2)."""

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.cluster.spec import ClusterSpec, standard_cluster
from repro.data.dataset import Dataset
from repro.harness.runner import ExperimentResult, compare_policies
from repro.parallel import ParallelSpec, RecordCache
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds


@dataclasses.dataclass
class CoreSweep:
    """Results of the storage-core sweep: results[cores][policy]."""

    dataset_name: str
    cores: List[int]
    results: Dict[int, Dict[str, ExperimentResult]]

    def epoch_times(self, policy: str) -> List[float]:
        return [self.results[c][policy].epoch_time_s for c in self.cores]

    def traffic(self, policy: str) -> List[int]:
        return [self.results[c][policy].traffic_bytes for c in self.cores]

    def sophon_marginal_gains(self) -> List[float]:
        """Epoch-time reduction per added core (the diminishing-returns
        series quoted in section 4.2)."""
        times = self.epoch_times("sophon")
        return [times[i] - times[i + 1] for i in range(len(times) - 1)]

    def render(self) -> str:
        policies = list(next(iter(self.results.values())).keys())
        rows = []
        for cores in self.cores:
            for policy in policies:
                result = self.results[cores][policy]
                rows.append(
                    (
                        cores,
                        policy,
                        format_seconds(result.epoch_time_s),
                        format_bytes(result.traffic_bytes),
                        result.plan.num_offloaded,
                    )
                )
        title = f"[{self.dataset_name}] storage-core sweep"
        table = render_table(
            ("Cores", "Policy", "Epoch", "Traffic", "Offloaded"), rows
        )
        return f"{title}\n{table}"


def limited_cpu_sweep(
    dataset: Dataset,
    cores: Sequence[int] = (0, 1, 2, 3, 4, 5),
    base_cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    parallel: ParallelSpec = None,
) -> CoreSweep:
    """Sweep storage-node core counts, re-planning every policy per point.

    Records depend only on (dataset, pipeline, seed, epoch) -- not on the
    cluster spec -- so one shared :class:`RecordCache` serves the whole
    sweep: stage-two profiling runs once instead of once per (core count,
    policy) pair.
    """
    if base_cluster is None:
        base_cluster = standard_cluster()
    cache = RecordCache()
    results: Dict[int, Dict[str, ExperimentResult]] = {}
    for core_count in cores:
        spec = base_cluster.with_storage_cores(core_count)
        runs = compare_policies(
            dataset, spec, seed=seed, parallel=parallel, record_cache=cache
        )
        results[core_count] = {r.policy_name: r for r in runs}
    return CoreSweep(dataset_name=dataset.name, cores=list(cores), results=results)
