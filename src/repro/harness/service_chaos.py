"""Crash-recovery gate for the decision service: kill it, restart it, diff.

The gate runs one deterministic scripted request sequence twice against
two fresh journals:

- **run A** (reference): one service lives through the whole script and
  drains gracefully;
- **run B** (chaos): the same script, but the service is ``kill()``-ed
  (abrupt, no checkpoint) at scheduled request indices and restarted on
  the same port and journal, with brownout/CPU-drift latency injected on
  the worker's request-index axis; the client rides through the outages
  on its transport retries.
- **run C** (traced): the same script again with tracing fully on -- the
  client stamps every request with ``X-Sophon-Trace`` and the service
  tees its flight recorder into an unbounded tracer.

Run B's pass condition is *byte identity*: the grants its journal holds
must equal run A's exactly -- same sequence numbers, same splits, same
reasons.  Anything less means recovery changed an answer some trainer
already acted on.  Run C's pass condition is *tracing transparency*:
its journal must also match run A byte for byte, proving observability
never leaks into the control plane's outputs.  Run it via
``make chaos-service``::

    PYTHONPATH=src python -m repro.harness.service_chaos --requests 24 --seed 7

``--flight-dir DIR`` additionally keeps each run's flight-recorder dump
(chrome-trace JSON, written on drain) plus the traced run's span stream
as a replayable telemetry JSONL (``sophon-repro replay``).
"""

import argparse
import dataclasses
import json
import os
import random
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import FaultSchedule
from repro.service.chaos import ScheduleDisturbance, crash_indices
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.journal import GrantRecord, read_grants
from repro.service.server import DecisionService
from repro.telemetry.exporters import write_jsonl
from repro.telemetry.spans import Tracer
from repro.utils.tables import render_table

#: How long run B's service stays dead before the restart comes up; the
#: client's transport retries bridge the gap.
RESTART_DELAY_S = 0.05

#: The job shapes the scripted sequence draws from -- small on purpose,
#: so profiling is cheap and the gate runs in seconds.
SCRIPT_NUM_SAMPLES = (24, 32, 48)
SCRIPT_CORES = (4, 8, 12)


@dataclasses.dataclass(frozen=True)
class ScriptedOp:
    """One step of the deterministic request script."""

    kind: str  # "plan" | "replan" | "release"
    job: str
    num_samples: int = 0
    cores: int = 0


def scripted_ops(requests: int, seed: int, jobs: int = 3) -> List[ScriptedOp]:
    """The request script: seeded, heavy on re-grants and releases.

    Every 5th op re-sends the job's previous plan request verbatim (the
    idempotent-replay path a post-crash client retry takes), and every
    7th releases a job's cores (so admission control sees churn).
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    rng = random.Random(seed)
    last_plan: Dict[str, ScriptedOp] = {}
    ops: List[ScriptedOp] = []
    for index in range(requests):
        job = f"job-{index % jobs}"
        if index % 7 == 6 and job in last_plan:
            ops.append(ScriptedOp(kind="release", job=job))
            continue
        if index % 5 == 4 and job in last_plan:
            previous = last_plan[job]
            ops.append(dataclasses.replace(previous, kind="replan"))
            continue
        op = ScriptedOp(
            kind="plan",
            job=job,
            num_samples=rng.choice(SCRIPT_NUM_SAMPLES),
            cores=rng.choice(SCRIPT_CORES),
        )
        last_plan[job] = op
        ops.append(op)
    return ops


def default_service_schedule(requests: int, seed: int) -> FaultSchedule:
    """Crash + brownout + CPU drift on the request-index axis.

    The kill lands at ~40% of the script, the brownout covers the middle
    third, and the drift the final third -- so recovery happens under
    degraded latency, not in calm waters.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    t = float(requests)
    return (
        FaultSchedule(seed=seed)
        .with_crash(0.4 * t, duration=1.0)
        .with_brownout(0.3 * t, duration=0.3 * t, extra_rtt_s=0.002)
        .with_cpu_drift(0.6 * t, duration=0.3 * t, factor=3.0)
    )


@dataclasses.dataclass
class ScriptRun:
    """What executing the script against one service produced."""

    outcomes: Dict[str, int]
    grants: List[GrantRecord]
    kills: int
    recovered_grants: int
    client_transport_errors: int
    client_retries: int
    drain_s: float


@dataclasses.dataclass
class ServiceChaosReport:
    """All three runs side by side, plus both byte-identity verdicts."""

    requests: int
    seed: int
    reference: ScriptRun
    chaos: ScriptRun
    traced: ScriptRun

    @property
    def identical(self) -> bool:
        """Did the chaos run's journal match the reference byte for byte?"""
        return _grant_lines(self.reference.grants) == _grant_lines(self.chaos.grants)

    @property
    def first_divergence(self) -> Optional[str]:
        return _first_divergence(
            self.reference.grants, self.chaos.grants, "chaos"
        )

    @property
    def tracing_transparent(self) -> bool:
        """Did tracing leave the journal untouched (run C == run A)?"""
        return _grant_lines(self.reference.grants) == _grant_lines(self.traced.grants)

    @property
    def first_trace_divergence(self) -> Optional[str]:
        return _first_divergence(
            self.reference.grants, self.traced.grants, "traced"
        )

    def render(self) -> str:
        rows = []
        runs = (
            ("reference", self.reference),
            ("chaos", self.chaos),
            ("traced", self.traced),
        )
        for name, run in runs:
            rows.append(
                (
                    name,
                    run.outcomes.get("granted", 0),
                    run.outcomes.get("replayed", 0),
                    run.outcomes.get("released", 0),
                    run.kills,
                    run.recovered_grants,
                    run.client_transport_errors,
                    run.client_retries,
                )
            )
        title = (
            f"service crash-recovery gate: {self.requests} scripted requests, "
            f"seed {self.seed}"
        )
        table = render_table(
            ("Run", "Granted", "Replayed", "Released", "Kills", "Recovered",
             "TransportErrs", "Retries"),
            rows,
        )
        verdict = (
            f"journals byte-identical: {len(self.reference.grants)} grants"
            if self.identical
            else f"DIVERGED: {self.first_divergence}"
        )
        trace_verdict = (
            "tracing is byte-transparent: traced journal matches the reference"
            if self.tracing_transparent
            else f"TRACING LEAKED: {self.first_trace_divergence}"
        )
        return f"{title}\n{table}\n{verdict}\n{trace_verdict}"


def _grant_lines(grants: List[GrantRecord]) -> List[str]:
    return [
        json.dumps(
            dataclasses.asdict(grant), sort_keys=True, separators=(",", ":")
        )
        for grant in grants
    ]


def _first_divergence(
    reference: List[GrantRecord], other: List[GrantRecord], label: str
) -> Optional[str]:
    a = _grant_lines(reference)
    b = _grant_lines(other)
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            return f"grant {index}: {left!r} != {right!r}"
    if len(a) != len(b):
        return f"grant count: reference {len(a)} vs {label} {len(b)}"
    return None


def _execute_script(
    ops: List[ScriptedOp],
    journal_path: str,
    config: ServiceConfig,
    schedule: Optional[FaultSchedule] = None,
    telemetry_path: Optional[str] = None,
) -> ScriptRun:
    """Run the script against one service; with a schedule, inject chaos.

    With ``config.trace`` set the client gets its own tracer too, so every
    request carries an ``X-Sophon-Trace`` header -- the tracing-transparency
    leg of the gate.  ``telemetry_path`` (traced runs only) writes the
    service tracer's span stream as a replayable telemetry JSONL.
    """
    kill_at = set(crash_indices(schedule, len(ops))) if schedule is not None else set()
    disturbance = (
        ScheduleDisturbance(schedule) if schedule is not None else None
    )
    base = dataclasses.replace(config, journal_path=journal_path)
    service = DecisionService(base, disturbance=disturbance).start()
    address = service.address
    pinned = dataclasses.replace(base, host=address[0], port=address[1])
    client = ServiceClient(
        address,
        token=config.token,
        deadline_s=30.0,
        max_attempts=10,
        seed=0,
        tracer=Tracer() if config.trace else None,
    )
    outcomes: Dict[str, int] = {}
    kills = 0
    recovered = 0
    try:
        for index, op in enumerate(ops):
            if index in kill_at:
                service.kill()
                kills += 1
                holder: List[DecisionService] = []

                def _restart() -> None:
                    time.sleep(RESTART_DELAY_S)
                    holder.append(
                        DecisionService(
                            pinned, disturbance=disturbance
                        ).start()
                    )

                restarter = threading.Thread(target=_restart, daemon=True)
                restarter.start()
                outcome = _run_op(client, op)
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                restarter.join(timeout=10.0)
                if not holder:
                    raise RuntimeError("service failed to restart after kill")
                service = holder[0]
                recovered += service.recovered_grants
                continue
            outcome = _run_op(client, op)
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        drain_s = service.drain()
        if telemetry_path is not None and service.tracer is not None:
            write_jsonl(telemetry_path, tracer=service.tracer)
    except BaseException:
        if service.drain_seconds is None and not service._killed:
            service.kill()
        raise
    return ScriptRun(
        outcomes=outcomes,
        grants=list(read_grants(journal_path)),
        kills=kills,
        recovered_grants=recovered,
        client_transport_errors=client.stats.transport_errors,
        client_retries=client.stats.retries,
        drain_s=drain_s,
    )


def _run_op(client: ServiceClient, op: ScriptedOp) -> str:
    if op.kind == "release":
        try:
            released = client.release(op.job)
        except ServiceError:
            return "release_failed"
        return "released" if released is not None else "release_noop"
    try:
        grant = client.plan(
            op.job, num_samples=op.num_samples, storage_cores=op.cores
        )
    except ServiceError:
        return "failed"
    return "replayed" if grant.replayed else "granted"


def run_service_chaos(
    requests: int = 24,
    seed: int = 7,
    workers: int = 2,
    queue_capacity: int = 16,
    total_cores: int = 24,
    journal_dir: Optional[str] = None,
    flight_dir: Optional[str] = None,
) -> ServiceChaosReport:
    """Run the gate; ``identical`` and ``tracing_transparent`` must pass.

    total_cores is deliberately tight relative to the script's core asks,
    so admission control rejects some requests in *all* runs -- recovery
    must reproduce the rejections too, not just the grants.  flight_dir
    keeps each run's flight-recorder dump (written on drain) plus the
    traced run's telemetry JSONL.
    """
    ops = scripted_ops(requests, seed)
    schedule = default_service_schedule(requests, seed)
    config = ServiceConfig(
        workers=workers,
        queue_capacity=queue_capacity,
        total_storage_cores=total_cores,
    )
    if flight_dir is not None:
        os.makedirs(flight_dir, exist_ok=True)

    def _flight(name: str) -> Optional[str]:
        if flight_dir is None:
            return None
        return os.path.join(flight_dir, f"flight_{name}.json")

    def _run(directory: str) -> Tuple[ScriptRun, ScriptRun, ScriptRun]:
        reference = _execute_script(
            ops,
            f"{directory}/journal_reference.jsonl",
            dataclasses.replace(config, flight_path=_flight("reference")),
        )
        chaos = _execute_script(
            ops,
            f"{directory}/journal_chaos.jsonl",
            dataclasses.replace(config, flight_path=_flight("chaos")),
            schedule=schedule,
        )
        traced = _execute_script(
            ops,
            f"{directory}/journal_traced.jsonl",
            dataclasses.replace(
                config, trace=True, flight_path=_flight("traced")
            ),
            telemetry_path=(
                os.path.join(flight_dir, "traced.telemetry.jsonl")
                if flight_dir is not None
                else None
            ),
        )
        return reference, chaos, traced

    if journal_dir is not None:
        reference, chaos, traced = _run(journal_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="sophon-service-chaos-") as tmp:
            reference, chaos, traced = _run(tmp)
    return ServiceChaosReport(
        requests=requests,
        seed=seed,
        reference=reference,
        chaos=chaos,
        traced=traced,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Kill and restart the decision service mid-script and "
        "verify the recovered journal is byte-identical."
    )
    parser.add_argument("--requests", type=int, default=24,
                        help="scripted requests per run")
    parser.add_argument("--seed", type=int, default=7,
                        help="script + fault-schedule seed")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cores", type=int, default=24,
                        help="storage-core budget (tight, to exercise "
                        "admission rejections)")
    parser.add_argument("--journal-dir", default=None,
                        help="keep the three journals here instead of a "
                        "temporary directory")
    parser.add_argument("--flight-dir", default=None,
                        help="keep each run's flight-recorder dump (and the "
                        "traced run's telemetry JSONL) in this directory")
    args = parser.parse_args(argv)

    report = run_service_chaos(
        requests=args.requests,
        seed=args.seed,
        workers=args.workers,
        total_cores=args.cores,
        journal_dir=args.journal_dir,
        flight_dir=args.flight_dir,
    )
    print(report.render())
    if not report.identical:
        print("FAIL: recovery diverged from the uninterrupted run")
        return 1
    if not report.tracing_transparent:
        print("FAIL: tracing changed the journal (observability leaked into "
              "the control plane)")
        return 1
    if report.chaos.kills == 0:
        print("FAIL: the chaos run never killed the service (gate is vacuous)")
        return 1
    print("Crash recovery is byte-identical; the control plane survived.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
