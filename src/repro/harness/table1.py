"""Table 1: capability matrix of offloading approaches vs SOPHON."""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.capabilities import Capabilities
from repro.baselines.fastflow import FastFlow
from repro.baselines.simple import AllOff, NoOff, ResizeOff
from repro.core.sophon import Sophon
from repro.utils.tables import render_table

HEADERS = (
    "Policy",
    "Operation Selective",
    "Data Partial",
    "Data Selective",
    "To Near Storage",
)

# The paper's actual Table 1 rows: the published offloading systems it
# compares against ([32] tf.data service, [33] FastFlow, [34] GoldMiner,
# [35] cedar), with the capabilities the paper credits them.  These are
# descriptive (we implement FastFlow's decision rule; the others are
# catalogued for the table's completeness).
PUBLISHED_SYSTEMS = (
    ("tf.data service [32]", Capabilities()),
    ("FastFlow [33]", Capabilities(operation_selective=True)),
    ("GoldMiner [34]", Capabilities(operation_selective=True)),
    ("cedar [35]", Capabilities(operation_selective=True, data_partial=True)),
    ("SOPHON", Capabilities(
        operation_selective=True,
        data_partial=True,
        data_selective=True,
        to_near_storage=True,
    )),
)


def published_matrix() -> List[Tuple[str, str, str, str, str]]:
    """The paper's Table 1: published systems vs SOPHON."""
    return [(name,) + caps.row() for name, caps in PUBLISHED_SYSTEMS]


def render_published_matrix() -> str:
    return render_table(("System",) + HEADERS[1:], published_matrix())


def capability_matrix(
    policies: Optional[Sequence[type]] = None,
) -> List[Tuple[str, str, str, str, str]]:
    """One row per policy class, in Table-1 column order."""
    if policies is None:
        policies = [NoOff, AllOff, FastFlow, ResizeOff, Sophon]
    rows = []
    for policy_cls in policies:
        caps: Capabilities = getattr(policy_cls, "capabilities", Capabilities())
        rows.append((policy_cls.name,) + caps.row())
    return rows


def render_capability_matrix(policies: Optional[Sequence[type]] = None) -> str:
    return render_table(HEADERS, capability_matrix(policies))


def sophon_is_strictly_most_capable(rows: Optional[List[tuple]] = None) -> bool:
    """The table's claim: only SOPHON checks every column."""
    if rows is None:
        rows = capability_matrix()
    full: Dict[str, bool] = {
        row[0]: all(cell == "yes" for cell in row[1:]) for row in rows
    }
    return full.get("sophon", False) and sum(full.values()) == 1
