"""Chaos experiment: one epoch under each fault class vs the clean baseline.

For a fixed SOPHON plan, run the event-driven trainer once fault-free and
once under each :class:`~repro.faults.FaultSchedule` scenario (storage
crash, link brownout, storage CPU drift, payload corruption), and report
what the faults cost: epoch-time and traffic deltas, demotion counts, and
recovery latency.  Zero samples may be lost under any scenario -- the
degraded-mode machinery serves every demoted sample at split 0.

Run it as a module (``make chaos``)::

    PYTHONPATH=src python -m repro.harness.chaos --samples 160 --seed 7
"""

import argparse
import contextlib
import dataclasses
from typing import List, Optional

from repro.cluster.sharded import ShardedTrainerSim, round_robin_placement
from repro.cluster.spec import ClusterSpec, standard_cluster
from repro.cluster.trainer import EpochStats, TrainerSim
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.policy import PolicyContext
from repro.data.catalog import make_openimages
from repro.data.dataset import Dataset
from repro.faults import FaultSchedule
from repro.harness.telemetry import emit_artifacts, record_epoch_stats
from repro.parallel import ParallelSpec
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.telemetry.audit import AuditLog
from repro.telemetry.registry import MetricsRegistry, use_registry
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds
from repro.workloads.models import ModelProfile, get_model_profile

#: Small batches stagger offloads across the epoch, so post-restart fetches
#: exist and recovery latency is observable (one giant batch launches every
#: offload before the crash window opens).
CHAOS_BATCH_SIZE = 16

#: Shallow prefetch for the same reason: with the default depth of 8 the
#: whole dataset is in flight at t=0 and a mid-epoch crash finds nothing
#: left to interrupt.
CHAOS_PREFETCH_BATCHES = 2


@dataclasses.dataclass(frozen=True)
class ChaosScenario:
    """One named fault schedule to survive."""

    name: str
    schedule: FaultSchedule
    description: str = ""


@dataclasses.dataclass
class ChaosRun:
    """One scenario's epoch next to the fault-free baseline."""

    scenario: ChaosScenario
    stats: EpochStats
    baseline: EpochStats

    @property
    def epoch_delta_s(self) -> float:
        return self.stats.epoch_time_s - self.baseline.epoch_time_s

    @property
    def traffic_delta_bytes(self) -> int:
        return self.stats.traffic_bytes - self.baseline.traffic_bytes

    @property
    def lost_samples(self) -> int:
        """Samples the faulty epoch failed to deliver (must be zero)."""
        return self.baseline.num_samples - self.stats.num_samples

    @property
    def demoted_samples(self) -> int:
        return self.stats.faults.demoted_samples if self.stats.faults else 0

    @property
    def corrupted_payloads(self) -> int:
        return self.stats.faults.corrupted_payloads if self.stats.faults else 0

    @property
    def recovery_latency_s(self) -> Optional[float]:
        return self.stats.faults.recovery_latency_s if self.stats.faults else None


@dataclasses.dataclass
class ChaosReport:
    """Every scenario's outcome for one (dataset, plan, cluster) setup."""

    dataset_name: str
    baseline: EpochStats
    runs: List[ChaosRun]
    #: Populated by ``run_chaos(telemetry=True)``: the planning audit log
    #: and the registry every counter from the run landed in.
    audit: Optional[AuditLog] = None
    registry: Optional[MetricsRegistry] = None

    @property
    def survived(self) -> bool:
        return all(run.lost_samples == 0 for run in self.runs)

    def run_named(self, name: str) -> ChaosRun:
        for run in self.runs:
            if run.scenario.name == name:
                return run
        raise KeyError(f"no chaos scenario named {name!r}")

    def render(self) -> str:
        rows = [
            (
                "baseline",
                format_seconds(self.baseline.epoch_time_s),
                format_bytes(self.baseline.traffic_bytes),
                0,
                0,
                "-",
                0,
            )
        ]
        for run in self.runs:
            latency = run.recovery_latency_s
            rows.append(
                (
                    run.scenario.name,
                    format_seconds(run.stats.epoch_time_s),
                    format_bytes(run.stats.traffic_bytes),
                    run.demoted_samples,
                    run.corrupted_payloads,
                    format_seconds(latency) if latency is not None else "-",
                    run.lost_samples,
                )
            )
        title = f"[{self.dataset_name}] epoch under injected faults"
        table = render_table(
            ("Scenario", "Epoch", "Traffic", "Demoted", "Corrupted", "Recovery", "Lost"),
            rows,
        )
        return f"{title}\n{table}"


def default_scenarios(epoch_time_s: float, seed: int = 0) -> List[ChaosScenario]:
    """The four fault classes, windowed relative to the clean epoch time.

    Windows open at ~30% of the baseline epoch, after the pipeline has
    warmed up but with plenty of work still in flight.
    """
    if epoch_time_s <= 0:
        raise ValueError(f"epoch_time_s must be > 0, got {epoch_time_s}")
    t = epoch_time_s
    base = FaultSchedule(seed=seed)
    return [
        ChaosScenario(
            name="storage-crash",
            schedule=base.with_crash(0.3 * t, duration=0.3 * t),
            description="storage node down for 30% of the epoch, then restarts",
        ),
        ChaosScenario(
            name="link-brownout",
            schedule=base.with_brownout(
                0.3 * t, duration=0.4 * t, bandwidth_factor=0.1, extra_rtt_s=0.002
            ),
            description="bandwidth collapses to 10% and RTT rises for 40% of the epoch",
        ),
        ChaosScenario(
            name="storage-cpu-drift",
            schedule=base.with_cpu_drift(0.3 * t, duration=0.5 * t, factor=4.0),
            description="storage CPUs run 4x slower for half the epoch",
        ),
        ChaosScenario(
            name="payload-corruption",
            schedule=base.with_corruption(0.05),
            description="5% of wire payloads fail their checksum and are resent",
        ),
    ]


def run_chaos(
    dataset: Dataset,
    spec: Optional[ClusterSpec] = None,
    model: Optional[ModelProfile] = None,
    pipeline: Optional[Pipeline] = None,
    batch_size: int = CHAOS_BATCH_SIZE,
    seed: int = 0,
    scenarios: Optional[List[ChaosScenario]] = None,
    telemetry: bool = False,
    parallel: ParallelSpec = None,
    shards: Optional[int] = None,
) -> ChaosReport:
    """Plan once with SOPHON's decision engine, then survive each scenario.

    The same plan and epoch index are used for every run, so any delta vs
    the baseline is attributable to the injected faults alone.

    With ``shards=N`` the epochs run on a
    :class:`~repro.cluster.sharded.ShardedTrainerSim` (round-robin
    placement, ``spec.storage_cores`` per shard) through the very same
    ``run_epoch`` calls -- faults, spans and timelines included.

    With ``telemetry=True`` the run becomes fully observable: planning
    writes a decision audit log, every epoch records per-sample spans and
    a batch timeline, and all counters land in a fresh registry scoped to
    this call -- the report carries ``audit`` and ``registry``, ready for
    :func:`write_chaos_telemetry`.  The simulated epochs themselves are
    byte-identical with telemetry on or off.
    """
    if spec is None:
        spec = dataclasses.replace(
            standard_cluster(), prefetch_batches=CHAOS_PREFETCH_BATCHES
        )
    model = model if model is not None else get_model_profile("alexnet")
    pipeline = pipeline if pipeline is not None else standard_pipeline()

    registry = MetricsRegistry() if telemetry else None
    audit = AuditLog() if telemetry else None
    with contextlib.ExitStack() as stack:
        if registry is not None:
            stack.enter_context(use_registry(registry))
        context = PolicyContext(
            dataset=dataset,
            pipeline=pipeline,
            spec=spec,
            model=model,
            batch_size=batch_size,
            seed=seed,
            parallel=parallel,
        )
        plan = DecisionEngine(DecisionConfig()).plan(
            context.records(), spec, gpu_time_s=context.epoch_gpu_time_s, audit=audit
        )
        trainer: TrainerSim
        if shards is not None:
            trainer = ShardedTrainerSim(
                dataset=dataset,
                pipeline=pipeline,
                model=model,
                spec=spec,
                placement=round_robin_placement(len(dataset), shards),
                batch_size=batch_size,
                num_shards=shards,
                seed=seed,
            )
        else:
            trainer = TrainerSim(
                dataset=dataset,
                pipeline=pipeline,
                model=model,
                spec=spec,
                batch_size=batch_size,
                seed=seed,
            )
        baseline = trainer.run_epoch(
            list(plan.splits), epoch=1,
            record_spans=telemetry, record_timeline=telemetry,
        )
        if telemetry:
            record_epoch_stats(baseline, "baseline", registry)
        if scenarios is None:
            scenarios = default_scenarios(baseline.epoch_time_s, seed=seed)

        runs: List[ChaosRun] = []
        for scenario in scenarios:
            stats = trainer.run_epoch(
                list(plan.splits), epoch=1, faults=scenario.schedule,
                record_spans=telemetry, record_timeline=telemetry,
            )
            if telemetry:
                record_epoch_stats(stats, scenario.name, registry)
            runs.append(ChaosRun(scenario=scenario, stats=stats, baseline=baseline))
    return ChaosReport(
        dataset_name=dataset.name,
        baseline=baseline,
        runs=runs,
        audit=audit,
        registry=registry,
    )


def write_chaos_telemetry(report: ChaosReport, out_dir: str) -> List[str]:
    """Write the chaos artifact tree under ``out_dir``; returns the paths.

    Per run (baseline + each scenario): a span JSONL and a chrome trace.
    Once per report: ``chaos.telemetry.jsonl`` holding the metrics
    snapshot and the planning audit, plus ``chaos.metrics.prom``.
    """
    if report.registry is None:
        raise ValueError(
            "report carries no telemetry; produce it with run_chaos(telemetry=True)"
        )
    paths = emit_artifacts(out_dir, "baseline", stats=report.baseline)
    for run in report.runs:
        paths.extend(emit_artifacts(out_dir, run.scenario.name, stats=run.stats))
    paths.extend(
        emit_artifacts(out_dir, "chaos", registry=report.registry, audit=report.audit)
    )
    return paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run one epoch under each fault class and report the damage."
    )
    parser.add_argument("--samples", type=int, default=160, help="dataset size")
    parser.add_argument("--seed", type=int, default=7, help="dataset + fault seed")
    parser.add_argument(
        "--batch-size", type=int, default=CHAOS_BATCH_SIZE, help="training batch size"
    )
    parser.add_argument(
        "--telemetry-dir",
        help="also write telemetry artifacts (span JSONL, chrome traces, "
        "Prometheus text, decision audit) under this directory",
    )
    parser.add_argument(
        "--parallel",
        default=None,
        help="profiling execution mode: sequential, vectorized, sharded[:N] "
        "(bit-identical output; see repro.parallel)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run the epochs on a sharded storage tier with this many shards "
        "(round-robin placement)",
    )
    args = parser.parse_args(argv)

    dataset = make_openimages(num_samples=args.samples, seed=args.seed)
    report = run_chaos(
        dataset,
        batch_size=args.batch_size,
        seed=args.seed,
        telemetry=args.telemetry_dir is not None,
        parallel=args.parallel,
        shards=args.shards,
    )
    print(report.render())
    if args.telemetry_dir is not None:
        for path in write_chaos_telemetry(report, args.telemetry_dir):
            print(f"telemetry written to {path}")
    if not report.survived:
        print("FAIL: samples were lost under injected faults")
        return 1
    print("All scenarios survived with zero lost samples.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
