"""Adaptive re-planning when the cluster changes mid-job.

The paper plans once, after the first epoch.  Real clusters drift: another
tenant grabs the storage node's cores, or the egress cap changes.  A plan
tuned for 48 storage cores can be actively *harmful* on 1 core (its T_CS
explodes past the No-Off epoch).  :class:`AdaptiveTrainingRun` re-plans
whenever the cluster spec changes between epochs, reusing the cached
stage-two records, so the job reacts at the cost of a cheap analytic pass
-- no re-profiling.
"""

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.sharded import ShardedTrainerSim
from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import EpochStats, TrainerSim
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.degraded import OutageReport
from repro.core.plan import OffloadPlan
from repro.core.policy import PolicyContext
from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.workloads.models import ModelProfile, get_model_profile


@dataclasses.dataclass
class AdaptiveEpoch:
    """One epoch of an adaptive run."""

    epoch: int
    spec: ClusterSpec
    plan: OffloadPlan
    stats: EpochStats
    replanned: bool


@dataclasses.dataclass
class AdaptiveRunResult:
    epochs: List[AdaptiveEpoch]

    @property
    def total_time_s(self) -> float:
        return sum(e.stats.epoch_time_s for e in self.epochs)

    @property
    def replan_count(self) -> int:
        return sum(1 for e in self.epochs if e.replanned)

    def epoch_times(self) -> List[float]:
        return [e.stats.epoch_time_s for e in self.epochs]

    def instrumented_epochs(self) -> List[Tuple[int, EpochStats]]:
        """(epoch, stats) pairs, the combined-trace emitters' input shape."""
        return [(e.epoch, e.stats) for e in self.epochs]


class AdaptiveTrainingRun:
    """Train under a changing cluster, re-planning on every spec change.

    spec_schedule: maps epoch index -> the ClusterSpec in force from that
        epoch on (epoch 0's spec defaults to ``base_spec``).
    adaptive: when False, the epoch-1 plan is kept (clamped if offloading
        becomes impossible) -- the static strawman the adaptive run is
        compared against.
    placement: optional sample -> shard map; when given, epochs run on a
        :class:`~repro.cluster.sharded.ShardedTrainerSim` (per-shard span
        labels and all) through the exact same ``run_epoch`` calls as the
        single-node path.
    job_name: tenant label stamped onto every span (the combined chrome
        trace's per-tenant row).
    """

    def __init__(
        self,
        dataset: Dataset,
        base_spec: ClusterSpec,
        spec_schedule: Optional[Dict[int, ClusterSpec]] = None,
        model: Optional[ModelProfile] = None,
        pipeline: Optional[Pipeline] = None,
        decision: DecisionConfig = DecisionConfig(),
        batch_size: Optional[int] = None,
        adaptive: bool = True,
        seed: int = 0,
        placement: Optional[Sequence[int]] = None,
        num_shards: Optional[int] = None,
        job_name: Optional[str] = None,
    ) -> None:
        self.dataset = dataset
        self.base_spec = base_spec
        self.spec_schedule = dict(spec_schedule or {})
        self.model = model if model is not None else get_model_profile("alexnet")
        self.pipeline = pipeline if pipeline is not None else standard_pipeline()
        self.engine = DecisionEngine(decision)
        self.batch_size = batch_size
        self.adaptive = adaptive
        self.seed = seed
        self.placement = list(placement) if placement is not None else None
        self.num_shards = num_shards
        self.job_name = job_name

    def _spec_in_force(self, epoch: int) -> ClusterSpec:
        """The ClusterSpec governing *epoch* under the current schedule."""
        spec = self.base_spec
        for at in sorted(self.spec_schedule):
            if at <= epoch:
                spec = self.spec_schedule[at]
        return spec

    def observe_outage(
        self,
        report: OutageReport,
        at_epoch: int,
        recovery_epoch: Optional[int] = None,
    ) -> ClusterSpec:
        """Fold an observed outage into the spec schedule.

        From ``at_epoch`` on, planning sees a storage-down spec (forcing a
        No-Off plan -- exactly what degraded-mode execution delivers
        anyway, so the plan stops promising offloads that would each pay a
        demotion).  If the outage has recovered, the prior spec is restored
        from ``recovery_epoch`` (default: the epoch after ``at_epoch``).
        Returns the degraded spec installed at ``at_epoch``.
        """
        if at_epoch < 0:
            raise ValueError(f"at_epoch must be >= 0, got {at_epoch}")
        prior = self._spec_in_force(at_epoch)
        degraded = prior.degraded(storage_down=True)
        self.spec_schedule[at_epoch] = degraded
        if report.recovered_at_s is not None:
            restore_at = recovery_epoch if recovery_epoch is not None else at_epoch + 1
            if restore_at <= at_epoch:
                raise ValueError(
                    f"recovery_epoch {restore_at} must follow at_epoch {at_epoch}"
                )
            self.spec_schedule.setdefault(restore_at, prior)
        return degraded

    def _plan_for(self, spec: ClusterSpec, context: PolicyContext) -> OffloadPlan:
        if not spec.can_offload:
            return OffloadPlan.no_offload(len(self.dataset), reason="no storage cores")
        return self.engine.plan(
            context.records(), spec, gpu_time_s=context.epoch_gpu_time_s
        )

    def _make_trainer(self, spec: ClusterSpec, batch_size: Optional[int]) -> TrainerSim:
        """The per-epoch sim: sharded when a placement was given.

        Both shapes go through the identical ``run_epoch`` calls -- the
        base-class signature is the contract.
        """
        if self.placement is not None:
            return ShardedTrainerSim(
                dataset=self.dataset,
                pipeline=self.pipeline,
                model=self.model,
                spec=spec,
                placement=self.placement,
                batch_size=batch_size,
                num_shards=self.num_shards,
                seed=self.seed,
                job_label=self.job_name,
            )
        return TrainerSim(
            dataset=self.dataset,
            pipeline=self.pipeline,
            model=self.model,
            spec=spec,
            batch_size=batch_size,
            seed=self.seed,
            job_label=self.job_name,
        )

    def run(
        self,
        epochs: int,
        record_spans: bool = False,
        record_timeline: bool = False,
    ) -> AdaptiveRunResult:
        """Run ``epochs`` epochs, re-planning on spec changes.

        record_spans: give every epoch its own span tracer
            (``result.epochs[i].stats.spans``), on virtual time.
        record_timeline: attach a per-batch timeline per epoch.
        Neither changes the simulated schedules.
        """
        if epochs < 2:
            raise ValueError(f"need >= 2 epochs (1 profiles), got {epochs}")
        context = PolicyContext(
            dataset=self.dataset,
            pipeline=self.pipeline,
            spec=self.base_spec,
            model=self.model,
            batch_size=self.batch_size,
            seed=self.seed,
        )

        results: List[AdaptiveEpoch] = []
        current_spec = self.spec_schedule.get(0, self.base_spec)
        plan: Optional[OffloadPlan] = None

        for epoch in range(epochs):
            new_spec = self.spec_schedule.get(epoch, current_spec)
            spec_changed = new_spec != current_spec
            current_spec = new_spec
            replanned = False

            if epoch == 0:
                # Profiling epoch: unoffloaded by construction.
                epoch_plan = OffloadPlan.no_offload(
                    len(self.dataset), reason="profiling epoch"
                )
            elif plan is None:
                plan = self._plan_for(current_spec, context)
                epoch_plan = plan
                replanned = True
            elif spec_changed and self.adaptive:
                plan = self._plan_for(current_spec, context)
                epoch_plan = plan
                replanned = True
            else:
                epoch_plan = plan.clamped_for(current_spec)

            trainer = self._make_trainer(current_spec, context.effective_batch_size)
            stats = trainer.run_epoch(
                list(epoch_plan.splits),
                epoch=epoch,
                record_spans=record_spans,
                record_timeline=record_timeline,
            )
            results.append(
                AdaptiveEpoch(
                    epoch=epoch,
                    spec=current_spec,
                    plan=epoch_plan,
                    stats=stats,
                    replanned=replanned,
                )
            )
        return AdaptiveRunResult(epochs=results)
