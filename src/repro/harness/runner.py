"""Run one policy on one workload and measure an epoch."""

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.epoch_model import EpochEstimate, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import EpochStats, TrainerSim
from repro.core.plan import OffloadPlan
from repro.core.policy import Policy, PolicyContext
from repro.core.sophon import Sophon
from repro.baselines.fastflow import FastFlow
from repro.baselines.simple import AllOff, NoOff, ResizeOff
from repro.data.dataset import Dataset
from repro.parallel import ParallelSpec, RecordCache
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.workloads.models import ModelProfile, get_model_profile


@dataclasses.dataclass
class ExperimentResult:
    """One (policy, workload, cluster) measurement."""

    policy_name: str
    dataset_name: str
    spec: ClusterSpec
    plan: OffloadPlan
    stats: EpochStats
    estimate: EpochEstimate

    @property
    def epoch_time_s(self) -> float:
        return self.stats.epoch_time_s

    @property
    def traffic_bytes(self) -> int:
        return self.stats.traffic_bytes

    @property
    def gpu_utilization(self) -> float:
        return self.stats.gpu_utilization


#: Factories for the paper's five evaluated policies, in figure order.
DEFAULT_POLICY_SET: Dict[str, Callable[[], Policy]] = {
    "no-off": NoOff,
    "all-off": AllOff,
    "fastflow": FastFlow,
    "resize-off": ResizeOff,
    "sophon": Sophon,
}


def run_experiment(
    dataset: Dataset,
    policy: Policy,
    cluster: ClusterSpec,
    model: Optional[ModelProfile] = None,
    pipeline: Optional[Pipeline] = None,
    batch_size: Optional[int] = None,
    seed: int = 0,
    measure_epoch: int = 1,
    parallel: ParallelSpec = None,
    record_cache: Optional[RecordCache] = None,
) -> ExperimentResult:
    """Plan with ``policy`` (profiling on epoch 0), measure ``measure_epoch``.

    Profiling always happens on the first, non-offloaded epoch; the plan is
    then applied to a later epoch, as in the paper's on-the-fly scheme.
    ``parallel`` selects the profiling execution mode and ``record_cache``
    shares profiled records across experiments (see :mod:`repro.parallel`);
    neither changes any output.
    """
    if model is None:
        model = get_model_profile("alexnet", "rtx6000")
    if pipeline is None:
        pipeline = standard_pipeline()

    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=cluster,
        model=model,
        batch_size=batch_size,
        seed=seed,
        parallel=parallel,
        record_cache=record_cache,
    )
    plan = policy.plan(context).clamped_for(cluster)

    trainer = TrainerSim(
        dataset=dataset,
        pipeline=pipeline,
        model=model,
        spec=cluster,
        batch_size=context.effective_batch_size,
        seed=seed,
    )
    stats = trainer.run_epoch(list(plan.splits), epoch=measure_epoch)
    estimate = EpochModel(cluster).estimate(stats.analytic)
    return ExperimentResult(
        policy_name=policy.name,
        dataset_name=dataset.name,
        spec=cluster,
        plan=plan,
        stats=stats,
        estimate=estimate,
    )


def compare_policies(
    dataset: Dataset,
    cluster: ClusterSpec,
    policies: Optional[Sequence[Policy]] = None,
    model: Optional[ModelProfile] = None,
    pipeline: Optional[Pipeline] = None,
    batch_size: Optional[int] = None,
    seed: int = 0,
    parallel: ParallelSpec = None,
    record_cache: Optional[RecordCache] = None,
) -> List[ExperimentResult]:
    """Run the paper's five policies (or a custom set) on one workload.

    Policies profile the same (dataset, pipeline, seed) tuple, so a shared
    ``record_cache`` is created by default: the stage-two profiling pass
    runs once instead of once per policy.
    """
    if policies is None:
        policies = [factory() for factory in DEFAULT_POLICY_SET.values()]
    if record_cache is None:
        record_cache = RecordCache()
    return [
        run_experiment(
            dataset,
            policy,
            cluster,
            model=model,
            pipeline=pipeline,
            batch_size=batch_size,
            seed=seed,
            parallel=parallel,
            record_cache=record_cache,
        )
        for policy in policies
    ]
