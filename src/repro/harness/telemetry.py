"""Telemetry artifact emission for the experiment harnesses.

The harnesses (chaos, fig1/fig3/fig4, CLI) produce three artifact kinds
per run, all deterministic byte-for-byte for a fixed seed:

* ``<name>.telemetry.jsonl`` -- the replayable event log (metrics
  snapshot, per-sample spans, decision audit records).
* ``<name>.trace.json`` -- a ``chrome://tracing``-loadable rendering of
  the batch timeline and per-sample spans.
* ``<name>.metrics.prom`` -- Prometheus text exposition of a registry.

This module owns the filenames and the folding of harness-level results
(:class:`~repro.cluster.trainer.EpochStats`) into registry gauges, so
every harness emits the same artifact tree.
"""

import os
from typing import List, Optional, Sequence, Tuple, Union

from repro.cluster.trainer import EpochStats
from repro.metrics.chrometrace import (
    EpochTraceRecord,
    write_chrome_trace,
    write_combined_chrome_trace,
)
from repro.telemetry.audit import AuditLog
from repro.telemetry.exporters import render_prometheus, write_jsonl
from repro.telemetry.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    get_default_registry,
)
from repro.telemetry.spans import Tracer


def record_epoch_stats(
    stats: EpochStats,
    run: str,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Fold one epoch's headline numbers into ``harness_*`` gauges.

    ``run`` labels the series (a scenario or policy name), so one registry
    can hold a whole comparison side by side.
    """
    reg = registry if registry is not None else get_default_registry()
    reg.gauge(
        "harness_epoch_time_seconds", "measured epoch time", labels=["run"]
    ).set(stats.epoch_time_s, run=run)
    reg.gauge(
        "harness_traffic_bytes", "bytes crossing the inter-cluster link",
        labels=["run"],
    ).set(float(stats.traffic_bytes), run=run)
    reg.gauge(
        "harness_offloaded_samples", "samples served with split > 0",
        labels=["run"],
    ).set(float(stats.offloaded_samples), run=run)
    reg.gauge(
        "harness_gpu_utilization", "GPU busy fraction over the epoch",
        labels=["run"],
    ).set(stats.gpu_utilization, run=run)
    reg.counter(
        "harness_epochs_total", "epochs measured by a harness", labels=["run"]
    ).inc(run=run)


def emit_artifacts(
    out_dir: str,
    name: str,
    stats: Optional[EpochStats] = None,
    registry: Optional[Union[MetricsRegistry, MetricsSnapshot]] = None,
    audit: Optional[AuditLog] = None,
) -> List[str]:
    """Write the artifact set for one named run; returns the paths written.

    What gets written depends on what is passed:

    * ``stats`` with spans and/or a timeline -> ``<name>.trace.json`` plus
      the spans in ``<name>.telemetry.jsonl``.
    * ``registry`` -> its snapshot in the JSONL log and
      ``<name>.metrics.prom``.
    * ``audit`` -> decision records in the JSONL log.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths: List[str] = []
    tracer = stats.spans if stats is not None else None
    timeline = stats.timeline if stats is not None else None

    if tracer is not None or registry is not None or audit is not None:
        jsonl_path = os.path.join(out_dir, f"{name}.telemetry.jsonl")
        write_jsonl(jsonl_path, registry=registry, tracer=tracer, audit=audit)
        paths.append(jsonl_path)
    if timeline is not None or tracer is not None:
        trace_path = os.path.join(out_dir, f"{name}.trace.json")
        write_chrome_trace(
            timeline,
            trace_path,
            job=name,
            spans=tracer.events if tracer is not None else None,
        )
        paths.append(trace_path)
    if registry is not None:
        prom_path = os.path.join(out_dir, f"{name}.metrics.prom")
        with open(prom_path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(render_prometheus(registry))
        paths.append(prom_path)
    return paths


def epoch_trace_records(
    per_epoch: Sequence[Tuple[int, EpochStats]],
) -> List[EpochTraceRecord]:
    """Fold instrumented epochs into combined-trace records.

    Accepts the ``instrumented_epochs()`` shape of
    :class:`~repro.harness.adaptive.AdaptiveRunResult` and
    :class:`~repro.harness.training.TrainingRunResult`; epochs that
    recorded neither spans nor a timeline are skipped.
    """
    records: List[EpochTraceRecord] = []
    for epoch, stats in per_epoch:
        if stats.spans is None and stats.timeline is None:
            continue
        records.append(
            EpochTraceRecord(
                epoch=epoch,
                spans=tuple(stats.spans.events) if stats.spans is not None else (),
                timeline=stats.timeline,
            )
        )
    return records


def emit_combined_artifacts(
    out_dir: str,
    name: str,
    per_epoch: Sequence[Tuple[int, EpochStats]],
    registry: Optional[Union[MetricsRegistry, MetricsSnapshot]] = None,
    audit: Optional[AuditLog] = None,
) -> List[str]:
    """Write one artifact set spanning a whole multi-epoch run.

    * ``<name>.trace.json`` -- the combined chrome trace: per-epoch rows
      plus shard/tenant summary rows (see
      :func:`repro.metrics.chrometrace.write_combined_chrome_trace`).
    * ``<name>.telemetry.jsonl`` -- every epoch's spans in one replayable
      log (``trace_id(sample, epoch)`` keeps epochs apart), plus the
      optional metrics snapshot and decision audit.
    * ``<name>.metrics.prom`` -- when a registry is given.
    """
    os.makedirs(out_dir, exist_ok=True)
    records = epoch_trace_records(per_epoch)
    merged = Tracer()
    for record in records:
        merged.events.extend(record.spans)

    paths: List[str] = []
    if merged.events or registry is not None or audit is not None:
        jsonl_path = os.path.join(out_dir, f"{name}.telemetry.jsonl")
        write_jsonl(
            jsonl_path,
            registry=registry,
            tracer=merged if merged.events else None,
            audit=audit,
        )
        paths.append(jsonl_path)
    if records:
        trace_path = os.path.join(out_dir, f"{name}.trace.json")
        write_combined_chrome_trace(trace_path, records, job=name)
        paths.append(trace_path)
    if registry is not None:
        prom_path = os.path.join(out_dir, f"{name}.metrics.prom")
        with open(prom_path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(render_prometheus(registry))
        paths.append(prom_path)
    return paths
