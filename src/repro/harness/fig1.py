"""Figure 1: the preprocessing-pipeline analysis (paper section 2).

- 1a: per-sample size through the pipeline stages;
- 1b: fraction of samples smallest in raw form vs an intermediate stage;
- 1c: offloading-efficiency distribution (see repro.core.efficiency);
- 1d: GPU utilization across models under a constrained link.
"""

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import TrainerSim
from repro.core.profiler import StageTwoProfiler
from repro.data.dataset import Dataset
from repro.parallel import ParallelSpec
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.preprocessing.records import SampleRecord
from repro.utils.tables import render_table
from repro.workloads.models import get_model_profile


@dataclasses.dataclass(frozen=True)
class SizeTrace:
    """Figure 1a data for one sample."""

    sample_id: int
    stage_names: Tuple[str, ...]  # "raw" + op names
    stage_sizes: Tuple[int, ...]

    @property
    def min_stage(self) -> int:
        return min(range(len(self.stage_sizes)), key=lambda k: (self.stage_sizes[k], k))

    def render(self) -> str:
        rows = [
            (name, size, "<- min" if k == self.min_stage else "")
            for k, (name, size) in enumerate(zip(self.stage_names, self.stage_sizes))
        ]
        return render_table(("Stage", "Bytes", ""), rows)


def size_trace(
    dataset: Dataset,
    sample_id: int,
    pipeline: Optional[Pipeline] = None,
    seed: int = 0,
) -> SizeTrace:
    """Stage-by-stage sizes for one sample (Figure 1a)."""
    if pipeline is None:
        pipeline = standard_pipeline()
    meta = dataset.raw_meta(sample_id)
    sizes = pipeline.stage_sizes(meta, seed=seed, epoch=0, sample_id=sample_id)
    return SizeTrace(
        sample_id=sample_id,
        stage_names=("raw",) + tuple(pipeline.op_names),
        stage_sizes=tuple(sizes),
    )


def representative_samples(dataset: Dataset, pipeline: Optional[Pipeline] = None, seed: int = 0) -> Tuple[int, int]:
    """(sample A, sample B): one that shrinks mid-pipeline, one smallest raw.

    Mirrors the paper's Figure 1a exhibit.  Raises if the dataset lacks one
    of the two populations.
    """
    if pipeline is None:
        pipeline = standard_pipeline()
    shrinks = smallest_raw = None
    for sample_id in dataset.sample_ids():
        trace = size_trace(dataset, sample_id, pipeline, seed=seed)
        if trace.min_stage > 0 and shrinks is None:
            shrinks = sample_id
        if trace.min_stage == 0 and smallest_raw is None:
            smallest_raw = sample_id
        if shrinks is not None and smallest_raw is not None:
            return shrinks, smallest_raw
    raise ValueError(
        "dataset lacks one of the two Figure-1a populations "
        f"(shrinking: {shrinks}, smallest-raw: {smallest_raw})"
    )


def minstage_fractions(
    dataset: Dataset,
    pipeline: Optional[Pipeline] = None,
    seed: int = 0,
    records: Optional[Sequence[SampleRecord]] = None,
    parallel: ParallelSpec = None,
) -> Dict[str, float]:
    """Figure 1b: where samples reach their minimum size.

    Returns fractions keyed by "raw" and by op name of the minimum stage.
    """
    if pipeline is None:
        pipeline = standard_pipeline()
    if records is None:
        records = StageTwoProfiler().profile(dataset, pipeline, seed=seed, parallel=parallel)
    names = ["raw"] + pipeline.op_names
    counts = {name: 0 for name in names}
    for record in records:
        counts[names[record.min_stage]] += 1
    total = max(1, len(records))
    return {name: counts[name] / total for name in names}


def benefit_fraction(fractions: Dict[str, float]) -> float:
    """Fraction of samples that shrink at some intermediate stage."""
    return 1.0 - fractions.get("raw", 0.0)


def gpu_utilization_by_model(
    dataset: Dataset,
    spec: ClusterSpec,
    models: Sequence[str] = ("resnet50", "resnet18", "alexnet"),
    gpu: str = "v100",
    pipeline: Optional[Pipeline] = None,
    seed: int = 0,
) -> List[Tuple[str, float]]:
    """Figure 1d: measured GPU utilization, no offloading, per model."""
    if pipeline is None:
        pipeline = standard_pipeline()
    results = []
    for model_name in models:
        profile = get_model_profile(model_name, gpu)
        trainer = TrainerSim(
            dataset=dataset, pipeline=pipeline, model=profile, spec=spec, seed=seed
        )
        stats = trainer.run_epoch(splits=None, epoch=0)
        results.append((model_name, stats.gpu_utilization))
    return results
