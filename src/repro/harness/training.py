"""Multi-epoch training runs with on-the-fly profiling (paper section 3.1).

The paper's profiling discipline: "we proceed with the first training
epoch without offloading any preprocessing tasks and collect essential
per-sample metrics" -- so profiling costs nothing beyond training epoch 1
at No-Off speed, and the plan pays off over the remaining epochs ("a
typical training job spans over 50 epochs").  :class:`TrainingRun` plays
that out: epoch 0 runs unoffloaded (the profiling epoch), the policy plans
from epoch-0 records, and every later epoch runs under the plan.
"""

import dataclasses
from typing import List, Optional, Tuple

from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import EpochStats, TrainerSim
from repro.core.plan import OffloadPlan
from repro.core.policy import Policy, PolicyContext
from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.workloads.models import ModelProfile, get_model_profile


@dataclasses.dataclass
class TrainingRunResult:
    """Outcome of a multi-epoch run."""

    policy_name: str
    plan: OffloadPlan
    per_epoch: List[EpochStats]

    @property
    def num_epochs(self) -> int:
        return len(self.per_epoch)

    @property
    def profile_epoch_time_s(self) -> float:
        """Epoch 0: the unoffloaded profiling epoch."""
        return self.per_epoch[0].epoch_time_s

    @property
    def steady_epoch_time_s(self) -> float:
        """A post-plan epoch (the last one)."""
        return self.per_epoch[-1].epoch_time_s

    @property
    def total_time_s(self) -> float:
        return sum(stats.epoch_time_s for stats in self.per_epoch)

    @property
    def total_traffic_bytes(self) -> int:
        return sum(stats.traffic_bytes for stats in self.per_epoch)

    def instrumented_epochs(self) -> List[Tuple[int, EpochStats]]:
        """(epoch, stats) pairs, the combined-trace emitters' input shape."""
        return list(enumerate(self.per_epoch))

    def speedup_over(self, baseline: "TrainingRunResult") -> float:
        """End-to-end job speedup vs another run of equal epoch count."""
        if baseline.num_epochs != self.num_epochs:
            raise ValueError(
                f"epoch counts differ: {self.num_epochs} vs {baseline.num_epochs}"
            )
        return baseline.total_time_s / self.total_time_s


class TrainingRun:
    """Drive a full training job: profile on epoch 0, plan, then train."""

    def __init__(
        self,
        dataset: Dataset,
        policy: Policy,
        spec: ClusterSpec,
        model: Optional[ModelProfile] = None,
        pipeline: Optional[Pipeline] = None,
        batch_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.policy = policy
        self.spec = spec
        self.model = model if model is not None else get_model_profile("alexnet")
        self.pipeline = pipeline if pipeline is not None else standard_pipeline()
        self.batch_size = batch_size
        self.seed = seed

    def run(
        self,
        epochs: int,
        record_spans: bool = False,
        record_timeline: bool = False,
    ) -> TrainingRunResult:
        """Simulate ``epochs`` epochs (>= 2: one to profile, rest planned).

        record_spans / record_timeline: per-epoch telemetry, one tracer
        and/or timeline per epoch on ``per_epoch[i]``; the simulated
        schedules are byte-identical either way.
        """
        if epochs < 2:
            raise ValueError(f"need >= 2 epochs (1 profiles), got {epochs}")

        context = PolicyContext(
            dataset=self.dataset,
            pipeline=self.pipeline,
            spec=self.spec,
            model=self.model,
            batch_size=self.batch_size,
            seed=self.seed,
        )
        trainer = TrainerSim(
            dataset=self.dataset,
            pipeline=self.pipeline,
            model=self.model,
            spec=self.spec,
            batch_size=context.effective_batch_size,
            seed=self.seed,
        )

        per_epoch = [
            trainer.run_epoch(
                splits=None, epoch=0,
                record_spans=record_spans, record_timeline=record_timeline,
            )
        ]  # profiling epoch
        plan = self.policy.plan(context).clamped_for(self.spec)
        for epoch in range(1, epochs):
            per_epoch.append(
                trainer.run_epoch(
                    list(plan.splits), epoch=epoch,
                    record_spans=record_spans, record_timeline=record_timeline,
                )
            )

        return TrainingRunResult(
            policy_name=self.policy.name, plan=plan, per_epoch=per_epoch
        )
