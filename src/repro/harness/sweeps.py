"""Generic grid sweeps over cluster parameters.

Figure 4 sweeps storage cores; the extension benches sweep bandwidth and
CPU factors.  This module generalizes the pattern: a cartesian grid over
any :class:`ClusterSpec` fields, every policy re-planned at every point,
results in tidy rows exportable as CSV.
"""

import dataclasses
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.spec import ClusterSpec
from repro.core.policy import Policy
from repro.data.dataset import Dataset
from repro.harness.export import series_to_csv
from repro.harness.runner import ExperimentResult, compare_policies
from repro.utils.tables import render_table

_SPEC_FIELDS = {field.name for field in dataclasses.fields(ClusterSpec)}


def spec_grid(
    base: ClusterSpec, axes: Dict[str, Sequence]
) -> Iterator[Tuple[Dict[str, object], ClusterSpec]]:
    """Yield (point, spec) for the cartesian product of the axes.

    axes: maps ClusterSpec field names to the values to sweep.
    """
    for name in axes:
        if name not in _SPEC_FIELDS:
            raise ValueError(
                f"{name!r} is not a ClusterSpec field; options: {sorted(_SPEC_FIELDS)}"
            )
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        point = dict(zip(names, combo))
        yield point, dataclasses.replace(base, **point)


@dataclasses.dataclass
class SweepRow:
    """One (grid point, policy) measurement."""

    point: Dict[str, object]
    result: ExperimentResult

    @property
    def policy(self) -> str:
        return self.result.policy_name


@dataclasses.dataclass
class SweepTable:
    """All rows of a grid sweep, with render/CSV helpers."""

    axes: List[str]
    rows: List[SweepRow]

    def filter(self, policy: str) -> List[SweepRow]:
        return [row for row in self.rows if row.policy == policy]

    def render(self) -> str:
        header = tuple(self.axes) + ("policy", "epoch_s", "traffic_mb", "offloaded")
        body = [
            tuple(row.point[a] for a in self.axes)
            + (
                row.policy,
                f"{row.result.epoch_time_s:.2f}",
                f"{row.result.traffic_bytes / 1e6:.1f}",
                row.result.plan.num_offloaded,
            )
            for row in self.rows
        ]
        return render_table(header, body)

    def to_csv(self) -> str:
        header = list(self.axes) + [
            "policy", "epoch_time_s", "traffic_bytes", "offloaded_samples",
        ]
        body = [
            [row.point[a] for a in self.axes]
            + [
                row.policy,
                f"{row.result.epoch_time_s:.6f}",
                row.result.traffic_bytes,
                row.result.plan.num_offloaded,
            ]
            for row in self.rows
        ]
        return series_to_csv(header, body)


def grid_sweep(
    dataset: Dataset,
    base_spec: ClusterSpec,
    axes: Dict[str, Sequence],
    policies: Optional[Sequence[Policy]] = None,
    seed: int = 0,
    batch_size: Optional[int] = None,
) -> SweepTable:
    """Run every policy at every grid point (policies re-plan per point)."""
    rows: List[SweepRow] = []
    for point, spec in spec_grid(base_spec, axes):
        results = compare_policies(
            dataset, spec, policies=policies, seed=seed, batch_size=batch_size
        )
        rows.extend(SweepRow(point=dict(point), result=r) for r in results)
    return SweepTable(axes=list(axes), rows=rows)
