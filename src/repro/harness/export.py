"""CSV export of figure data (for external plotting tools).

Each writer mirrors one regenerator's output as tidy CSV: one row per
(policy, configuration) measurement, columns in stable order.
"""

import csv
import io
from typing import Sequence

from repro.harness.fig3 import PolicyComparison
from repro.harness.fig4 import CoreSweep


def comparison_to_csv(comparison: PolicyComparison) -> str:
    """Figure-3 style comparison as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "dataset",
            "policy",
            "epoch_time_s",
            "traffic_bytes",
            "traffic_vs_nooff",
            "gpu_utilization",
            "offloaded_samples",
        ]
    )
    base = comparison.by_policy()["no-off"].traffic_bytes
    for result in comparison.results:
        writer.writerow(
            [
                comparison.dataset_name,
                result.policy_name,
                f"{result.epoch_time_s:.6f}",
                result.traffic_bytes,
                f"{result.traffic_bytes / base:.6f}",
                f"{result.gpu_utilization:.6f}",
                result.plan.num_offloaded,
            ]
        )
    return buffer.getvalue()


def sweep_to_csv(sweep: CoreSweep) -> str:
    """Figure-4 style core sweep as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "dataset",
            "storage_cores",
            "policy",
            "epoch_time_s",
            "traffic_bytes",
            "offloaded_samples",
        ]
    )
    for cores in sweep.cores:
        for policy, result in sweep.results[cores].items():
            writer.writerow(
                [
                    sweep.dataset_name,
                    cores,
                    policy,
                    f"{result.epoch_time_s:.6f}",
                    result.traffic_bytes,
                    result.plan.num_offloaded,
                ]
            )
    return buffer.getvalue()


def series_to_csv(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Generic tidy-CSV writer for ad-hoc series."""
    if any(len(row) != len(header) for row in rows):
        raise ValueError("every row must match the header length")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(header))
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(text: str, path: str) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(text)
