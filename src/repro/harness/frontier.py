"""The traffic-vs-fidelity frontier: what degrading buys under pressure.

The new scenario axis from *Progressive Compressed Records* (PAPERS.md):
re-encode a dataset's raw objects as progressive streams, then sweep the
fidelity planner's quality floor and record, at each floor, how much
traffic the plan ships and how much fidelity it gives up.  Relaxing the
floor can only shed bytes (truncation is monotone), so the sweep traces a
frontier; ``sophon-repro frontier`` renders it as a table and JSON in one
invocation.
"""

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.spec import ClusterSpec, standard_cluster
from repro.codec.progressive import (
    ProgressiveCodecConfig,
    ProgressiveJpegCodec,
    scan_prefix_metrics,
    scan_sizes,
)
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.fidelity import FidelityConfig, FidelityPlanner
from repro.core.plan import OffloadPlan
from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.preprocessing.records import ProgressiveSampleRecord, build_record
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds
from repro.workloads.models import get_model_profile

#: Quality floors swept by default, from "barely degrade" to "anything
#: decodable goes"; None is the fidelity-free baseline point.
DEFAULT_FLOORS: Tuple[Optional[float], ...] = (None, 45.0, 40.0, 35.0, 30.0, 25.0)


def build_progressive_records(
    dataset: Dataset,
    pipeline: Optional[Pipeline] = None,
    seed: int = 0,
    codec: Optional[ProgressiveJpegCodec] = None,
) -> List[ProgressiveSampleRecord]:
    """Profile ``dataset`` with its raw objects re-encoded progressively.

    Each sample's stored bytes are decoded and re-encoded with ``codec``,
    so the record's raw stage size is the progressive stream's size and
    its scan ladder (cumulative prefix sizes, prefix PSNRs vs. the full
    decode) comes from the actual stream.  Downstream stage sizes and op
    costs are profiled exactly as for plain records -- they depend on the
    decoded image, which the full progressive stream reproduces.
    """
    if not dataset.is_materialized:
        raise ValueError("progressive profiling needs a materialized dataset")
    if pipeline is None:
        pipeline = standard_pipeline()
    if codec is None:
        codec = ProgressiveJpegCodec(ProgressiveCodecConfig())
    records: List[ProgressiveSampleRecord] = []
    for sample_id in dataset.sample_ids():
        base = build_record(
            pipeline, dataset.raw_meta(sample_id), sample_id, seed=seed
        )
        # decode() delegates baseline (TJPG) streams, so either stored
        # format re-encodes cleanly.
        image = codec.decode(dataset.raw_payload(sample_id).data)
        stream = codec.encode(image)
        fidelities = scan_prefix_metrics(stream, codec)
        records.append(
            ProgressiveSampleRecord(
                sample_id=sample_id,
                stage_sizes=(len(stream),) + base.stage_sizes[1:],
                op_costs=base.op_costs,
                scan_sizes=scan_sizes(stream),
                scan_psnr_db=tuple(f.psnr_db for f in fidelities),
            )
        )
    return records


@dataclasses.dataclass(frozen=True)
class FrontierPoint:
    """One quality floor's outcome on the traffic-vs-fidelity frontier."""

    #: PSNR floor in dB; None is the fidelity-free baseline.
    min_psnr_db: Optional[float]
    traffic_bytes: int
    saved_bytes: int
    offloaded_samples: int
    degraded_samples: int
    #: Lowest PSNR any shipped sample was degraded to (None: none degraded).
    worst_psnr_db: Optional[float]
    epoch_estimate_s: float
    bottleneck: str
    network_bound: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_psnr_db": self.min_psnr_db,
            "traffic_bytes": self.traffic_bytes,
            "saved_bytes": self.saved_bytes,
            "offloaded_samples": self.offloaded_samples,
            "degraded_samples": self.degraded_samples,
            "worst_psnr_db": self.worst_psnr_db,
            "epoch_estimate_s": self.epoch_estimate_s,
            "bottleneck": self.bottleneck,
            "network_bound": self.network_bound,
        }


@dataclasses.dataclass
class FidelityFrontier:
    """The swept frontier plus enough provenance to reproduce it."""

    dataset_name: str
    num_samples: int
    gpu_time_s: float
    spec: ClusterSpec
    points: List[FrontierPoint]

    def render(self) -> str:
        rows = []
        for point in self.points:
            floor = (
                "off" if point.min_psnr_db is None else f"{point.min_psnr_db:.0f}dB"
            )
            worst = (
                "-" if point.worst_psnr_db is None else f"{point.worst_psnr_db:.1f}dB"
            )
            rows.append(
                (
                    floor,
                    format_bytes(point.traffic_bytes),
                    format_bytes(point.saved_bytes),
                    point.offloaded_samples,
                    point.degraded_samples,
                    worst,
                    format_seconds(point.epoch_estimate_s),
                    point.bottleneck,
                )
            )
        title = (
            f"[{self.dataset_name}] traffic-vs-fidelity frontier "
            f"({self.num_samples} samples, "
            f"{self.spec.bandwidth_mbps:.0f} Mbps link)"
        )
        table = render_table(
            (
                "Floor",
                "Traffic",
                "Saved",
                "Offloaded",
                "Degraded",
                "WorstPSNR",
                "Epoch",
                "Bottleneck",
            ),
            rows,
        )
        return f"{title}\n{table}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": "fidelity-frontier",
                "version": 1,
                "dataset": self.dataset_name,
                "num_samples": self.num_samples,
                "gpu_time_s": self.gpu_time_s,
                "bandwidth_mbps": self.spec.bandwidth_mbps,
                "storage_cores": self.spec.storage_cores,
                "points": [p.to_dict() for p in self.points],
            },
            indent=2,
        )


def _point(
    floor: Optional[float],
    plan: OffloadPlan,
    records: Sequence[ProgressiveSampleRecord],
    overhead_bytes: int,
) -> FrontierPoint:
    traffic = plan.expected_traffic_bytes(records, overhead_bytes=overhead_bytes)
    full = sum(r.raw_size for r in records) + overhead_bytes * len(records)
    degraded_psnrs = [
        record.psnr_at(count)
        for record, count in zip(records, plan.scan_counts or [None] * len(records))
        if count is not None
    ]
    assert plan.expected is not None
    return FrontierPoint(
        min_psnr_db=floor,
        traffic_bytes=traffic,
        saved_bytes=full - traffic,
        offloaded_samples=plan.num_offloaded,
        degraded_samples=plan.num_degraded,
        worst_psnr_db=min(degraded_psnrs) if degraded_psnrs else None,
        epoch_estimate_s=plan.expected.epoch_time_s,
        bottleneck=plan.expected.bottleneck.value,
        network_bound=plan.expected.network_bound,
    )


def fidelity_frontier(
    dataset: Dataset,
    spec: Optional[ClusterSpec] = None,
    floors: Sequence[Optional[float]] = DEFAULT_FLOORS,
    seed: int = 0,
    gpu_time_s: Optional[float] = None,
    pipeline: Optional[Pipeline] = None,
    records: Optional[Sequence[ProgressiveSampleRecord]] = None,
) -> FidelityFrontier:
    """Sweep fidelity floors against one cluster spec.

    Records are profiled once (or passed in) and shared across floors --
    only the planner re-runs per point.  ``floors`` entries are PSNR
    minima in dB; ``None`` plans without the fidelity axis, anchoring the
    frontier at full fidelity.
    """
    if spec is None:
        # The frontier is about bandwidth pressure: default to a tight link
        # so the fidelity pass actually has traffic to shed.
        spec = standard_cluster().with_bandwidth(50.0)
    if records is None:
        records = build_progressive_records(dataset, pipeline=pipeline, seed=seed)
    if gpu_time_s is None:
        gpu_time_s = get_model_profile("alexnet", "rtx6000").epoch_gpu_time_s(
            len(records)
        )
    engine = DecisionEngine(DecisionConfig())
    points: List[FrontierPoint] = []
    for floor in floors:
        config = (
            FidelityConfig(enabled=False)
            if floor is None
            else FidelityConfig(min_psnr_db=floor)
        )
        plan = FidelityPlanner(engine, config).plan(records, spec, gpu_time_s)
        points.append(
            _point(floor, plan, records, overhead_bytes=spec.response_overhead_bytes)
        )
    return FidelityFrontier(
        dataset_name=dataset.name,
        num_samples=len(records),
        gpu_time_s=gpu_time_s,
        spec=spec,
        points=points,
    )
