"""Compute-side sample caching (the related-work alternative, paper §1).

The paper positions SOPHON against approaches that "selectively cache data
in local storage or memory", noting they are "limited by the capacities of
local storage and memory".  This package implements that alternative so the
comparison can actually be run:

- :class:`ByteCache` with pluggable eviction (:class:`LruPolicy`,
  :class:`FifoPolicy`, :class:`LfuPolicy`) over a byte budget;
- :class:`CachingFetcher` -- a loader-compatible fetcher that caches *raw*
  samples only (caching augmented payloads would freeze the random
  augmentations, the accuracy hazard of section 3.3);
- :func:`epoch_traffic_with_cache` -- epoch-by-epoch traffic of a cached
  training run, with or without a SOPHON offload plan layered on top.
"""

from repro.cache.core import (
    ByteCache,
    CacheStats,
    EvictionPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
)
from repro.cache.fetcher import CachingFetcher
from repro.cache.baseline import (
    epoch_traffic_with_cache,
    epoch_traffic_with_pinned_cache,
)

__all__ = [
    "ByteCache",
    "CacheStats",
    "CachingFetcher",
    "EvictionPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "LruPolicy",
    "epoch_traffic_with_cache",
    "epoch_traffic_with_pinned_cache",
]
