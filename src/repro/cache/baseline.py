"""Epoch-by-epoch traffic of cached training runs (the caching baseline).

Simulates the network traffic of training with a compute-side raw-sample
cache, optionally combined with a SOPHON offload plan (offloaded samples
bypass the cache: their payloads are augmentation-bearing and must be
re-fetched every epoch; raw-fetched samples hit the cache).
"""

from typing import List, Optional, Sequence

from repro.cache.core import ByteCache, EvictionPolicy, LruPolicy
from repro.data.dataset import Dataset
from repro.data.sampler import RandomSampler, Sampler
from repro.preprocessing.records import SampleRecord


def epoch_traffic_with_cache(
    dataset: Dataset,
    capacity_bytes: int,
    epochs: int,
    splits: Optional[Sequence[int]] = None,
    records: Optional[Sequence[SampleRecord]] = None,
    sampler: Optional[Sampler] = None,
    policy: Optional[EvictionPolicy] = None,
    overhead_bytes: int = 0,
    seed: int = 0,
) -> List[int]:
    """Per-epoch bytes fetched over the network.

    splits: optional SOPHON plan; a sample with split > 0 ships its
        (per-epoch-fresh) partially preprocessed payload and is never
        cached.  ``records`` must be provided alongside to size those
        payloads.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if splits is not None and records is None:
        raise ValueError("records are required when a plan is given")
    if splits is not None and len(splits) != len(dataset):
        raise ValueError(
            f"splits has {len(splits)} entries, dataset has {len(dataset)}"
        )
    if sampler is None:
        sampler = RandomSampler(len(dataset), seed=seed)
    cache = ByteCache(capacity_bytes, policy if policy is not None else LruPolicy())

    traffic: List[int] = []
    for epoch in range(epochs):
        fetched = 0
        for sample_id in sampler.epoch_order(epoch):
            split = 0 if splits is None else splits[sample_id]
            if split > 0:
                fetched += records[sample_id].size_at(split) + overhead_bytes
                continue
            size = dataset.raw_meta(sample_id).nbytes
            if cache.get(sample_id, size_hint=size) is None:
                fetched += size + overhead_bytes
                cache.put(sample_id, True, size)
        traffic.append(fetched)
    return traffic


def epoch_traffic_with_pinned_cache(
    dataset: Dataset,
    capacity_bytes: int,
    epochs: int,
    overhead_bytes: int = 0,
) -> List[int]:
    """Traffic of a *selective* (pinned) cache, Quiver-style.

    LRU thrashes under the per-epoch random permutations of DL training
    (an item survives only if it sat late in one epoch and early in the
    next), so the related work pins a chosen subset instead.  Pinning the
    largest samples that fit maximizes bytes served locally; steady-state
    traffic is then exactly ``total - pinned`` -- the "limited by
    capacity" ceiling the paper contrasts SOPHON against.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    sizes = [(dataset.raw_meta(i).nbytes, i) for i in dataset.sample_ids()]
    sizes.sort(reverse=True)
    pinned = set()
    used = 0
    for size, sample_id in sizes:
        if used + size <= capacity_bytes:
            pinned.add(sample_id)
            used += size

    total = sum(size for size, _ in sizes)
    unpinned = total - used + overhead_bytes * (len(sizes) - len(pinned))
    first = total + overhead_bytes * len(sizes)  # cold start fills the pins
    return [first] + [unpinned] * (epochs - 1)
