"""Loader-compatible fetcher with a raw-sample cache.

Only raw (split 0) payloads are cached: a raw sample is immutable, while
any partially preprocessed payload embeds that epoch's random
augmentations -- reusing it across epochs is exactly the accuracy hazard
the paper's section 3.3 warns about, so this fetcher refuses to cache it.
"""

from repro.cache.core import ByteCache
from repro.preprocessing.payload import Payload


class CachingFetcher:
    """Wraps another fetcher; serves raw hits from the local cache."""

    def __init__(self, inner, cache: ByteCache) -> None:
        self.inner = inner
        self.cache = cache

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        if split != 0:
            # Partially preprocessed payloads are epoch-specific: always
            # fetch, never cache.
            return self.inner.fetch(sample_id, epoch, split)
        cached = self.cache.get(sample_id)
        if cached is not None:
            return cached
        payload = self.inner.fetch(sample_id, epoch, split)
        self.cache.put(sample_id, payload, payload.nbytes)
        return payload
