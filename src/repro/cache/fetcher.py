"""Loader-compatible fetcher with a raw-sample cache.

Only raw (split 0) payloads are cached: a raw sample is immutable, while
any partially preprocessed payload embeds that epoch's random
augmentations -- reusing it across epochs is exactly the accuracy hazard
the paper's section 3.3 warns about, so this fetcher refuses to cache it.
"""

from typing import Optional

from repro.cache.core import ByteCache
from repro.preprocessing.payload import Payload
from repro.rpc.fetcher import SupportsFetch
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id


class CachingFetcher:
    """Wraps another fetcher; serves raw hits from the local cache."""

    def __init__(
        self,
        inner: SupportsFetch,
        cache: ByteCache,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.inner = inner
        self.cache = cache
        self.tracer = tracer
        # Resolved once per fetcher lifetime: fetch() is the hot path, and
        # a registry lookup per call is pure overhead.
        self._requests = get_default_registry().counter(
            "cache_requests_total",
            "fetches through CachingFetcher by result",
            labels=["result"],
        )

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        requests = self._requests
        if split != 0:
            # Partially preprocessed payloads are epoch-specific: always
            # fetch, never cache.
            requests.inc(result="bypass")
            return self.inner.fetch(sample_id, epoch, split)
        cached = self.cache.get(sample_id)
        if cached is not None:
            requests.inc(result="hit")
            if self.tracer is not None:
                self.tracer.instant(trace_id(sample_id, epoch), "cache.hit")
            return cached
        requests.inc(result="miss")
        if self.tracer is not None:
            self.tracer.instant(trace_id(sample_id, epoch), "cache.miss")
        payload = self.inner.fetch(sample_id, epoch, split)
        self.cache.put(sample_id, payload, payload.nbytes)
        return payload
