"""Byte-budgeted cache with pluggable eviction policies."""

import abc
import collections
import dataclasses
from typing import Any, Dict, Hashable, Optional


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting in both lookups and bytes."""

    hits: int = 0
    misses: int = 0
    bytes_hit: int = 0
    bytes_missed: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class EvictionPolicy(abc.ABC):
    """Chooses which resident key to evict."""

    @abc.abstractmethod
    def on_insert(self, key: Hashable) -> None:
        """A key became resident."""

    @abc.abstractmethod
    def on_access(self, key: Hashable) -> None:
        """A resident key was hit."""

    @abc.abstractmethod
    def on_evict(self, key: Hashable) -> None:
        """A key left the cache (evicted or invalidated)."""

    @abc.abstractmethod
    def victim(self) -> Hashable:
        """The key to evict next; only called when non-empty."""


class LruPolicy(EvictionPolicy):
    """Evict the least recently used key."""

    def __init__(self) -> None:
        self._order: "collections.OrderedDict[Hashable, None]" = collections.OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_evict(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))


class FifoPolicy(EvictionPolicy):
    """Evict in insertion order, ignoring hits."""

    def __init__(self) -> None:
        self._order: "collections.OrderedDict[Hashable, None]" = collections.OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        pass

    def on_evict(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Hashable:
        return next(iter(self._order))


class LfuPolicy(EvictionPolicy):
    """Evict the least frequently used key (FIFO among ties)."""

    def __init__(self) -> None:
        self._counts: "collections.OrderedDict[Hashable, int]" = collections.OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        self._counts[key] = 1

    def on_access(self, key: Hashable) -> None:
        self._counts[key] += 1

    def on_evict(self, key: Hashable) -> None:
        self._counts.pop(key, None)

    def victim(self) -> Hashable:
        return min(self._counts, key=lambda k: self._counts[k])


class ByteCache:
    """Maps keys to values under a total byte budget.

    Values carry an explicit size; inserting evicts victims until the new
    value fits.  A value larger than the whole budget is simply not
    admitted (counted as an eviction-less miss on later lookups).
    """

    def __init__(self, capacity_bytes: int, policy: Optional[EvictionPolicy] = None) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy if policy is not None else LruPolicy()
        self._values: Dict[Hashable, Any] = {}
        self._sizes: Dict[Hashable, int] = {}
        self._used = 0
        self.stats = CacheStats()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Hashable, size_hint: int = 0) -> Optional[Any]:
        """Look up a key; records a hit or a miss (of ``size_hint`` bytes)."""
        if key in self._values:
            self.stats.hits += 1
            self.stats.bytes_hit += self._sizes[key]
            self.policy.on_access(key)
            return self._values[key]
        self.stats.misses += 1
        self.stats.bytes_missed += size_hint
        return None

    def put(self, key: Hashable, value: Any, size: int) -> bool:
        """Insert a value of ``size`` bytes; returns False if not admitted."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if key in self._values:
            self._remove(key)
        if size > self.capacity_bytes:
            return False
        while self._used + size > self.capacity_bytes:
            self._evict_one()
        self._values[key] = value
        self._sizes[key] = size
        self._used += size
        self.policy.on_insert(key)
        return True

    def invalidate(self, key: Hashable) -> None:
        if key in self._values:
            self._remove(key)

    def _remove(self, key: Hashable) -> None:
        self._used -= self._sizes.pop(key)
        del self._values[key]
        self.policy.on_evict(key)

    def _evict_one(self) -> None:
        victim = self.policy.victim()
        self.stats.evictions += 1
        self._remove(victim)
