"""SOPHON's decision engine (paper section 3.2).

Starting from the no-offload baseline (T_Net predominant, T_CS = 0), the
engine repeatedly selects the remaining sample with the highest offloading
efficiency -- bytes saved per CPU-second of offloaded work -- moving that
sample's pipeline prefix to the storage node.  Selection stops when either

1. T_Net ceases to be the predominant metric, or
2. no samples with positive efficiency remain.

An optional ``never_worsen`` guard additionally skips a sample whose
addition would *raise* the analytic epoch estimate (a prefix so expensive
that T_CS overshoots the network time it saves); this keeps the plan
monotone under severe storage-CPU scarcity and is ablated in the extension
benchmarks.
"""

import dataclasses
import logging
from typing import Optional, Sequence, Tuple

from repro.cluster.epoch_model import EpochEstimate, EpochMetrics, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.core.plan import OffloadPlan
from repro.preprocessing.records import SampleRecord
from repro.telemetry.audit import (
    NOT_BENEFICIAL,
    OFFLOADED,
    PLANNING_STOPPED,
    SKIPPED_WOULD_WORSEN,
    AuditLog,
    BudgetState,
    CandidateSplit,
    DecisionRecord,
)
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id

logger = logging.getLogger(__name__)


def _candidate_splits(record: SampleRecord) -> Tuple[CandidateSplit, ...]:
    """Every split the engine could have chosen, as the profiler costed it."""
    return tuple(
        CandidateSplit(
            split=split,
            size_bytes=record.size_at(split),
            prefix_cpu_s=record.prefix_cost(split),
            savings_bytes=record.savings(split),
        )
        for split in range(record.num_ops + 1)
    )


def _budget_state(
    accepted: int, metrics: EpochMetrics, estimate: EpochEstimate
) -> BudgetState:
    return BudgetState(
        accepted_samples=accepted,
        epoch_estimate_s=estimate.epoch_time_s,
        bottleneck=estimate.bottleneck.value,
        network_bound=estimate.network_bound,
        storage_cpu_s=metrics.storage_cpu_s,
        traffic_bytes=metrics.traffic_bytes,
    )


@dataclasses.dataclass(frozen=True)
class DecisionConfig:
    """Engine knobs.

    never_worsen: skip samples whose offload would raise the epoch estimate.
    epsilon_s: tolerance when comparing epoch estimates.
    order: candidate ranking -- "efficiency" (the paper's bytes saved per
        CPU-second), "savings" (absolute bytes saved; ignores CPU cost), or
        "arrival" (sample-id order; no ranking at all).  The alternatives
        exist for the Finding-#4 ablation: under storage-CPU scarcity,
        efficiency ordering wins.
    """

    never_worsen: bool = True
    epsilon_s: float = 1e-9
    order: str = "efficiency"

    _ORDERS = ("efficiency", "savings", "arrival")

    def __post_init__(self) -> None:
        if self.order not in self._ORDERS:
            raise ValueError(
                f"order must be one of {self._ORDERS}, got {self.order!r}"
            )


class DecisionEngine:
    """Greedy efficiency-ordered sample selection against the epoch model."""

    def __init__(self, config: DecisionConfig = DecisionConfig()) -> None:
        self.config = config

    def plan(
        self,
        records: Sequence[SampleRecord],
        spec: ClusterSpec,
        gpu_time_s: float,
        overhead_bytes: Optional[int] = None,
        audit: Optional[AuditLog] = None,
        tracer: Optional[Tracer] = None,
    ) -> OffloadPlan:
        """Build the offload plan for one epoch's worth of records.

        gpu_time_s: the epoch's T_G (from the stage-one GPU probe).
        overhead_bytes: per-response protocol framing; defaults to the
            cluster spec's value.
        audit: when given, receives one :class:`DecisionRecord` per sample
            explaining its outcome (the ``sophon-repro audit`` data source).
        tracer: when given, each sample's decision is emitted as an instant
            event on its epoch-0 trace (the plan applies to every epoch).
        """
        num_samples = len(records)
        if any(r.sample_id != i for i, r in enumerate(records)):
            raise ValueError(
                "records must be ordered by sample id covering 0..n-1 "
                "(as produced by the stage-two profiler)"
            )
        if overhead_bytes is None:
            overhead_bytes = spec.response_overhead_bytes

        outcomes = get_default_registry().counter(
            "decision_outcomes_total",
            "per-sample offload decisions by outcome",
            labels=["outcome"],
        )

        def note(
            record: SampleRecord,
            chosen: int,
            outcome: str,
            reason: str,
            budget: Optional[BudgetState] = None,
            rank: Optional[int] = None,
        ) -> None:
            outcomes.inc(outcome=outcome)
            if audit is not None:
                audit.add(
                    DecisionRecord(
                        sample_id=record.sample_id,
                        candidates=_candidate_splits(record),
                        chosen_split=chosen,
                        best_split=record.min_stage,
                        efficiency=record.offload_efficiency,
                        efficiency_rank=rank,
                        outcome=outcome,
                        reason=reason,
                        budget=budget,
                    )
                )
            if tracer is not None:
                tracer.instant(
                    trace_id(record.sample_id, 0),
                    "decision",
                    outcome=outcome,
                    split=chosen,
                    reason=reason,
                )

        if not spec.can_offload:
            reason = "storage node has no CPU cores for offloading"
            for record in records:
                note(record, 0, PLANNING_STOPPED, reason)
            return OffloadPlan.no_offload(num_samples, reason=reason)

        model = EpochModel(spec)
        splits = [0] * num_samples

        # Baseline: everything fetched raw, all preprocessing local.
        metrics = EpochMetrics(
            gpu_time_s=gpu_time_s,
            compute_cpu_s=sum(r.total_cost for r in records),
            storage_cpu_s=0.0,
            traffic_bytes=float(
                sum(r.raw_size for r in records) + overhead_bytes * num_samples
            ),
        )

        beneficial = [r for r in records if r.offload_efficiency > 0]
        if self.config.order == "efficiency":
            candidates = sorted(
                beneficial, key=lambda r: r.offload_efficiency, reverse=True
            )
        elif self.config.order == "savings":
            candidates = sorted(beneficial, key=lambda r: r.best_savings, reverse=True)
        else:  # arrival order
            candidates = sorted(beneficial, key=lambda r: r.sample_id)

        ranked = {r.sample_id: i + 1 for i, r in enumerate(candidates)}
        for record in records:
            if record.sample_id not in ranked:
                note(
                    record,
                    0,
                    NOT_BENEFICIAL,
                    "no split with positive offloading efficiency",
                )

        if not candidates:
            return OffloadPlan(
                splits=splits,
                reason="no samples with positive offloading efficiency",
                expected=model.estimate(metrics),
            )

        accepted = 0
        skipped = 0
        stopped_at = len(candidates)
        reason = "exhausted candidates with positive efficiency"
        for index, record in enumerate(candidates):
            estimate = model.estimate(metrics)
            if not estimate.network_bound:
                reason = (
                    "network no longer predominant (bottleneck: "
                    f"{estimate.bottleneck.value}) after {accepted} samples"
                )
                stopped_at = index
                break
            budget = _budget_state(accepted, metrics, estimate)
            split = record.min_stage
            moved_cpu = record.prefix_cost(split)
            # The prefix work moves from the compute node to the storage
            # node; the sample's remaining ops still run locally.
            trial = metrics.replace(
                compute_cpu_s=metrics.compute_cpu_s - moved_cpu,
                storage_cpu_s=metrics.storage_cpu_s + moved_cpu,
                traffic_bytes=metrics.traffic_bytes - record.savings(split),
            )
            if self.config.never_worsen:
                post = model.estimate(trial)
                if post.epoch_time_s > estimate.epoch_time_s + self.config.epsilon_s:
                    skipped += 1
                    note(
                        record,
                        0,
                        SKIPPED_WOULD_WORSEN,
                        "offload would raise the epoch estimate "
                        f"{estimate.epoch_time_s:.6f}s -> {post.epoch_time_s:.6f}s",
                        budget=budget,
                        rank=ranked[record.sample_id],
                    )
                    continue
            splits[record.sample_id] = split
            metrics = trial
            accepted += 1
            note(
                record,
                split,
                OFFLOADED,
                f"best remaining candidate (order={self.config.order}) "
                "while network-bound",
                budget=budget,
                rank=ranked[record.sample_id],
            )
        final_estimate = model.estimate(metrics)
        for record in candidates[stopped_at:]:
            note(
                record,
                0,
                PLANNING_STOPPED,
                reason,
                budget=_budget_state(accepted, metrics, final_estimate),
                rank=ranked[record.sample_id],
            )

        final = final_estimate
        note_text = f"offloaded {accepted}/{num_samples} samples"
        if skipped:
            note_text += f", skipped {skipped} (would worsen epoch estimate)"
        logger.info(
            "decision: %s; %s (expected epoch %.2fs, bottleneck %s)",
            note_text,
            reason,
            final.epoch_time_s,
            final.bottleneck.value,
        )
        return OffloadPlan(
            splits=splits, reason=f"{note_text}; {reason}", expected=final
        )
