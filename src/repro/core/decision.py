"""SOPHON's decision engine (paper section 3.2).

Starting from the no-offload baseline (T_Net predominant, T_CS = 0), the
engine repeatedly selects the remaining sample with the highest offloading
efficiency -- bytes saved per CPU-second of offloaded work -- moving that
sample's pipeline prefix to the storage node.  Selection stops when either

1. T_Net ceases to be the predominant metric, or
2. no samples with positive efficiency remain.

An optional ``never_worsen`` guard additionally skips a sample whose
addition would *raise* the analytic epoch estimate (a prefix so expensive
that T_CS overshoots the network time it saves); this keeps the plan
monotone under severe storage-CPU scarcity and is ablated in the extension
benchmarks.
"""

import dataclasses
import logging
from typing import Optional, Sequence

from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.core.plan import OffloadPlan
from repro.preprocessing.records import SampleRecord

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class DecisionConfig:
    """Engine knobs.

    never_worsen: skip samples whose offload would raise the epoch estimate.
    epsilon_s: tolerance when comparing epoch estimates.
    order: candidate ranking -- "efficiency" (the paper's bytes saved per
        CPU-second), "savings" (absolute bytes saved; ignores CPU cost), or
        "arrival" (sample-id order; no ranking at all).  The alternatives
        exist for the Finding-#4 ablation: under storage-CPU scarcity,
        efficiency ordering wins.
    """

    never_worsen: bool = True
    epsilon_s: float = 1e-9
    order: str = "efficiency"

    _ORDERS = ("efficiency", "savings", "arrival")

    def __post_init__(self) -> None:
        if self.order not in self._ORDERS:
            raise ValueError(
                f"order must be one of {self._ORDERS}, got {self.order!r}"
            )


class DecisionEngine:
    """Greedy efficiency-ordered sample selection against the epoch model."""

    def __init__(self, config: DecisionConfig = DecisionConfig()) -> None:
        self.config = config

    def plan(
        self,
        records: Sequence[SampleRecord],
        spec: ClusterSpec,
        gpu_time_s: float,
        overhead_bytes: Optional[int] = None,
    ) -> OffloadPlan:
        """Build the offload plan for one epoch's worth of records.

        gpu_time_s: the epoch's T_G (from the stage-one GPU probe).
        overhead_bytes: per-response protocol framing; defaults to the
            cluster spec's value.
        """
        num_samples = len(records)
        if any(r.sample_id != i for i, r in enumerate(records)):
            raise ValueError(
                "records must be ordered by sample id covering 0..n-1 "
                "(as produced by the stage-two profiler)"
            )
        if overhead_bytes is None:
            overhead_bytes = spec.response_overhead_bytes
        if not spec.can_offload:
            return OffloadPlan.no_offload(
                num_samples, reason="storage node has no CPU cores for offloading"
            )

        model = EpochModel(spec)
        splits = [0] * num_samples

        # Baseline: everything fetched raw, all preprocessing local.
        metrics = EpochMetrics(
            gpu_time_s=gpu_time_s,
            compute_cpu_s=sum(r.total_cost for r in records),
            storage_cpu_s=0.0,
            traffic_bytes=float(
                sum(r.raw_size for r in records) + overhead_bytes * num_samples
            ),
        )

        beneficial = [r for r in records if r.offload_efficiency > 0]
        if self.config.order == "efficiency":
            candidates = sorted(
                beneficial, key=lambda r: r.offload_efficiency, reverse=True
            )
        elif self.config.order == "savings":
            candidates = sorted(beneficial, key=lambda r: r.best_savings, reverse=True)
        else:  # arrival order
            candidates = sorted(beneficial, key=lambda r: r.sample_id)
        if not candidates:
            return OffloadPlan(
                splits=splits,
                reason="no samples with positive offloading efficiency",
                expected=model.estimate(metrics),
            )

        accepted = 0
        skipped = 0
        reason = "exhausted candidates with positive efficiency"
        for record in candidates:
            estimate = model.estimate(metrics)
            if not estimate.network_bound:
                reason = (
                    f"network no longer predominant (bottleneck: "
                    f"{estimate.bottleneck.value}) after {accepted} samples"
                )
                break
            split = record.min_stage
            moved_cpu = record.prefix_cost(split)
            # The prefix work moves from the compute node to the storage
            # node; the sample's remaining ops still run locally.
            trial = metrics.replace(
                compute_cpu_s=metrics.compute_cpu_s - moved_cpu,
                storage_cpu_s=metrics.storage_cpu_s + moved_cpu,
                traffic_bytes=metrics.traffic_bytes - record.savings(split),
            )
            if self.config.never_worsen:
                post = model.estimate(trial)
                if post.epoch_time_s > estimate.epoch_time_s + self.config.epsilon_s:
                    skipped += 1
                    continue
            splits[record.sample_id] = split
            metrics = trial
            accepted += 1

        final = model.estimate(metrics)
        note = f"offloaded {accepted}/{num_samples} samples"
        if skipped:
            note += f", skipped {skipped} (would worsen epoch estimate)"
        logger.info(
            "decision: %s; %s (expected epoch %.2fs, bottleneck %s)",
            note,
            reason,
            final.epoch_time_s,
            final.bottleneck.value,
        )
        return OffloadPlan(splits=splits, reason=f"{note}; {reason}", expected=final)
