"""Offloading-efficiency statistics (the quantity behind Figure 1c)."""

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.preprocessing.records import SampleRecord


@dataclasses.dataclass(frozen=True)
class EfficiencySummary:
    """Distribution summary of per-sample offloading efficiency.

    Efficiencies are in bytes saved per CPU-second of offloaded work; a
    value of zero means the sample is smallest in raw form and should not
    be offloaded (the paper's 24%-at-zero population for OpenImages).
    """

    num_samples: int
    zero_fraction: float
    mean_nonzero: float
    median_nonzero: float
    p90_nonzero: float

    def __str__(self) -> str:
        return (
            f"EfficiencySummary(n={self.num_samples}, zero={self.zero_fraction:.0%}, "
            f"median={self.median_nonzero:.3g} B/s)"
        )


def efficiencies(records: Sequence[SampleRecord]) -> np.ndarray:
    """Per-sample efficiency array, in record order."""
    return np.array([r.offload_efficiency for r in records], dtype=np.float64)


def efficiency_distribution(records: Sequence[SampleRecord]) -> EfficiencySummary:
    values = efficiencies(records)
    if len(values) == 0:
        return EfficiencySummary(0, 0.0, 0.0, 0.0, 0.0)
    nonzero = values[values > 0]
    if len(nonzero) == 0:
        return EfficiencySummary(len(values), 1.0, 0.0, 0.0, 0.0)
    return EfficiencySummary(
        num_samples=len(values),
        zero_fraction=float((values == 0).mean()),
        mean_nonzero=float(nonzero.mean()),
        median_nonzero=float(np.median(nonzero)),
        p90_nonzero=float(np.percentile(nonzero, 90)),
    )


def efficiency_cdf(
    records: Sequence[SampleRecord], points: int = 100
) -> List[Tuple[float, float]]:
    """(efficiency, cumulative fraction) pairs for plotting Figure 1c."""
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    values = np.sort(efficiencies(records))
    if len(values) == 0:
        return []
    quantiles = np.linspace(0.0, 1.0, points)
    levels = np.quantile(values, quantiles)
    return [(float(level), float(q)) for level, q in zip(levels, quantiles)]
