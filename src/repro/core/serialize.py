"""JSON persistence for plans and profile records.

Stage-two profiling is a whole epoch of work; plans encode policy output.
Persisting both lets a training job restart (or a later analysis pass)
reuse them without re-profiling.
"""

import json
from typing import List, Sequence

from repro.core.plan import OffloadPlan
from repro.preprocessing.records import SampleRecord

_PLAN_VERSION = 1
_RECORDS_VERSION = 1


def plan_to_json(plan: OffloadPlan) -> str:
    return json.dumps(
        {
            "version": _PLAN_VERSION,
            "kind": "offload-plan",
            "splits": list(plan.splits),
            "reason": plan.reason,
        }
    )


def plan_from_json(text: str) -> OffloadPlan:
    doc = json.loads(text)
    if doc.get("kind") != "offload-plan":
        raise ValueError(f"not an offload plan: kind={doc.get('kind')!r}")
    if doc.get("version") != _PLAN_VERSION:
        raise ValueError(f"unsupported plan version {doc.get('version')}")
    return OffloadPlan(splits=list(doc["splits"]), reason=doc.get("reason", ""))


def records_to_json(records: Sequence[SampleRecord]) -> str:
    return json.dumps(
        {
            "version": _RECORDS_VERSION,
            "kind": "sample-records",
            "records": [
                {
                    "id": r.sample_id,
                    "sizes": list(r.stage_sizes),
                    "costs": list(r.op_costs),
                }
                for r in records
            ],
        }
    )


def records_from_json(text: str) -> List[SampleRecord]:
    doc = json.loads(text)
    if doc.get("kind") != "sample-records":
        raise ValueError(f"not sample records: kind={doc.get('kind')!r}")
    if doc.get("version") != _RECORDS_VERSION:
        raise ValueError(f"unsupported records version {doc.get('version')}")
    return [
        SampleRecord(
            sample_id=entry["id"],
            stage_sizes=tuple(entry["sizes"]),
            op_costs=tuple(entry["costs"]),
        )
        for entry in doc["records"]
    ]
