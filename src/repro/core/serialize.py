"""JSON persistence for plans and profile records.

Stage-two profiling is a whole epoch of work; plans encode policy output.
Persisting both lets a training job restart (or a later analysis pass)
reuse them without re-profiling.

Fidelity-axis fields (``scan_counts`` on plans, ``scan_sizes`` /
``scan_psnr_db`` on records) are emitted only when present, so output for
fidelity-free plans and plain records is byte-identical to before the
axis existed -- the gate `tests/core/test_fidelity.py` pins this.
"""

import json
from typing import List, Sequence

from repro.core.plan import OffloadPlan
from repro.preprocessing.records import ProgressiveSampleRecord, SampleRecord

_PLAN_VERSION = 1
_RECORDS_VERSION = 1


def _json_psnr(value: float) -> object:
    """JSON has no Infinity literal; the exact full prefix becomes "inf"."""
    if value == float("inf"):
        return "inf"
    return value


def _parse_psnr(value: object) -> float:
    if isinstance(value, str):
        return float(value)
    assert isinstance(value, (int, float))
    return float(value)


def plan_to_json(plan: OffloadPlan) -> str:
    doc = {
        "version": _PLAN_VERSION,
        "kind": "offload-plan",
        "splits": list(plan.splits),
        "reason": plan.reason,
    }
    if plan.scan_counts is not None:
        doc["scan_counts"] = list(plan.scan_counts)
    return json.dumps(doc)


def plan_from_json(text: str) -> OffloadPlan:
    doc = json.loads(text)
    if doc.get("kind") != "offload-plan":
        raise ValueError(f"not an offload plan: kind={doc.get('kind')!r}")
    if doc.get("version") != _PLAN_VERSION:
        raise ValueError(f"unsupported plan version {doc.get('version')}")
    scan_counts = doc.get("scan_counts")
    return OffloadPlan(
        splits=list(doc["splits"]),
        reason=doc.get("reason", ""),
        scan_counts=None if scan_counts is None else list(scan_counts),
    )


def records_to_json(records: Sequence[SampleRecord]) -> str:
    entries = []
    for r in records:
        entry = {
            "id": r.sample_id,
            "sizes": list(r.stage_sizes),
            "costs": list(r.op_costs),
        }
        if isinstance(r, ProgressiveSampleRecord):
            entry["scan_sizes"] = list(r.scan_sizes)
            entry["scan_psnr_db"] = [_json_psnr(p) for p in r.scan_psnr_db]
        entries.append(entry)
    return json.dumps(
        {
            "version": _RECORDS_VERSION,
            "kind": "sample-records",
            "records": entries,
        }
    )


def records_from_json(text: str) -> List[SampleRecord]:
    doc = json.loads(text)
    if doc.get("kind") != "sample-records":
        raise ValueError(f"not sample records: kind={doc.get('kind')!r}")
    if doc.get("version") != _RECORDS_VERSION:
        raise ValueError(f"unsupported records version {doc.get('version')}")
    out: List[SampleRecord] = []
    for entry in doc["records"]:
        if "scan_sizes" in entry:
            out.append(
                ProgressiveSampleRecord(
                    sample_id=entry["id"],
                    stage_sizes=tuple(entry["sizes"]),
                    op_costs=tuple(entry["costs"]),
                    scan_sizes=tuple(entry["scan_sizes"]),
                    scan_psnr_db=tuple(
                        _parse_psnr(p) for p in entry["scan_psnr_db"]
                    ),
                )
            )
        else:
            out.append(
                SampleRecord(
                    sample_id=entry["id"],
                    stage_sizes=tuple(entry["sizes"]),
                    op_costs=tuple(entry["costs"]),
                )
            )
    return out
