"""The SOPHON policy: two-stage profiling + efficiency-greedy planning."""

import logging
import time
from typing import Callable, Optional

from repro.baselines.capabilities import Capabilities
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.degraded import DegradedModeFetcher
from repro.core.plan import OffloadPlan
from repro.core.policy import Policy, PolicyContext
from repro.core.profiler import StageOneProfiler, ThroughputProbe
from repro.parallel import ParallelSpec
from repro.preprocessing.pipeline import Pipeline
from repro.rpc.breaker import CircuitBreaker
from repro.rpc.fetcher import SupportsFetch
from repro.telemetry.audit import AuditLog
from repro.telemetry.spans import Tracer

logger = logging.getLogger(__name__)


class Sophon(Policy):
    """Selectively Offloading Preprocessing with Hybrid Operations
    Near-storage.

    Planning flow (paper Figure 2):

    1. Stage-one profiling classifies the workload; non-I/O-bound workloads
       train unmodified (CPU-bound cases are for CPU-offloading systems,
       GPU-bound cases need nothing).
    2. Stage-two profiling yields per-sample records.
    3. The decision engine offloads the highest-efficiency samples until
       the network stops being the predominant metric.
    """

    name = "sophon"

    # Table 1 row: selective on every axis, offloading near-storage.
    capabilities = Capabilities(
        operation_selective=True,
        data_partial=True,
        data_selective=True,
        to_near_storage=True,
    )

    def __init__(
        self,
        decision: DecisionConfig = DecisionConfig(),
        profiler: Optional[StageOneProfiler] = None,
        skip_stage_one: bool = False,
        parallel: ParallelSpec = None,
    ) -> None:
        self.engine = DecisionEngine(decision)
        self.profiler = profiler if profiler is not None else StageOneProfiler()
        self.skip_stage_one = skip_stage_one
        #: Execution mode for profiling passes (see repro.parallel); None
        #: defers to the context's own ``parallel`` setting.
        self.parallel = parallel
        #: The last stage-one probe, for introspection/reporting.
        self.last_probe: Optional[ThroughputProbe] = None

    def plan(
        self,
        context: PolicyContext,
        audit: Optional[AuditLog] = None,
        tracer: Optional[Tracer] = None,
    ) -> OffloadPlan:
        """Plan offloading for *context*.

        audit/tracer are forwarded to the decision engine so a planning
        pass can be audited per sample (``sophon-repro audit``); stage-one
        early exits leave them empty -- no per-sample decisions were made.
        """
        if not context.spec.can_offload:
            return OffloadPlan.no_offload(
                context.num_samples,
                reason="storage node has no CPU cores for offloading",
            )

        if not self.skip_stage_one:
            probe = self.profiler.probe(
                context.dataset,
                context.pipeline,
                context.spec,
                context.model,
                batch_size=context.effective_batch_size,
                seed=context.seed,
                parallel=self.parallel if self.parallel is not None else context.parallel,
            )
            self.last_probe = probe
            logger.info(
                "stage-one probe: gpu=%.2f io=%.2f cpu=%.2f batches/s -> %s-bound",
                probe.gpu_batches_per_s,
                probe.io_batches_per_s,
                probe.cpu_batches_per_s,
                probe.bottleneck.value,
            )
            if not probe.io_bound:
                return OffloadPlan.no_offload(
                    context.num_samples,
                    reason=(
                        "stage-one profiling: workload is "
                        f"{probe.bottleneck.value}-bound, not I/O-bound"
                    ),
                )

        records = context.records(parallel=self.parallel)
        return self.engine.plan(
            records,
            context.spec,
            gpu_time_s=context.epoch_gpu_time_s,
            audit=audit,
            tracer=tracer,
        )

    def degraded_fetcher(
        self,
        primary: SupportsFetch,
        pipeline: Pipeline,
        fallback: Optional[SupportsFetch] = None,
        breaker: Optional[CircuitBreaker] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
    ) -> DegradedModeFetcher:
        """Wrap *primary* so epochs survive storage outages.

        The returned fetcher demotes samples to split 0 (raw fetch + local
        prefix execution) whenever the offload path fails or the breaker is
        open, and records outages for adaptive re-planning -- see
        :mod:`repro.core.degraded`.
        """
        return DegradedModeFetcher(
            primary=primary,
            pipeline=pipeline,
            fallback=fallback,
            breaker=breaker,
            seed=seed,
            clock=clock,
            tracer=tracer,
        )
