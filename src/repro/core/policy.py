"""The policy interface shared by SOPHON and all baselines."""

import abc
import dataclasses
from typing import List, Optional

from repro.cluster.spec import ClusterSpec
from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord, build_record
from repro.workloads.models import ModelProfile


@dataclasses.dataclass
class PolicyContext:
    """Everything a policy may consult when planning offloads.

    Per-sample records are built lazily (they correspond to the paper's
    stage-two profiling pass) and cached, since several policies and the
    harness share them.
    """

    dataset: Dataset
    pipeline: Pipeline
    spec: ClusterSpec
    model: ModelProfile
    batch_size: Optional[int] = None
    seed: int = 0
    _records: Optional[List[SampleRecord]] = dataclasses.field(default=None, repr=False)

    @property
    def effective_batch_size(self) -> int:
        return self.batch_size if self.batch_size is not None else self.model.batch_size

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def records(self, epoch: int = 0) -> List[SampleRecord]:
        """Per-sample stage sizes and op costs (cached for epoch 0)."""
        if epoch != 0:
            return self._build_records(epoch)
        if self._records is None:
            self._records = self._build_records(0)
        return self._records

    def _build_records(self, epoch: int) -> List[SampleRecord]:
        return [
            build_record(
                self.pipeline,
                self.dataset.raw_meta(sample_id),
                sample_id,
                seed=self.seed,
                epoch=epoch,
            )
            for sample_id in self.dataset.sample_ids()
        ]

    @property
    def epoch_gpu_time_s(self) -> float:
        return self.model.epoch_gpu_time_s(len(self.dataset))


class Policy(abc.ABC):
    """Decides which ops of which samples run on the storage node."""

    #: Short identifier used in reports (e.g. "sophon", "no-off").
    name: str = "policy"

    @abc.abstractmethod
    def plan(self, context: PolicyContext) -> "OffloadPlan":
        """Produce the per-sample offload plan for this workload."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# Imported late to avoid a cycle: plan.py only needs types at runtime.
from repro.core.plan import OffloadPlan  # noqa: E402  (re-export for typing)
