"""The policy interface shared by SOPHON and all baselines."""

import abc
import dataclasses
from typing import List, Optional

from repro.cluster.spec import ClusterSpec
from repro.data.dataset import Dataset
from repro.parallel import ParallelSpec, RecordCache, build_records, record_key
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord
from repro.workloads.models import ModelProfile


@dataclasses.dataclass
class PolicyContext:
    """Everything a policy may consult when planning offloads.

    Per-sample records are built lazily (they correspond to the paper's
    stage-two profiling pass) and cached, since several policies and the
    harness share them.

    parallel: default execution mode for record building -- None for the
        sequential reference, or any :data:`repro.parallel.ParallelSpec`
        ("vectorized", "sharded:4", a :class:`ParallelConfig`, ...).
        Every mode yields bit-identical records.
    record_cache: optional cross-context :class:`RecordCache`; sweeps
        that re-plan over the same dataset/pipeline/seed share profiled
        records through it instead of re-profiling.
    """

    dataset: Dataset
    pipeline: Pipeline
    spec: ClusterSpec
    model: ModelProfile
    batch_size: Optional[int] = None
    seed: int = 0
    parallel: ParallelSpec = None
    record_cache: Optional[RecordCache] = dataclasses.field(default=None, repr=False)
    _records: Optional[List[SampleRecord]] = dataclasses.field(default=None, repr=False)

    @property
    def effective_batch_size(self) -> int:
        return self.batch_size if self.batch_size is not None else self.model.batch_size

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def records(
        self, epoch: int = 0, parallel: ParallelSpec = None
    ) -> List[SampleRecord]:
        """Per-sample stage sizes and op costs (cached for epoch 0).

        ``parallel`` overrides the context-wide execution mode for this
        call; the records themselves are identical either way.
        """
        if epoch != 0:
            return self._build_records(epoch, parallel)
        if self._records is None:
            self._records = self._build_records(0, parallel)
        return self._records

    def _build_records(
        self, epoch: int, parallel: ParallelSpec = None
    ) -> List[SampleRecord]:
        mode = parallel if parallel is not None else self.parallel

        def build() -> List[SampleRecord]:
            return build_records(
                self.pipeline,
                self.dataset,
                seed=self.seed,
                epoch=epoch,
                parallel=mode,
            )

        if self.record_cache is None:
            return build()
        key = record_key(self.dataset, self.pipeline, self.seed, epoch)
        return self.record_cache.get_or_build(key, build)

    @property
    def epoch_gpu_time_s(self) -> float:
        return self.model.epoch_gpu_time_s(len(self.dataset))


class Policy(abc.ABC):
    """Decides which ops of which samples run on the storage node."""

    #: Short identifier used in reports (e.g. "sophon", "no-off").
    name: str = "policy"

    @abc.abstractmethod
    def plan(self, context: PolicyContext) -> "OffloadPlan":
        """Produce the per-sample offload plan for this workload."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# Imported late to avoid a cycle: plan.py only needs types at runtime.
from repro.core.plan import OffloadPlan  # noqa: E402  (re-export for typing)
