"""Online calibration of the storage node's CPU speed (section 3.1).

The paper "currently assume[s] identical CPU types on compute and storage
nodes, allowing preprocessing times profiled on the compute node to be
used for the storage node" and defers heterogeneous CPUs to future work.
This module closes that gap: before planning, the compute node issues a
few offloaded probe fetches, measures each round trip, subtracts the
network terms it can compute itself (payload size / bandwidth + RTT), and
divides the remaining -- the remote CPU time -- by its *locally* profiled
cost for the same prefix.  The median ratio is the storage node's speed
factor, which the decision engine then plans against.
"""

import dataclasses
import statistics
from typing import List, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.data.dataset import Dataset
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord


@dataclasses.dataclass(frozen=True)
class ProbeObservation:
    """One probe fetch: what was measured and what was inferred."""

    sample_id: int
    round_trip_s: float
    network_s: float
    local_prefix_cost_s: float

    @property
    def remote_cpu_s(self) -> float:
        return max(0.0, self.round_trip_s - self.network_s)

    @property
    def speed_ratio(self) -> float:
        if self.local_prefix_cost_s <= 0:
            return 1.0
        return self.remote_cpu_s / self.local_prefix_cost_s


@dataclasses.dataclass
class CalibrationResult:
    """Estimated storage CPU speed factor plus the raw observations."""

    estimated_factor: float
    observations: List[ProbeObservation]

    def calibrated_spec(self, spec: ClusterSpec) -> ClusterSpec:
        """The cluster spec with the estimated factor substituted in."""
        return dataclasses.replace(spec, storage_cpu_factor=self.estimated_factor)


class StorageSpeedProbe:
    """Estimate the storage node's CPU speed factor from probe fetches.

    probe_samples: how many samples to probe (sequential, so probe
        round trips see no self-induced queueing).
    split: the pipeline prefix probed (default: through RandomResizedCrop,
        the prefix SOPHON actually offloads).
    """

    def __init__(self, probe_samples: int = 8, split: int = 2) -> None:
        if probe_samples < 1:
            raise ValueError(f"probe_samples must be >= 1, got {probe_samples}")
        if split < 1:
            raise ValueError("split must be >= 1 (a prefix must run remotely)")
        self.probe_samples = probe_samples
        self.split = split

    def _pick_probe_ids(self, records: Sequence[SampleRecord]) -> List[int]:
        # Prefer samples with meaningful prefix cost (large decodes) so the
        # CPU term dominates measurement noise; spread across the dataset.
        ranked = sorted(
            records, key=lambda r: r.prefix_cost(self.split), reverse=True
        )
        return [r.sample_id for r in ranked[: self.probe_samples]]

    def probe(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        spec: ClusterSpec,
        records: Sequence[SampleRecord],
        true_factor: Optional[float] = None,
        seed: int = 0,
    ) -> CalibrationResult:
        """Run the probe against a simulated storage node.

        true_factor: the storage node's actual speed factor (what a real
            deployment would hide inside its hardware); defaults to the
            spec's value.  The estimate must recover it.
        """
        if not spec.can_offload:
            raise ValueError("cannot probe a cluster with no storage cores")
        if self.split > len(pipeline):
            raise ValueError(
                f"split {self.split} exceeds pipeline length {len(pipeline)}"
            )
        factor = spec.storage_cpu_factor if true_factor is None else true_factor
        if factor <= 0:
            raise ValueError(f"true_factor must be > 0, got {factor}")

        observations = []
        for sample_id in self._pick_probe_ids(records):
            record = records[sample_id]
            local_cost = record.prefix_cost(self.split)
            wire = record.size_at(self.split) + spec.response_overhead_bytes
            network = spec.network_rtt_s + wire / spec.bandwidth_bytes_per_s
            # The simulated storage node serves the probe alone: service
            # time is its (hidden) CPU speed times the profiled cost.
            round_trip = network + local_cost * factor
            observations.append(
                ProbeObservation(
                    sample_id=sample_id,
                    round_trip_s=round_trip,
                    network_s=network,
                    local_prefix_cost_s=local_cost,
                )
            )

        ratios = [obs.speed_ratio for obs in observations]
        return CalibrationResult(
            estimated_factor=statistics.median(ratios),
            observations=observations,
        )
