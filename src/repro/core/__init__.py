"""SOPHON's core: two-stage profiler + decision engine + policy facade.

The flow mirrors Figure 2 of the paper:

(a) :class:`StageOneProfiler` probes GPU / I/O / CPU throughput over the
    first batches to classify the workload's bottleneck.
(b) If I/O-bound, :class:`StageTwoProfiler` collects per-sample stage sizes
    and op costs during the first (non-offloaded) epoch.
(c) :class:`DecisionEngine` greedily selects samples by offloading
    efficiency until the network stops being the predominant metric.
(d-f) The resulting :class:`OffloadPlan` drives fetch requests; the storage
    server executes each sample's prefix and the compute node finishes.

:class:`Sophon` packages (a)-(c) behind the common :class:`Policy`
interface shared with the baselines.
"""

from repro.core.policy import Policy, PolicyContext
from repro.core.plan import OffloadPlan
from repro.core.profiler import (
    StageOneProfiler,
    StageTwoProfiler,
    ThroughputProbe,
)
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.degraded import DegradedModeFetcher, Demotion, OutageReport
from repro.core.efficiency import efficiency_distribution, EfficiencySummary
from repro.core.fidelity import FidelityConfig, FidelityPlanner, plan_with_fidelity
from repro.core.sophon import Sophon

__all__ = [
    "DecisionConfig",
    "DecisionEngine",
    "DegradedModeFetcher",
    "Demotion",
    "EfficiencySummary",
    "FidelityConfig",
    "FidelityPlanner",
    "plan_with_fidelity",
    "OffloadPlan",
    "OutageReport",
    "Policy",
    "PolicyContext",
    "Sophon",
    "StageOneProfiler",
    "StageTwoProfiler",
    "ThroughputProbe",
    "efficiency_distribution",
]
