"""Offload plans: per-sample split points plus planning provenance."""

import collections
import dataclasses
from typing import Dict, Optional, Sequence

from repro.cluster.epoch_model import EpochEstimate
from repro.cluster.spec import ClusterSpec
from repro.preprocessing.records import SampleRecord


@dataclasses.dataclass(frozen=True)
class OffloadPlan:
    """The output of a policy: how far each sample's pipeline is offloaded.

    splits: index = sample id, value = number of leading ops to execute on
        the storage node (0 = fetch raw).
    reason: human-readable note on how/why planning stopped.
    expected: the analytic epoch estimate the planner believed in (None for
        trivial plans).
    """

    splits: Sequence[int]
    reason: str = ""
    expected: Optional[EpochEstimate] = None

    def __post_init__(self) -> None:
        if any(s < 0 for s in self.splits):
            raise ValueError("split points must be >= 0")

    def __len__(self) -> int:
        return len(self.splits)

    def split_for(self, sample_id: int) -> int:
        return self.splits[sample_id]

    @property
    def num_offloaded(self) -> int:
        return sum(1 for s in self.splits if s > 0)

    @property
    def offload_fraction(self) -> float:
        if len(self.splits) == 0:
            return 0.0
        return self.num_offloaded / len(self.splits)

    def split_histogram(self) -> Dict[int, int]:
        """How many samples use each split point."""
        return dict(collections.Counter(self.splits))

    def clamped_for(self, spec: ClusterSpec) -> "OffloadPlan":
        """Disable offloading when the cluster cannot do it (0 storage cores)."""
        if spec.can_offload or self.num_offloaded == 0:
            return self
        return OffloadPlan(
            splits=[0] * len(self.splits),
            reason=f"{self.reason} [clamped: no storage cores]".strip(),
            expected=None,
        )

    def expected_traffic_bytes(
        self, records: Sequence[SampleRecord], overhead_bytes: int = 0
    ) -> int:
        """Wire bytes this plan implies, given per-sample records."""
        if len(records) != len(self.splits):
            raise ValueError(
                f"records cover {len(records)} samples, plan has {len(self.splits)}"
            )
        return sum(
            record.size_at(split) + overhead_bytes
            for record, split in zip(records, self.splits)
        )

    @classmethod
    def no_offload(cls, num_samples: int, reason: str = "no offloading") -> "OffloadPlan":
        return cls(splits=[0] * num_samples, reason=reason)

    @classmethod
    def uniform(cls, num_samples: int, split: int, reason: str = "") -> "OffloadPlan":
        """Every sample offloaded to the same split point."""
        if split < 0:
            raise ValueError(f"split must be >= 0, got {split}")
        return cls(splits=[split] * num_samples, reason=reason)
