"""Offload plans: per-sample split points plus planning provenance."""

import collections
import dataclasses
from typing import Dict, Optional, Sequence

from repro.cluster.epoch_model import EpochEstimate
from repro.cluster.spec import ClusterSpec
from repro.preprocessing.records import ProgressiveSampleRecord, SampleRecord


@dataclasses.dataclass(frozen=True)
class OffloadPlan:
    """The output of a policy: how far each sample's pipeline is offloaded.

    splits: index = sample id, value = number of leading ops to execute on
        the storage node (0 = fetch raw).
    reason: human-readable note on how/why planning stopped.
    expected: the analytic epoch estimate the planner believed in (None for
        trivial plans).
    scan_counts: the optional fidelity axis -- index = sample id, value =
        how many scans of the sample's progressive raw stream to ship, or
        None for full fidelity.  A non-None entry is only valid at split 0
        (scan truncation applies to the raw encoded object; once any
        pipeline prefix runs remotely the decoded payload ships instead).
        ``scan_counts=None`` (the default) means the fidelity axis is
        unused and the plan behaves exactly as before it existed.
    """

    splits: Sequence[int]
    reason: str = ""
    expected: Optional[EpochEstimate] = None
    scan_counts: Optional[Sequence[Optional[int]]] = None

    def __post_init__(self) -> None:
        if any(s < 0 for s in self.splits):
            raise ValueError("split points must be >= 0")
        if self.scan_counts is not None:
            if len(self.scan_counts) != len(self.splits):
                raise ValueError(
                    f"scan_counts covers {len(self.scan_counts)} samples, "
                    f"plan has {len(self.splits)}"
                )
            for sample_id, count in enumerate(self.scan_counts):
                if count is None:
                    continue
                if count < 1:
                    raise ValueError(
                        f"sample {sample_id}: scan count must be >= 1, got {count}"
                    )
                if self.splits[sample_id] != 0:
                    raise ValueError(
                        f"sample {sample_id}: scan truncation requires split 0, "
                        f"plan says split {self.splits[sample_id]}"
                    )

    def __len__(self) -> int:
        return len(self.splits)

    def split_for(self, sample_id: int) -> int:
        return self.splits[sample_id]

    def scan_count_for(self, sample_id: int) -> Optional[int]:
        """Scans of the raw stream to ship, or None for full fidelity."""
        if self.scan_counts is None:
            return None
        return self.scan_counts[sample_id]

    @property
    def num_offloaded(self) -> int:
        return sum(1 for s in self.splits if s > 0)

    @property
    def num_degraded(self) -> int:
        """Samples shipped at reduced fidelity (a truncated scan prefix)."""
        if self.scan_counts is None:
            return 0
        return sum(1 for c in self.scan_counts if c is not None)

    @property
    def offload_fraction(self) -> float:
        if len(self.splits) == 0:
            return 0.0
        return self.num_offloaded / len(self.splits)

    def split_histogram(self) -> Dict[int, int]:
        """How many samples use each split point."""
        return dict(collections.Counter(self.splits))

    def clamped_for(self, spec: ClusterSpec) -> "OffloadPlan":
        """Disable offloading when the cluster cannot do it (0 storage cores).

        Scan truncation survives clamping: it is byte slicing at GET time,
        not offloaded CPU work, so it needs no storage cores.
        """
        if spec.can_offload or self.num_offloaded == 0:
            return self
        return OffloadPlan(
            splits=[0] * len(self.splits),
            reason=f"{self.reason} [clamped: no storage cores]".strip(),
            expected=None,
            scan_counts=self.scan_counts,
        )

    def expected_traffic_bytes(
        self, records: Sequence[SampleRecord], overhead_bytes: int = 0
    ) -> int:
        """Wire bytes this plan implies, given per-sample records."""
        if len(records) != len(self.splits):
            raise ValueError(
                f"records cover {len(records)} samples, plan has {len(self.splits)}"
            )
        if self.scan_counts is None:
            return sum(
                record.size_at(split) + overhead_bytes
                for record, split in zip(records, self.splits)
            )
        total = 0
        for record, split, count in zip(records, self.splits, self.scan_counts):
            if count is None:
                total += record.size_at(split) + overhead_bytes
                continue
            if not isinstance(record, ProgressiveSampleRecord):
                raise ValueError(
                    f"sample {record.sample_id}: plan truncates scans but the "
                    "record is not progressive"
                )
            total += record.size_at_fidelity(count) + overhead_bytes
        return total

    @classmethod
    def no_offload(cls, num_samples: int, reason: str = "no offloading") -> "OffloadPlan":
        return cls(splits=[0] * num_samples, reason=reason)

    @classmethod
    def uniform(cls, num_samples: int, split: int, reason: str = "") -> "OffloadPlan":
        """Every sample offloaded to the same split point."""
        if split < 0:
            raise ValueError(f"split must be >= 0, got {split}")
        return cls(splits=[split] * num_samples, reason=reason)
