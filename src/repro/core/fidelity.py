"""The fidelity axis: choosing how many bytes of a sample to ship.

Following *Progressive Compressed Records* (Kuchnik et al., PAPERS.md),
samples encoded with :class:`repro.codec.progressive.ProgressiveJpegCodec`
can be fetched as any scan prefix, trading PSNR for wire bytes.  The
:class:`FidelityPlanner` widens SOPHON's decision from ``split`` to
``(split, scan_count)``:

1. Run the ordinary :class:`DecisionEngine` pass (where to split).
2. If the epoch is *still* network-bound after every worthwhile split has
   been offloaded, the split axis is out of levers -- spend fidelity:
   greedily truncate the raw fetches of progressive samples the engine
   left at split 0, ranked by bytes saved per dB of PSNR given up, until
   the network stops being predominant or the quality floor is reached.

Truncation only ever *removes* wire bytes and moves no CPU work, so no
``never_worsen`` guard is needed on this pass.  With the axis disabled
(``enabled=False``, no progressive records, or the split pass already
un-bound the network) the planner returns the engine's plan object
untouched -- plans, audit logs, and serialized output are byte-identical
to fidelity-free planning, gated by ``tests/core/test_fidelity.py``.
"""

import dataclasses
import logging
from typing import List, Optional, Sequence, Tuple

from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.core.decision import DecisionConfig, DecisionEngine
from repro.core.plan import OffloadPlan
from repro.preprocessing.records import ProgressiveSampleRecord, SampleRecord
from repro.telemetry.audit import FIDELITY_DEGRADED, AuditLog
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class FidelityConfig:
    """Knobs for the fidelity-degradation pass.

    enabled: master switch; False makes :class:`FidelityPlanner` a
        transparent wrapper around :class:`DecisionEngine`.
    min_psnr_db: quality floor -- never ship a prefix whose PSNR against
        the full decode is below this.
    min_scans: never ship fewer than this many scans (scan 0 alone is the
        DC image; some workloads want at least one AC band).
    psnr_cap_db: stand-in for the full prefix's infinite PSNR when
        computing dB given up; also caps finite PSNRs so one near-perfect
        prefix doesn't dominate the ranking.
    """

    enabled: bool = True
    min_psnr_db: float = 30.0
    min_scans: int = 1
    psnr_cap_db: float = 60.0

    def __post_init__(self) -> None:
        if self.min_scans < 1:
            raise ValueError(f"min_scans must be >= 1, got {self.min_scans}")
        if self.psnr_cap_db <= 0:
            raise ValueError(f"psnr_cap_db must be > 0, got {self.psnr_cap_db}")


@dataclasses.dataclass(frozen=True)
class _Rung:
    """One admissible degradation: ship ``scan_count`` scans of a sample."""

    record: ProgressiveSampleRecord
    scan_count: int
    saved_bytes: int
    psnr_db: float
    #: Bytes saved per dB of (capped) PSNR given up -- the ranking key,
    #: mirroring the paper's bytes-per-CPU-second offloading efficiency.
    efficiency: float


class FidelityPlanner:
    """Two-axis planner: the engine's split pass, then a fidelity pass."""

    def __init__(
        self,
        engine: Optional[DecisionEngine] = None,
        config: Optional[FidelityConfig] = None,
    ) -> None:
        self.engine = engine if engine is not None else DecisionEngine()
        self.config = config if config is not None else FidelityConfig()

    # -- rung construction -------------------------------------------------

    def _best_rung(self, record: ProgressiveSampleRecord) -> Optional[_Rung]:
        """The deepest admissible truncation for one sample, or None.

        One sample contributes one rung (its best jump) rather than a
        ladder of intermediate steps: truncation moves no CPU, so there is
        no budget reason to degrade a sample halfway when a deeper prefix
        still clears the quality floor.
        """
        cap = self.config.psnr_cap_db
        best: Optional[_Rung] = None
        for count in range(self.config.min_scans, record.num_scans):
            psnr = record.psnr_at(count)
            if psnr < self.config.min_psnr_db:
                continue
            saved = record.fidelity_savings(count)
            if saved <= 0:
                continue
            lost_db = cap - min(psnr, cap)
            efficiency = saved / lost_db if lost_db > 0 else float("inf")
            rung = _Rung(
                record=record,
                scan_count=count,
                saved_bytes=saved,
                psnr_db=psnr,
                efficiency=efficiency,
            )
            # Deeper prefixes save more bytes; keep the deepest admissible
            # one (first hit wins -- counts ascend, savings descend).
            if best is None or rung.saved_bytes > best.saved_bytes:
                best = rung
        return best

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        records: Sequence[SampleRecord],
        spec: ClusterSpec,
        gpu_time_s: float,
        overhead_bytes: Optional[int] = None,
        audit: Optional[AuditLog] = None,
        tracer: Optional[Tracer] = None,
    ) -> OffloadPlan:
        """Plan splits, then spend fidelity if the network is still bound.

        Same signature as :meth:`DecisionEngine.plan`; when the fidelity
        pass has nothing to do, the engine's plan is returned *unchanged*
        (the same object), so disabling the axis is byte-identical to
        never having had it.
        """
        base = self.engine.plan(
            records,
            spec,
            gpu_time_s,
            overhead_bytes=overhead_bytes,
            audit=audit,
            tracer=tracer,
        )
        if not self.config.enabled or not spec.can_offload:
            return base
        if overhead_bytes is None:
            overhead_bytes = spec.response_overhead_bytes

        # Reconstruct the post-split epoch metrics from the plan.
        metrics = EpochMetrics(
            gpu_time_s=gpu_time_s,
            compute_cpu_s=sum(
                r.total_cost - r.prefix_cost(s) for r, s in zip(records, base.splits)
            ),
            storage_cpu_s=sum(
                r.prefix_cost(s) for r, s in zip(records, base.splits)
            ),
            traffic_bytes=float(
                sum(r.size_at(s) for r, s in zip(records, base.splits))
                + overhead_bytes * len(records)
            ),
        )
        model = EpochModel(spec)
        if not model.estimate(metrics).network_bound:
            return base

        rungs: List[_Rung] = []
        for record, split in zip(records, base.splits):
            if split != 0 or not isinstance(record, ProgressiveSampleRecord):
                continue
            rung = self._best_rung(record)
            if rung is not None:
                rungs.append(rung)
        if not rungs:
            return base
        rungs.sort(key=lambda r: (-r.efficiency, r.record.sample_id))

        degraded = get_default_registry().counter(
            "fidelity_degraded_total",
            "samples planned at reduced fidelity (truncated scan prefix)",
        )
        scan_counts: List[Optional[int]] = [None] * len(records)
        accepted = 0
        saved_total = 0
        reason = "exhausted degradable samples"
        for rung in rungs:
            estimate = model.estimate(metrics)
            if not estimate.network_bound:
                reason = (
                    "network no longer predominant (bottleneck: "
                    f"{estimate.bottleneck.value}) after {accepted} degradations"
                )
                break
            sample_id = rung.record.sample_id
            scan_counts[sample_id] = rung.scan_count
            metrics = metrics.replace(
                traffic_bytes=metrics.traffic_bytes - rung.saved_bytes
            )
            accepted += 1
            saved_total += rung.saved_bytes
            degraded.inc()
            if audit is not None and sample_id in audit:
                previous = audit.get(sample_id)
                audit.amend(
                    sample_id,
                    outcome=FIDELITY_DEGRADED,
                    reason=(
                        f"was {previous.outcome}; network still bound after the "
                        f"split pass, shipping {rung.scan_count}/"
                        f"{rung.record.num_scans} scans "
                        f"(saves {rung.saved_bytes}B at {rung.psnr_db:.1f}dB)"
                    ),
                    chosen_scans=rung.scan_count,
                    fidelity_psnr_db=rung.psnr_db,
                )
            if tracer is not None:
                tracer.instant(
                    trace_id(sample_id, 0),
                    "fidelity",
                    outcome=FIDELITY_DEGRADED,
                    scan_count=rung.scan_count,
                    psnr_db=rung.psnr_db,
                )
        if accepted == 0:
            return base

        final = model.estimate(metrics)
        logger.info(
            "fidelity: degraded %d/%d samples, saved %dB; %s",
            accepted,
            len(records),
            saved_total,
            reason,
        )
        return OffloadPlan(
            splits=base.splits,
            reason=(
                f"{base.reason}; fidelity: degraded {accepted} samples "
                f"(saved {saved_total}B); {reason}"
            ),
            expected=final,
            scan_counts=scan_counts,
        )


def plan_with_fidelity(
    records: Sequence[SampleRecord],
    spec: ClusterSpec,
    gpu_time_s: float,
    *,
    decision_config: Optional[DecisionConfig] = None,
    fidelity_config: Optional[FidelityConfig] = None,
    overhead_bytes: Optional[int] = None,
    audit: Optional[AuditLog] = None,
    tracer: Optional[Tracer] = None,
) -> OffloadPlan:
    """Convenience wrapper: one call for the full two-axis plan."""
    engine = DecisionEngine(
        decision_config if decision_config is not None else DecisionConfig()
    )
    return FidelityPlanner(engine, fidelity_config).plan(
        records,
        spec,
        gpu_time_s,
        overhead_bytes=overhead_bytes,
        audit=audit,
        tracer=tracer,
    )
