"""SOPHON's two-stage profiler (paper section 3.1).

Stage one answers "is this workload I/O-bound?" by probing the three
throughputs the paper measures over the first 50 batches:

1. GPU throughput -- the model trained on synthetic in-memory data;
2. I/O throughput -- raw fetch from remote storage, no CPU/GPU work;
3. CPU throughput -- preprocessing over data cached by probe 2.

Stage two collects per-sample metrics (stage sizes, per-op CPU time) during
the first real epoch, which runs without offloading, so profiling adds no
extra pass over the dataset.
"""

import concurrent.futures
import dataclasses
import enum
from typing import List, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.data.dataset import Dataset
from repro.parallel import ParallelConfig, ParallelSpec, build_records
from repro.parallel.sharded import shard_bounds
from repro.parallel.vectorized import batch_total_costs, simulate_batch
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord
from repro.workloads.models import ModelProfile


class BottleneckKind(enum.Enum):
    GPU = "gpu"
    CPU = "cpu"
    IO = "io"


@dataclasses.dataclass(frozen=True)
class ThroughputProbe:
    """Stage-one result: throughput (batches/s) under each isolated setting."""

    gpu_batches_per_s: float
    io_batches_per_s: float
    cpu_batches_per_s: float
    probe_batches: int

    @property
    def bottleneck(self) -> BottleneckKind:
        slowest = min(
            (self.gpu_batches_per_s, BottleneckKind.GPU),
            (self.io_batches_per_s, BottleneckKind.IO),
            (self.cpu_batches_per_s, BottleneckKind.CPU),
        )
        return slowest[1]

    @property
    def io_bound(self) -> bool:
        return self.bottleneck is BottleneckKind.IO


class StageOneProfiler:
    """Probe GPU / I/O / CPU throughput over the first ``probe_batches``."""

    def __init__(self, probe_batches: int = 50) -> None:
        if probe_batches < 1:
            raise ValueError(f"probe_batches must be >= 1, got {probe_batches}")
        self.probe_batches = probe_batches

    def probe(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        spec: ClusterSpec,
        model: ModelProfile,
        batch_size: Optional[int] = None,
        seed: int = 0,
        parallel: ParallelSpec = None,
    ) -> ThroughputProbe:
        """Probe the three throughputs.

        ``parallel`` accelerates the CPU probe (setting 3) with the
        vectorized batch simulator; the probe result is bit-identical to
        the sequential loop's (the per-sample costs and the accumulation
        order are both preserved exactly).
        """
        batch_size = batch_size if batch_size is not None else model.batch_size
        num_probe = min(len(dataset), self.probe_batches * batch_size)
        if num_probe == 0:
            raise ValueError("cannot profile an empty dataset")
        probe_ids = range(num_probe)
        batches = max(1, num_probe // batch_size)

        # Setting 1: synthetic data straight to the GPU.
        gpu_rate = 1.0 / model.batch_time_s(batch_size)

        # Setting 2: raw fetch only; throughput set by the link.
        raw_bytes = sum(dataset.raw_meta(i).nbytes for i in probe_ids)
        raw_bytes += num_probe * spec.response_overhead_bytes
        io_seconds = raw_bytes / spec.bandwidth_bytes_per_s
        io_rate = batches / io_seconds if io_seconds > 0 else float("inf")

        # Setting 3: preprocess the cached probe data on the compute cores.
        cpu_seconds = 0.0
        config = ParallelConfig.parse(parallel)
        if config is not None and config.mode != "sequential":
            metas = [dataset.raw_meta(i) for i in probe_ids]
            _, costs = simulate_batch(
                pipeline, metas, list(probe_ids), seed=seed, epoch=0
            )
            for total in batch_total_costs(costs):
                cpu_seconds += total
        else:
            for sample_id in probe_ids:
                run = pipeline.simulate(
                    dataset.raw_meta(sample_id), seed=seed, epoch=0, sample_id=sample_id
                )
                cpu_seconds += run.total_cost_s
        cpu_seconds = cpu_seconds * spec.compute_cpu_factor / spec.compute_cores
        cpu_rate = batches / cpu_seconds if cpu_seconds > 0 else float("inf")

        return ThroughputProbe(
            gpu_batches_per_s=gpu_rate,
            io_batches_per_s=io_rate,
            cpu_batches_per_s=cpu_rate,
            probe_batches=batches,
        )


def _profile_real_shard(
    dataset: Dataset,
    pipeline: Pipeline,
    sample_ids: Sequence[int],
    seed: int,
    epoch: int,
) -> List[SampleRecord]:
    """One worker's share of a real-execution profiling pass.

    Module-level so process pools can pickle it.  Determinism is keyed:
    every (seed, epoch, sample, op) draw derives its own generator, so
    worker count and scheduling cannot change a single record.
    """
    records = []
    for sample_id in sample_ids:
        payload = dataset.raw_payload(sample_id)
        run = pipeline.run(payload, seed=seed, epoch=epoch, sample_id=sample_id)
        sizes = (payload.nbytes,) + tuple(s.out_meta.nbytes for s in run.stages)
        costs = tuple(s.cost_s for s in run.stages)
        records.append(
            SampleRecord(sample_id=sample_id, stage_sizes=sizes, op_costs=costs)
        )
    return records


class StageTwoProfiler:
    """Collect per-sample records during the first (non-offloaded) epoch.

    On trace datasets the records come from the pipeline's metadata
    simulation; on materialized datasets ``use_real_execution=True`` runs
    the actual ops instead -- the two agree exactly (asserted by tests), the
    real path just also touches pixels.
    """

    def __init__(self, use_real_execution: bool = False) -> None:
        self.use_real_execution = use_real_execution

    def profile(
        self,
        dataset: Dataset,
        pipeline: Pipeline,
        seed: int = 0,
        epoch: int = 0,
        parallel: ParallelSpec = None,
    ) -> List[SampleRecord]:
        """Build one record per sample.

        ``parallel`` selects the execution mode (see :mod:`repro.parallel`).
        On the metadata path it dispatches through ``build_records``; on
        the real-execution path a ``sharded`` config splits the dataset
        into contiguous shards profiled by a worker pool, merged keyed by
        ``sample_id`` -- records identical to the sequential pass.  (A
        ``vectorized`` config degrades to the sequential loop there: real
        execution touches actual pixels, which the batch simulator does
        not model.)
        """
        if self.use_real_execution and not dataset.is_materialized:
            raise ValueError("real-execution profiling needs a materialized dataset")
        if not self.use_real_execution:
            return build_records(
                pipeline, dataset, seed=seed, epoch=epoch, parallel=parallel
            )
        ids = list(dataset.sample_ids())
        config = ParallelConfig.parse(parallel)
        if config is None or config.mode != "sharded" or len(ids) <= 1:
            return _profile_real_shard(dataset, pipeline, ids, seed, epoch)
        bounds = shard_bounds(len(ids), config.workers)
        if len(bounds) <= 1:
            return _profile_real_shard(dataset, pipeline, ids, seed, epoch)
        pool_cls = (
            concurrent.futures.ThreadPoolExecutor
            if config.backend == "thread"
            else concurrent.futures.ProcessPoolExecutor
        )
        by_id: dict = {}
        with pool_cls(max_workers=config.workers) as pool:
            futures = [
                pool.submit(
                    _profile_real_shard, dataset, pipeline, ids[start:stop], seed, epoch
                )
                for start, stop in bounds
            ]
            for future in concurrent.futures.as_completed(futures):
                for record in future.result():
                    by_id[record.sample_id] = record
        if len(by_id) != len(ids):
            raise RuntimeError(
                f"sharded real-execution profiling produced {len(by_id)} records "
                f"for {len(ids)} samples"
            )
        return [by_id[sample_id] for sample_id in ids]
