"""Degraded-mode fetching: the No-Off fallback that keeps epochs alive.

When the storage node crashes (or the link browns out badly enough to trip
the circuit breaker), SOPHON must not lose samples or stall the epoch.
:class:`DegradedModeFetcher` wraps the normal RPC fetcher: while the
breaker is closed it is a transparent pass-through, and the moment offload
fetches start failing it *demotes* affected samples to split 0 -- fetch the
raw bytes (from a local fallback replica when one exists) and run the
offloaded prefix locally.  Because every op draws its augmentation
parameters from a per-(seed, epoch, sample, op) derived generator, the
demoted sample is bit-identical to what the storage node would have sent.

Each contiguous run of failures is recorded as an :class:`OutageReport`
(start, recovery, demotions), which :mod:`repro.harness.adaptive` can fold
into its spec schedule to re-plan around the fault.
"""

import dataclasses
import time
from typing import Callable, List, Optional

from repro.preprocessing.payload import Payload
from repro.preprocessing.pipeline import Pipeline
from repro.rpc.breaker import CircuitBreaker
from repro.rpc.fetcher import SupportsFetch, SupportsScanFetch
from repro.rpc.messages import ChecksumError
from repro.rpc.retry import FetchFailedError
from repro.telemetry.registry import get_default_registry
from repro.telemetry.spans import Tracer, trace_id

#: Failures that mean "the transport or the storage node is unhealthy".
#: ProtocolError deliberately stays out: a malformed frame is a sender bug,
#: and demoting around it would hide the bug instead of surfacing it.
#: (ChecksumError subclasses ProtocolError but is wire damage, so it is in.)
TRANSPORT_FAILURES = (
    ConnectionError,
    TimeoutError,
    FetchFailedError,
    ChecksumError,
    OSError,
)


@dataclasses.dataclass(frozen=True)
class Demotion:
    """One sample served at split 0 because its offload path was down.

    ``scan_count`` is set when the sample rode the fidelity rung: instead
    of the full raw bytes, only that many scans of its progressive stream
    crossed the (already stressed) link.  None means the classic
    bit-identical full-fidelity demotion.
    """

    sample_id: int
    epoch: int
    planned_split: int
    at_s: float
    reason: str
    scan_count: Optional[int] = None


@dataclasses.dataclass
class OutageReport:
    """One contiguous outage as the fetcher observed it.

    ``recovered_at_s`` is None while the outage is still in progress.
    """

    started_at_s: float
    recovered_at_s: Optional[float] = None
    demotions: List[Demotion] = dataclasses.field(default_factory=list)

    @property
    def demotion_count(self) -> int:
        return len(self.demotions)

    @property
    def duration_s(self) -> Optional[float]:
        if self.recovered_at_s is None:
            return None
        return self.recovered_at_s - self.started_at_s


class DegradedModeFetcher:
    """Loader-compatible fetcher that survives storage-node outages.

    primary: the normal fetcher (typically a RetryingClient around the RPC
        client); all healthy traffic goes through it untouched.
    pipeline: used to run the offloaded prefix locally for demoted samples.
    fallback: optional split-0 source consulted when the primary is down
        (e.g. a DirectFetcher over a local replica).  Without one, demoted
        raw fetches are attempted against the primary as a last resort.
    breaker: circuit breaker guarding the primary; after enough consecutive
        failures it opens and samples demote without paying a network
        timeout each.  A fresh breaker is created when omitted.
    seed: must match the DataLoader's seed so local prefix execution draws
        the same augmentation parameters the storage node would have.
    scan_fallback: optional scan-capable split-0 source (e.g. an
        ObjectLambdaFetcher with a ScanTruncationLambda installed).  With
        ``degraded_scan_count`` set, demoted samples take the *fidelity
        rung* between full offload and classic demotion: fetch only that
        many scans of the raw progressive stream -- fewer bytes over a link
        that is already struggling -- and run the prefix locally at reduced
        fidelity.  Both default to None, preserving the bit-identical
        full-fidelity demotion.
    """

    def __init__(
        self,
        primary: SupportsFetch,
        pipeline: Pipeline,
        fallback: Optional[SupportsFetch] = None,
        breaker: Optional[CircuitBreaker] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[Tracer] = None,
        scan_fallback: Optional[SupportsScanFetch] = None,
        degraded_scan_count: Optional[int] = None,
    ) -> None:
        if degraded_scan_count is not None:
            if degraded_scan_count < 1:
                raise ValueError(
                    f"degraded_scan_count must be >= 1, got {degraded_scan_count}"
                )
            if scan_fallback is None:
                raise ValueError(
                    "degraded_scan_count needs a scan_fallback to fetch from"
                )
        self.primary = primary
        self.pipeline = pipeline
        self.fallback = fallback
        self.scan_fallback = scan_fallback
        self.degraded_scan_count = degraded_scan_count
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(clock=clock, tracer=tracer)
        )
        self.seed = seed
        self.clock = clock
        self.tracer = tracer
        #: Every outage observed so far, in order; the last one may be open.
        self.outages: List[OutageReport] = []
        self._current: Optional[OutageReport] = None

    # -- reporting ---------------------------------------------------------

    @property
    def demotion_count(self) -> int:
        return sum(o.demotion_count for o in self.outages)

    @property
    def last_outage(self) -> Optional[OutageReport]:
        return self.outages[-1] if self.outages else None

    @property
    def in_outage(self) -> bool:
        return self._current is not None

    # -- fetcher protocol --------------------------------------------------

    def fetch(self, sample_id: int, epoch: int, split: int) -> Payload:
        """Return the sample with ops 1..split applied -- always.

        The loader never sees the outage: a demoted sample arrives with the
        same prefix applied (locally instead of remotely), so the loader's
        ``start=split`` continuation is unchanged.
        """
        if self.breaker.allow():
            try:
                payload = self.primary.fetch(sample_id, epoch, split)
            except TRANSPORT_FAILURES as exc:
                self.breaker.record_failure()
                self._note_failure()
                if split <= 0 and self.fallback is None and not self._scan_rung:
                    raise  # nothing else can serve raw bytes
                return self._demote(
                    sample_id, epoch, split, reason=type(exc).__name__
                )
            self.breaker.record_success()
            self._note_success()
            get_default_registry().counter(
                "degraded_fetches_total",
                "fetches through DegradedModeFetcher by path",
                labels=["path"],
            ).inc(path="primary")
            return payload
        return self._demote(sample_id, epoch, split, reason="breaker-open")

    # -- degraded path -----------------------------------------------------

    @property
    def _scan_rung(self) -> bool:
        """Whether demotions take the reduced-fidelity scan-prefix rung."""
        return self.scan_fallback is not None and self.degraded_scan_count is not None

    def _demote(self, sample_id: int, epoch: int, split: int, reason: str) -> Payload:
        registry = get_default_registry()
        registry.counter(
            "degraded_fetches_total",
            "fetches through DegradedModeFetcher by path",
            labels=["path"],
        ).inc(path="fidelity" if self._scan_rung else "demoted")
        if split > 0:
            self._note_failure()  # ensure an outage report exists
            assert self._current is not None
            self._current.demotions.append(
                Demotion(
                    sample_id=sample_id,
                    epoch=epoch,
                    planned_split=split,
                    at_s=self.clock(),
                    reason=reason,
                    scan_count=(
                        self.degraded_scan_count if self._scan_rung else None
                    ),
                )
            )
            registry.counter(
                "degraded_demotions_total",
                "samples demoted to split 0 by reason",
                labels=["reason"],
            ).inc(reason=reason)
            if self.tracer is not None:
                self.tracer.instant(
                    trace_id(sample_id, epoch),
                    "degraded.demote",
                    planned_split=split,
                    reason=reason,
                )
        raw = self._raw_payload(sample_id, epoch)
        if split <= 0:
            return raw
        run = self.pipeline.run(
            raw, seed=self.seed, epoch=epoch, sample_id=sample_id, start=0, stop=split
        )
        assert run.payload is not None
        return run.payload

    def _raw_payload(self, sample_id: int, epoch: int) -> Payload:
        if self._scan_rung:
            assert self.scan_fallback is not None
            assert self.degraded_scan_count is not None
            payload = self.scan_fallback.fetch_scans(
                sample_id, epoch, self.degraded_scan_count
            )
            if self.tracer is not None:
                self.tracer.instant(
                    trace_id(sample_id, epoch),
                    "degraded.fidelity",
                    scan_count=self.degraded_scan_count,
                )
            return payload
        if self.fallback is not None:
            return self.fallback.fetch(sample_id, epoch, 0)
        # Last resort: raw bytes from the primary itself.  If this works the
        # node is actually reachable, which is recovery evidence.
        payload = self.primary.fetch(sample_id, epoch, 0)
        self.breaker.record_success()
        self._note_success()
        return payload

    # -- outage bookkeeping ------------------------------------------------

    def _note_failure(self) -> None:
        if self._current is None:
            self._current = OutageReport(started_at_s=self.clock())
            self.outages.append(self._current)
            get_default_registry().counter(
                "degraded_outages_total", "contiguous outages observed"
            ).inc()
            if self.tracer is not None:
                self.tracer.instant("degraded", "outage.start")

    def _note_success(self) -> None:
        if self._current is not None:
            self._current.recovered_at_s = self.clock()
            duration = self._current.recovered_at_s - self._current.started_at_s
            self._current = None
            if self.tracer is not None:
                self.tracer.instant("degraded", "outage.recovered", duration_s=duration)
