"""SOPHON reproduction: selective preprocessing offloading for DL training.

This package reproduces the system described in "A Selective Preprocessing
Offloading Framework for Reducing Data Traffic in DL Training" (HotStorage
'24).  The public API is re-exported here; see DESIGN.md for the subsystem
inventory and EXPERIMENTS.md for the paper-vs-measured results.

Typical use::

    from repro import standard_cluster, make_openimages, Sophon, run_experiment

    dataset = make_openimages(num_samples=2000, seed=7)
    cluster = standard_cluster(storage_cores=48)
    result = run_experiment(dataset, policy=Sophon(), cluster=cluster)
    print(result.epoch_time_s, result.traffic_bytes)
"""

from repro.codec import ToyJpegCodec
from repro.preprocessing import (
    Decode,
    Normalize,
    Pipeline,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
    standard_pipeline,
)
from repro.data import (
    DataLoader,
    Dataset,
    SyntheticImageDataset,
    TraceDataset,
    make_imagenet,
    make_openimages,
)
from repro.cluster import ClusterSpec, EpochModel, TrainerSim, standard_cluster
from repro.workloads import ModelProfile, get_model_profile
from repro.core import (
    DecisionEngine,
    OffloadPlan,
    Sophon,
    StageOneProfiler,
    StageTwoProfiler,
)
from repro.baselines import AllOff, FastFlow, NoOff, Policy, ResizeOff
from repro.harness import ExperimentResult, run_experiment

__all__ = [
    "AllOff",
    "ClusterSpec",
    "DataLoader",
    "Dataset",
    "DecisionEngine",
    "Decode",
    "EpochModel",
    "ExperimentResult",
    "FastFlow",
    "ModelProfile",
    "NoOff",
    "Normalize",
    "OffloadPlan",
    "Pipeline",
    "Policy",
    "RandomHorizontalFlip",
    "RandomResizedCrop",
    "ResizeOff",
    "Sophon",
    "StageOneProfiler",
    "StageTwoProfiler",
    "SyntheticImageDataset",
    "ToTensor",
    "ToyJpegCodec",
    "TraceDataset",
    "TrainerSim",
    "get_model_profile",
    "make_imagenet",
    "make_openimages",
    "run_experiment",
    "standard_cluster",
    "standard_pipeline",
]

__version__ = "1.0.0"
