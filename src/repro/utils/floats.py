"""Float comparison helpers -- the FLT01 allowlisted module.

Raw ``==`` on floats is banned in this codebase (sophon-lint FLT01):
simulated times, rates and efficiencies accumulate rounding error, so
equality tests flip on harmless re-orderings.  The two legitimate cases
get named helpers instead:

* :func:`is_exact_zero` -- intentional bit-exact zero tests, for sentinel
  values that are *assigned* (never computed), e.g. "corruption_rate was
  configured to 0" or "the MSE of two identical uint8 images".
* :func:`close` -- tolerance comparison for computed quantities.
"""

import math


def is_exact_zero(value: float) -> bool:
    """True when *value* is exactly 0.0 (or -0.0).

    Use only for values that are assigned, not computed: configuration
    sentinels and error terms over integer inputs, where bit-exact zero is
    meaningful.  For computed quantities use :func:`close`.
    """
    return value == 0.0  # sophon-lint: disable=FLT01


def close(
    a: float,
    b: float,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> bool:
    """Tolerance equality for computed floats (wraps :func:`math.isclose`)."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
