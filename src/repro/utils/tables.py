"""Minimal fixed-width text table rendering for harness reports."""

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a left-aligned text table with a header rule.

    All cells are str()-ed; column widths fit the widest cell.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = [fmt(cells[0]), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)
