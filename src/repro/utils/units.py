"""Human-readable units and unit conversions."""


def mbps_to_bytes_per_s(mbps: float) -> float:
    """Megabits/second -> bytes/second (decimal megabits, as in '500 Mbps')."""
    if mbps <= 0:
        raise ValueError(f"bandwidth must be > 0, got {mbps} Mbps")
    return mbps * 1e6 / 8.0


def format_bytes(n: float) -> str:
    """Format a byte count with a binary-free decimal unit (KB/MB/GB)."""
    if n < 0:
        return "-" + format_bytes(-n)
    for unit, factor in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if n >= factor:
            return f"{n / factor:.2f} {unit}"
    return f"{n:.0f} B"


def format_seconds(s: float) -> str:
    """Format seconds compactly (ms below 1 s, h/m/s above a minute)."""
    if s < 0:
        return "-" + format_seconds(-s)
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < 60.0:
        return f"{s:.2f} s"
    minutes, seconds = divmod(s, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{seconds:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes:02d}m{seconds:04.1f}s"
