"""Shared utilities: seeded RNG derivation, units, text tables."""

from repro.utils.floats import close, is_exact_zero
from repro.utils.rng import derive_rng, op_rng
from repro.utils.units import format_bytes, format_seconds, mbps_to_bytes_per_s
from repro.utils.tables import render_table

__all__ = [
    "close",
    "derive_rng",
    "format_bytes",
    "format_seconds",
    "is_exact_zero",
    "mbps_to_bytes_per_s",
    "op_rng",
    "render_table",
]
