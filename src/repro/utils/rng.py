"""Deterministic, position-independent RNG derivation.

Random augmentations must agree between the compute node and the storage
node: when ops 1..k of a sample's pipeline run remotely and ops k+1..n run
locally, both sides must see the same parameter draws that a purely local
run would have produced.  Deriving an independent generator per
(seed, epoch, sample, op) makes the draws independent of *where* and in what
order the ops execute.
"""

from typing import Optional

import numpy as np


def derive_rng(*components: int) -> np.random.Generator:
    """A generator keyed on an arbitrary tuple of non-negative integers."""
    for c in components:
        if c < 0:
            raise ValueError(f"rng key components must be >= 0, got {components}")
    return np.random.default_rng(np.random.SeedSequence(list(components)))


def op_rng(seed: int, epoch: int, sample_id: int, op_index: int) -> np.random.Generator:
    """The generator for one op of one sample in one epoch.

    Identical on every node, regardless of how the pipeline is split.
    """
    return derive_rng(seed, epoch, sample_id, op_index)


def sample_rng(seed: int, sample_id: int, salt: Optional[int] = None) -> np.random.Generator:
    """A per-sample generator (used by dataset synthesis)."""
    if salt is None:
        return derive_rng(seed, sample_id)
    return derive_rng(seed, sample_id, salt)
