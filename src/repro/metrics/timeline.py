"""Per-batch timelines and stall accounting."""

import dataclasses
from typing import List, Optional


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One fault the input pipeline survived, stamped in virtual time.

    kind: "demotion" (sample fell back to split 0), "corruption" (payload
    failed its checksum and was re-fetched), "crash-interrupt" (an
    offloaded prefix was killed in flight), "recovery" (first successful
    offload after an outage).
    """

    at_s: float
    kind: str
    sample_id: int = -1


@dataclasses.dataclass
class BatchTrace:
    """Lifecycle timestamps of one batch (virtual seconds)."""

    index: int
    ready_at: float = 0.0  # input pipeline delivered the batch
    gpu_start: float = 0.0
    gpu_end: float = 0.0

    @property
    def gpu_time_s(self) -> float:
        return self.gpu_end - self.gpu_start


@dataclasses.dataclass
class Timeline:
    """All batch traces of one epoch, in batch order.

    ``fault_events`` records every fault/recovery the epoch survived (empty
    for fault-free runs), so stall analysis can correlate data stalls with
    outages.
    """

    batches: List[BatchTrace] = dataclasses.field(default_factory=list)
    epoch_end: float = 0.0
    fault_events: List[FaultEvent] = dataclasses.field(default_factory=list)

    def trace(self, index: int) -> BatchTrace:
        while len(self.batches) <= index:
            self.batches.append(BatchTrace(index=len(self.batches)))
        return self.batches[index]

    def record_fault(self, at_s: float, kind: str, sample_id: int = -1) -> None:
        self.fault_events.append(FaultEvent(at_s=at_s, kind=kind, sample_id=sample_id))

    def fault_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.fault_events)
        return sum(1 for event in self.fault_events if event.kind == kind)

    def validate(self) -> None:
        """Sanity-check monotonicity; raises on malformed recordings."""
        previous_end = 0.0
        for trace in self.batches:
            if not trace.ready_at <= trace.gpu_start <= trace.gpu_end:
                raise ValueError(f"batch {trace.index} timestamps out of order")
            if trace.gpu_start < previous_end - 1e-12:
                raise ValueError(f"batch {trace.index} overlaps its predecessor")
            previous_end = trace.gpu_end


@dataclasses.dataclass(frozen=True)
class StallBreakdown:
    """Where the epoch's wall-clock went, from the GPU's point of view.

    data_stall_s: GPU idle because the next batch was not ready -- the
        quantity remote-I/O bottlenecks inflate and SOPHON attacks.
    """

    epoch_time_s: float
    gpu_busy_s: float
    data_stall_s: float

    @property
    def stall_fraction(self) -> float:
        if self.epoch_time_s <= 0:
            return 0.0
        return self.data_stall_s / self.epoch_time_s

    @property
    def gpu_utilization(self) -> float:
        if self.epoch_time_s <= 0:
            return 0.0
        return self.gpu_busy_s / self.epoch_time_s

    def __str__(self) -> str:
        return (
            f"StallBreakdown(epoch={self.epoch_time_s:.2f}s, "
            f"gpu={self.gpu_utilization:.0%}, stall={self.stall_fraction:.0%})"
        )


def stall_breakdown(timeline: Timeline) -> StallBreakdown:
    """Decompose an epoch timeline into GPU-busy vs data-stall time.

    For a single-tenant GPU the time between one batch finishing and the
    next starting is exactly the wait for the input pipeline (there is no
    other contender), so stall = sum of those gaps plus the initial fill.
    """
    timeline.validate()
    if not timeline.batches:
        return StallBreakdown(timeline.epoch_end, 0.0, timeline.epoch_end)
    busy = sum(trace.gpu_time_s for trace in timeline.batches)
    stall = timeline.batches[0].gpu_start
    for prev, nxt in zip(timeline.batches, timeline.batches[1:]):
        stall += nxt.gpu_start - prev.gpu_end
    tail = timeline.epoch_end - timeline.batches[-1].gpu_end
    return StallBreakdown(
        epoch_time_s=timeline.epoch_end,
        gpu_busy_s=busy,
        data_stall_s=stall + tail,
    )
