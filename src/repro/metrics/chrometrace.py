"""Export epoch timelines as Chrome trace-event JSON.

Load the output in ``chrome://tracing`` (or Perfetto) to see each batch's
input-pipeline and GPU phases on a timeline -- the visual version of the
stall breakdown.  Uses the Trace Event "X" (complete event) records, with
one row for the input pipeline and one for the GPU.
"""

import json
from typing import Dict, List

from repro.metrics.timeline import Timeline

_MICRO = 1_000_000  # trace events use microseconds

_PIPELINE_TID = 0
_GPU_TID = 1


def timeline_to_trace_events(timeline: Timeline, job: str = "train") -> List[Dict]:
    """Per-batch complete events: input-pipeline span + GPU span.

    The input span for batch i runs from the previous batch's ready time
    to batch i's ready time (approximating continuous pipeline work); the
    GPU span is exact.
    """
    timeline.validate()
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"{job} (virtual time)"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": _PIPELINE_TID,
         "args": {"name": "input pipeline"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": _GPU_TID,
         "args": {"name": "gpu"}},
    ]
    previous_ready = 0.0
    for trace in timeline.batches:
        events.append(
            {
                "name": f"batch {trace.index} input",
                "ph": "X",
                "pid": 0,
                "tid": _PIPELINE_TID,
                "ts": int(previous_ready * _MICRO),
                "dur": max(0, int((trace.ready_at - previous_ready) * _MICRO)),
            }
        )
        events.append(
            {
                "name": f"batch {trace.index} gpu",
                "ph": "X",
                "pid": 0,
                "tid": _GPU_TID,
                "ts": int(trace.gpu_start * _MICRO),
                "dur": max(0, int(trace.gpu_time_s * _MICRO)),
            }
        )
        previous_ready = trace.ready_at
    return events


def write_chrome_trace(timeline: Timeline, path: str, job: str = "train") -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    document = {"traceEvents": timeline_to_trace_events(timeline, job=job)}
    with open(path, "w") as handle:
        json.dump(document, handle)
