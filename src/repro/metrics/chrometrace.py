"""Export epoch timelines as Chrome trace-event JSON.

Load the output in ``chrome://tracing`` (or Perfetto) to see each batch's
input-pipeline and GPU phases on a timeline -- the visual version of the
stall breakdown.  Uses the Trace Event "X" (complete event) records, with
one row for the input pipeline and one for the GPU.

Per-sample telemetry spans (``run_epoch(record_spans=True)``) render
alongside the batch rows: each trace id (sample or batch) gets its own
thread row in a second "samples" process, begin/end pairs become nested
complete events, and instants (demotions, corruption, breaker
transitions) become trace-event instants on the same row.

Multi-epoch cluster runs render through :func:`write_combined_chrome_trace`:
each epoch's timeline and spans land in their own process rows, and two
summary processes group the same spans by their ``shard`` and ``job``
labels -- one row per storage shard, one per tenant -- so a contended
shared link reads at a glance in Perfetto.
"""

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.timeline import Timeline
from repro.telemetry.spans import BEGIN, END, INSTANT, SpanEvent

_MICRO = 1_000_000  # trace events use microseconds

_PIPELINE_TID = 0
_GPU_TID = 1

#: pid used for the per-sample span rows (pid 0 is the batch timeline).
_SPANS_PID = 1


def timeline_to_trace_events(
    timeline: Timeline, job: str = "train", pid: int = 0
) -> List[Dict]:
    """Per-batch complete events: input-pipeline span + GPU span.

    The input span for batch i runs from the previous batch's ready time
    to batch i's ready time (approximating continuous pipeline work); the
    GPU span is exact.  ``pid`` picks the process row (multi-epoch traces
    give each epoch's timeline its own).
    """
    timeline.validate()
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": f"{job} (virtual time)"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": _PIPELINE_TID,
         "args": {"name": "input pipeline"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": _GPU_TID,
         "args": {"name": "gpu"}},
    ]
    previous_ready = 0.0
    for trace in timeline.batches:
        events.append(
            {
                "name": f"batch {trace.index} input",
                "ph": "X",
                "pid": pid,
                "tid": _PIPELINE_TID,
                "ts": int(previous_ready * _MICRO),
                "dur": max(0, int((trace.ready_at - previous_ready) * _MICRO)),
            }
        )
        events.append(
            {
                "name": f"batch {trace.index} gpu",
                "ph": "X",
                "pid": pid,
                "tid": _GPU_TID,
                "ts": int(trace.gpu_start * _MICRO),
                "dur": max(0, int(trace.gpu_time_s * _MICRO)),
            }
        )
        previous_ready = trace.ready_at
    return events


def spans_to_trace_events(
    spans: Sequence[SpanEvent],
    pid: int = _SPANS_PID,
    process_name: str = "samples (virtual time)",
) -> List[Dict]:
    """Render telemetry span events as nested trace-event rows.

    Each distinct trace id becomes one thread (tid assigned in first-seen
    order, so identical runs produce identical documents).  BEGIN/END
    pairs match innermost-first per (trace, name) and emit "X" complete
    events; INSTANT events emit thread-scoped "i" records.  An unmatched
    BEGIN is closed at the last timestamp seen on its trace.
    """
    tids: Dict[str, int] = {}
    for event in spans:
        tids.setdefault(event.trace_id, len(tids))
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": process_name}},
    ]
    for trace, tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": trace}}
        )
    open_spans: Dict[str, List[SpanEvent]] = {}
    last_t: Dict[str, float] = {}
    for event in spans:
        last_t[event.trace_id] = event.t_s
        if event.phase == BEGIN:
            open_spans.setdefault(f"{event.trace_id}\0{event.name}", []).append(event)
        elif event.phase == END:
            stack = open_spans.get(f"{event.trace_id}\0{event.name}")
            if not stack:
                continue  # END without BEGIN: drop rather than invent a span
            begin = stack.pop()
            args = dict(begin.attrs)
            args.update(event.attrs)
            events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[event.trace_id],
                    "ts": int(begin.t_s * _MICRO),
                    "dur": max(0, int((event.t_s - begin.t_s) * _MICRO)),
                    "args": args,
                }
            )
        elif event.phase == INSTANT:
            events.append(
                {
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tids[event.trace_id],
                    "ts": int(event.t_s * _MICRO),
                    "args": dict(event.attrs),
                }
            )
    for key, stack in open_spans.items():
        trace = key.split("\0", 1)[0]
        for begin in stack:
            events.append(
                {
                    "name": begin.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[trace],
                    "ts": int(begin.t_s * _MICRO),
                    "dur": max(0, int((last_t[trace] - begin.t_s) * _MICRO)),
                    "args": dict(begin.attrs),
                }
            )
    return events


def grouped_span_rows(
    spans: Sequence[SpanEvent],
    key: str,
    pid: int,
    process_name: str,
) -> List[Dict]:
    """One thread row per distinct value of span attr ``key``.

    BEGIN events carrying ``key`` (e.g. ``shard=2`` or ``job="resnet"``)
    open a span on their value's row; the matching END (paired
    innermost-first per (trace, name), inheriting the BEGIN's group)
    closes it.  INSTANT events carrying ``key`` land on their row as "i"
    records.  Events without the attr are skipped -- returns [] when no
    event carries it at all, so callers can omit the whole process.
    """
    groups: Dict[object, None] = {}
    for event in spans:
        if event.phase in (BEGIN, INSTANT) and key in event.attrs:
            groups.setdefault(event.attrs[key], None)
    if not groups:
        return []
    ordered = sorted(
        groups,
        key=lambda value: (
            (0, value, "") if isinstance(value, (int, float)) else (1, 0, str(value))
        ),
    )
    tids = {value: tid for tid, value in enumerate(ordered)}
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": process_name}},
    ]
    for value in ordered:
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tids[value],
             "args": {"name": f"{key} {value}"}}
        )
    open_spans: Dict[str, List[Tuple[SpanEvent, object]]] = {}
    last_t: Dict[object, float] = {}
    for event in spans:
        if event.phase == BEGIN:
            if key not in event.attrs:
                continue
            group = event.attrs[key]
            last_t[group] = event.t_s
            open_spans.setdefault(f"{event.trace_id}\0{event.name}", []).append(
                (event, group)
            )
        elif event.phase == END:
            stack = open_spans.get(f"{event.trace_id}\0{event.name}")
            if not stack:
                continue
            begin, group = stack.pop()
            last_t[group] = event.t_s
            args = dict(begin.attrs)
            args.update(event.attrs)
            events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[group],
                    "ts": int(begin.t_s * _MICRO),
                    "dur": max(0, int((event.t_s - begin.t_s) * _MICRO)),
                    "args": args,
                }
            )
        elif event.phase == INSTANT and key in event.attrs:
            group = event.attrs[key]
            last_t[group] = event.t_s
            events.append(
                {
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tids[group],
                    "ts": int(event.t_s * _MICRO),
                    "args": dict(event.attrs),
                }
            )
    for stack in open_spans.values():
        for begin, group in stack:
            events.append(
                {
                    "name": begin.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[group],
                    "ts": int(begin.t_s * _MICRO),
                    "dur": max(
                        0, int((last_t.get(group, begin.t_s) - begin.t_s) * _MICRO)
                    ),
                    "args": dict(begin.attrs),
                }
            )
    return events


@dataclasses.dataclass(frozen=True)
class EpochTraceRecord:
    """One epoch's telemetry, ready for the combined multi-epoch trace."""

    epoch: int
    spans: Sequence[SpanEvent] = ()
    timeline: Optional[Timeline] = None
    #: Optional display label ("epoch 3 (replanned)"); defaults to "epoch N".
    label: str = ""

    @property
    def display_label(self) -> str:
        return self.label or f"epoch {self.epoch}"


def combined_trace_events(
    records: Sequence[EpochTraceRecord], job: str = "train"
) -> List[Dict]:
    """The multi-epoch document: per-epoch rows + shard and tenant groups.

    Every epoch's batch timeline and per-sample spans get their own
    process rows (pid assigned in record order, deterministic).  After
    the epochs come up to two summary processes: one thread per storage
    ``shard`` label and one per tenant ``job`` label, aggregated over
    every epoch's spans; either is omitted when no span carries the
    label.
    """
    events: List[Dict] = []
    pid = 0
    all_spans: List[SpanEvent] = []
    for record in records:
        label = record.display_label
        if record.timeline is not None:
            events.extend(
                timeline_to_trace_events(record.timeline, job=f"{job} {label}", pid=pid)
            )
            pid += 1
        if record.spans:
            events.extend(
                spans_to_trace_events(
                    record.spans,
                    pid=pid,
                    process_name=f"{label} samples (virtual time)",
                )
            )
            pid += 1
            all_spans.extend(record.spans)
    shard_rows = grouped_span_rows(all_spans, "shard", pid, "shards (virtual time)")
    if shard_rows:
        events.extend(shard_rows)
        pid += 1
    tenant_rows = grouped_span_rows(all_spans, "job", pid, "tenants (virtual time)")
    if tenant_rows:
        events.extend(tenant_rows)
        pid += 1
    return events


def write_combined_chrome_trace(
    path: str, records: Sequence[EpochTraceRecord], job: str = "train"
) -> None:
    """Write the combined multi-epoch trace; bytes deterministic per content."""
    document = {"traceEvents": combined_trace_events(records, job=job)}
    with open(path, "w") as handle:
        json.dump(document, handle, sort_keys=True)


def write_chrome_trace(
    timeline: Optional[Timeline],
    path: str,
    job: str = "train",
    spans: Optional[Sequence[SpanEvent]] = None,
) -> None:
    """Write a ``chrome://tracing``-loadable JSON file.

    timeline: per-batch rows (may be None when only spans are wanted).
    spans: optional telemetry span events, rendered as a second process
        with one thread row per trace id.
    """
    events: List[Dict] = []
    if timeline is not None:
        events.extend(timeline_to_trace_events(timeline, job=job))
    if spans is not None:
        events.extend(spans_to_trace_events(spans))
    document = {"traceEvents": events}
    with open(path, "w") as handle:
        json.dump(document, handle, sort_keys=True)
