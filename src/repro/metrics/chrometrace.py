"""Export epoch timelines as Chrome trace-event JSON.

Load the output in ``chrome://tracing`` (or Perfetto) to see each batch's
input-pipeline and GPU phases on a timeline -- the visual version of the
stall breakdown.  Uses the Trace Event "X" (complete event) records, with
one row for the input pipeline and one for the GPU.

Per-sample telemetry spans (``run_epoch(record_spans=True)``) render
alongside the batch rows: each trace id (sample or batch) gets its own
thread row in a second "samples" process, begin/end pairs become nested
complete events, and instants (demotions, corruption, breaker
transitions) become trace-event instants on the same row.
"""

import json
from typing import Dict, List, Optional, Sequence

from repro.metrics.timeline import Timeline
from repro.telemetry.spans import BEGIN, END, INSTANT, SpanEvent

_MICRO = 1_000_000  # trace events use microseconds

_PIPELINE_TID = 0
_GPU_TID = 1

#: pid used for the per-sample span rows (pid 0 is the batch timeline).
_SPANS_PID = 1


def timeline_to_trace_events(timeline: Timeline, job: str = "train") -> List[Dict]:
    """Per-batch complete events: input-pipeline span + GPU span.

    The input span for batch i runs from the previous batch's ready time
    to batch i's ready time (approximating continuous pipeline work); the
    GPU span is exact.
    """
    timeline.validate()
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": f"{job} (virtual time)"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": _PIPELINE_TID,
         "args": {"name": "input pipeline"}},
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": _GPU_TID,
         "args": {"name": "gpu"}},
    ]
    previous_ready = 0.0
    for trace in timeline.batches:
        events.append(
            {
                "name": f"batch {trace.index} input",
                "ph": "X",
                "pid": 0,
                "tid": _PIPELINE_TID,
                "ts": int(previous_ready * _MICRO),
                "dur": max(0, int((trace.ready_at - previous_ready) * _MICRO)),
            }
        )
        events.append(
            {
                "name": f"batch {trace.index} gpu",
                "ph": "X",
                "pid": 0,
                "tid": _GPU_TID,
                "ts": int(trace.gpu_start * _MICRO),
                "dur": max(0, int(trace.gpu_time_s * _MICRO)),
            }
        )
        previous_ready = trace.ready_at
    return events


def spans_to_trace_events(
    spans: Sequence[SpanEvent], pid: int = _SPANS_PID
) -> List[Dict]:
    """Render telemetry span events as nested trace-event rows.

    Each distinct trace id becomes one thread (tid assigned in first-seen
    order, so identical runs produce identical documents).  BEGIN/END
    pairs match innermost-first per (trace, name) and emit "X" complete
    events; INSTANT events emit thread-scoped "i" records.  An unmatched
    BEGIN is closed at the last timestamp seen on its trace.
    """
    tids: Dict[str, int] = {}
    for event in spans:
        tids.setdefault(event.trace_id, len(tids))
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": "samples (virtual time)"}},
    ]
    for trace, tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": trace}}
        )
    open_spans: Dict[str, List[SpanEvent]] = {}
    last_t: Dict[str, float] = {}
    for event in spans:
        last_t[event.trace_id] = event.t_s
        if event.phase == BEGIN:
            open_spans.setdefault(f"{event.trace_id}\0{event.name}", []).append(event)
        elif event.phase == END:
            stack = open_spans.get(f"{event.trace_id}\0{event.name}")
            if not stack:
                continue  # END without BEGIN: drop rather than invent a span
            begin = stack.pop()
            args = dict(begin.attrs)
            args.update(event.attrs)
            events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[event.trace_id],
                    "ts": int(begin.t_s * _MICRO),
                    "dur": max(0, int((event.t_s - begin.t_s) * _MICRO)),
                    "args": args,
                }
            )
        elif event.phase == INSTANT:
            events.append(
                {
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tids[event.trace_id],
                    "ts": int(event.t_s * _MICRO),
                    "args": dict(event.attrs),
                }
            )
    for key, stack in open_spans.items():
        trace = key.split("\0", 1)[0]
        for begin in stack:
            events.append(
                {
                    "name": begin.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[trace],
                    "ts": int(begin.t_s * _MICRO),
                    "dur": max(0, int((last_t[trace] - begin.t_s) * _MICRO)),
                    "args": dict(begin.attrs),
                }
            )
    return events


def write_chrome_trace(
    timeline: Optional[Timeline],
    path: str,
    job: str = "train",
    spans: Optional[Sequence[SpanEvent]] = None,
) -> None:
    """Write a ``chrome://tracing``-loadable JSON file.

    timeline: per-batch rows (may be None when only spans are wanted).
    spans: optional telemetry span events, rendered as a second process
        with one thread row per trace id.
    """
    events: List[Dict] = []
    if timeline is not None:
        events.extend(timeline_to_trace_events(timeline, job=job))
    if spans is not None:
        events.extend(spans_to_trace_events(spans))
    document = {"traceEvents": events}
    with open(path, "w") as handle:
        json.dump(document, handle, sort_keys=True)
