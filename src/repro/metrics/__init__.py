"""Training telemetry: batch timelines and data-stall breakdowns.

The paper frames its motivation in data-stall terms (citing the
DS-Analyzer line of work): a GPU that sits idle waiting for the input
pipeline is wasted capital.  This package records per-batch timelines from
the trainer simulation and decomposes an epoch into GPU-busy time vs
data-stall time, which is how Figure 1d's utilization numbers are framed.
"""

from repro.metrics.timeline import (
    BatchTrace,
    FaultEvent,
    StallBreakdown,
    Timeline,
    stall_breakdown,
)

__all__ = [
    "BatchTrace",
    "FaultEvent",
    "StallBreakdown",
    "Timeline",
    "stall_breakdown",
]
