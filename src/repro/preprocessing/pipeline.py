"""Pipeline composition with arbitrary split points.

A :class:`Pipeline` is an ordered list of ops.  ``run`` executes a
contiguous range of ops over real data; ``simulate`` runs the same range
over metadata only.  Both draw augmentation parameters from per-op derived
generators (see :mod:`repro.utils.rng`), so a run split across two nodes is
bit-identical to a local run.
"""

import dataclasses
from typing import List, Optional, Sequence

from repro.preprocessing.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.preprocessing.ops import (
    Decode,
    Normalize,
    Op,
    Params,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
)
from repro.preprocessing.payload import Payload, StageMeta
from repro.utils.rng import op_rng


@dataclasses.dataclass(frozen=True)
class StageTrace:
    """What one op did to one sample: parameters, output size, CPU cost."""

    op_name: str
    op_index: int  # 1-based stage number
    params: Params
    out_meta: StageMeta
    cost_s: float


@dataclasses.dataclass
class PipelineRun:
    """Result of running (or simulating) a contiguous op range."""

    payload: Optional[Payload]  # None for simulated runs
    out_meta: StageMeta
    stages: List[StageTrace]

    @property
    def total_cost_s(self) -> float:
        return sum(s.cost_s for s in self.stages)


class Pipeline:
    """An ordered preprocessing pipeline with splittable execution."""

    def __init__(self, ops: Sequence[Op], cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        if not ops:
            raise ValueError("pipeline must contain at least one op")
        for prev, nxt in zip(ops, ops[1:]):
            if prev.output_kind is not nxt.input_kind:
                raise ValueError(
                    f"op chain broken: {prev.name} outputs {prev.output_kind.value}, "
                    f"{nxt.name} expects {nxt.input_kind.value}"
                )
        self.ops: List[Op] = list(ops)
        self.cost_model = cost_model

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"Pipeline([{', '.join(op.name for op in self.ops)}])"

    @property
    def op_names(self) -> List[str]:
        return [op.name for op in self.ops]

    def _check_range(self, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= len(self.ops):
            raise ValueError(
                f"bad op range [{start}, {stop}) for a {len(self.ops)}-op pipeline"
            )

    # -- execution --------------------------------------------------------

    def run(
        self,
        payload: Payload,
        *,
        seed: int,
        epoch: int,
        sample_id: int,
        start: int = 0,
        stop: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
    ) -> PipelineRun:
        """Execute ops ``start..stop-1`` (0-based op indices) over real data.

        ``start=0, stop=None`` runs the whole pipeline.  Costs are *virtual*
        (from the cost model), not wall-clock.
        """
        stop = len(self.ops) if stop is None else stop
        self._check_range(start, stop)
        model = cost_model if cost_model is not None else self.cost_model

        stages: List[StageTrace] = []
        meta = payload.meta
        for index in range(start, stop):
            op = self.ops[index]
            rng = op_rng(seed, epoch, sample_id, index)
            params = op.draw_params(rng, meta)
            payload = op.apply(payload, params)
            out_meta = payload.meta
            in_px, out_px = op.work_pixels(meta, out_meta, params)
            cost = model.op_seconds(op.name, in_px, out_px)
            stages.append(StageTrace(op.name, index + 1, params, out_meta, cost))
            meta = out_meta
        return PipelineRun(payload=payload, out_meta=meta, stages=stages)

    def simulate(
        self,
        meta: StageMeta,
        *,
        seed: int,
        epoch: int,
        sample_id: int,
        start: int = 0,
        stop: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
    ) -> PipelineRun:
        """Metadata-only twin of :meth:`run`; identical sizes and costs."""
        stop = len(self.ops) if stop is None else stop
        self._check_range(start, stop)
        model = cost_model if cost_model is not None else self.cost_model

        stages: List[StageTrace] = []
        for index in range(start, stop):
            op = self.ops[index]
            rng = op_rng(seed, epoch, sample_id, index)
            params = op.draw_params(rng, meta)
            out_meta = op.simulate(meta, params)
            in_px, out_px = op.work_pixels(meta, out_meta, params)
            cost = model.op_seconds(op.name, in_px, out_px)
            stages.append(StageTrace(op.name, index + 1, params, out_meta, cost))
            meta = out_meta
        return PipelineRun(payload=None, out_meta=meta, stages=stages)

    # -- derived views -----------------------------------------------------

    def stage_sizes(
        self, raw_meta: StageMeta, *, seed: int, epoch: int, sample_id: int
    ) -> List[int]:
        """Byte size of the sample at stages 0..n (0 = raw encoded)."""
        run = self.simulate(raw_meta, seed=seed, epoch=epoch, sample_id=sample_id)
        return [raw_meta.nbytes] + [s.out_meta.nbytes for s in run.stages]


def standard_pipeline(
    crop_size: int = 224,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    codec=None,
) -> Pipeline:
    """The paper's five-op image-classification pipeline."""
    return Pipeline(
        [
            Decode(codec),
            RandomResizedCrop(size=crop_size),
            RandomHorizontalFlip(),
            ToTensor(),
            Normalize(),
        ],
        cost_model=cost_model,
    )
