"""The five preprocessing ops, each with a real path and a metadata path.

Every op implements:

- ``draw_params(rng, in_meta)``: sample any random augmentation parameters.
  Kept separate so the real ``apply`` and the pure ``simulate`` see the
  *same* randomness and therefore agree exactly on sizes and costs.
- ``apply(payload, params)``: the actual transformation over pixels/bytes.
- ``simulate(meta, params)``: the size algebra only.
- ``work_pixels(in_meta, out_meta, params)``: (input, output) pixel counts
  the cost model should charge for.
"""

import abc
import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.codec import CodecConfig, ToyJpegCodec
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta
from repro.preprocessing.resize import resize_bilinear

Params = Dict[str, object]

# ImageNet normalization constants, as in the PyTorch example script.
IMAGENET_MEAN = (0.485, 0.456, 0.406)
IMAGENET_STD = (0.229, 0.224, 0.225)


class Op(abc.ABC):
    """One stage of the preprocessing pipeline."""

    #: Payload kind this op consumes / produces.
    input_kind: PayloadKind
    output_kind: PayloadKind

    @property
    def name(self) -> str:
        return type(self).__name__

    def draw_params(self, rng: np.random.Generator, in_meta: StageMeta) -> Params:
        """Sample augmentation parameters; deterministic ops return {}."""
        return {}

    @abc.abstractmethod
    def apply(self, payload: Payload, params: Params) -> Payload:
        """Transform real data."""

    @abc.abstractmethod
    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        """Transform metadata only; must agree with :meth:`apply` on sizes."""

    def work_pixels(
        self, in_meta: StageMeta, out_meta: StageMeta, params: Params
    ) -> Tuple[int, int]:
        """(input, output) pixel counts billed by the cost model."""
        return in_meta.pixels, out_meta.pixels

    def _check_input(self, kind: PayloadKind) -> None:
        if kind is not self.input_kind:
            raise TypeError(
                f"{self.name} expects {self.input_kind.value} input, got {kind.value}"
            )

    def __repr__(self) -> str:
        return f"{self.name}()"


class Decode(Op):
    """Decode the stored compressed bytes into a uint8 RGB image."""

    input_kind = PayloadKind.ENCODED
    output_kind = PayloadKind.IMAGE_U8

    def __init__(self, codec: Optional[ToyJpegCodec] = None) -> None:
        self.codec = codec if codec is not None else ToyJpegCodec(CodecConfig())

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        image = self.codec.decode(payload.data)
        if image.ndim == 2:  # promote grayscale so downstream ops see 3 channels
            image = np.stack([image] * 3, axis=-1)
        return Payload.image(image)

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_image(meta.height, meta.width)

    def work_pixels(
        self, in_meta: StageMeta, out_meta: StageMeta, params: Params
    ) -> Tuple[int, int]:
        # Decode cost scales with the decoded pixel count, not the byte count.
        return 0, out_meta.pixels


class RandomResizedCrop(Op):
    """Crop a random area/aspect region, then resize to a fixed square.

    Parameter sampling follows torchvision's RandomResizedCrop: up to ten
    rejection-sampling attempts over (scale, ratio), then a center-crop
    fallback.
    """

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.IMAGE_U8

    def __init__(
        self,
        size: int = 224,
        scale: Tuple[float, float] = (0.08, 1.0),
        ratio: Tuple[float, float] = (3.0 / 4.0, 4.0 / 3.0),
    ) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if not 0 < scale[0] <= scale[1]:
            raise ValueError(f"bad scale range {scale}")
        if not 0 < ratio[0] <= ratio[1]:
            raise ValueError(f"bad ratio range {ratio}")
        self.size = size
        self.scale = scale
        self.ratio = ratio

    def draw_params(self, rng: np.random.Generator, in_meta: StageMeta) -> Params:
        height, width = in_meta.height, in_meta.width
        area = height * width
        log_ratio = (math.log(self.ratio[0]), math.log(self.ratio[1]))
        for _ in range(10):
            target_area = area * rng.uniform(self.scale[0], self.scale[1])
            aspect = math.exp(rng.uniform(log_ratio[0], log_ratio[1]))
            crop_w = int(round(math.sqrt(target_area * aspect)))
            crop_h = int(round(math.sqrt(target_area / aspect)))
            if 0 < crop_w <= width and 0 < crop_h <= height:
                top = int(rng.integers(0, height - crop_h + 1))
                left = int(rng.integers(0, width - crop_w + 1))
                return {"top": top, "left": left, "crop_h": crop_h, "crop_w": crop_w}
        # Center-crop fallback at the closest in-range aspect ratio.
        in_ratio = width / height
        if in_ratio < self.ratio[0]:
            crop_w = width
            crop_h = min(height, int(round(crop_w / self.ratio[0])))
        elif in_ratio > self.ratio[1]:
            crop_h = height
            crop_w = min(width, int(round(crop_h * self.ratio[1])))
        else:
            crop_w, crop_h = width, height
        top = (height - crop_h) // 2
        left = (width - crop_w) // 2
        return {"top": top, "left": left, "crop_h": crop_h, "crop_w": crop_w}

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        top, left = params["top"], params["left"]
        crop_h, crop_w = params["crop_h"], params["crop_w"]
        region = payload.data[top : top + crop_h, left : left + crop_w]
        return Payload.image(resize_bilinear(region, self.size, self.size))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_image(self.size, self.size)

    def work_pixels(
        self, in_meta: StageMeta, out_meta: StageMeta, params: Params
    ) -> Tuple[int, int]:
        crop_pixels = int(params["crop_h"]) * int(params["crop_w"])
        return crop_pixels, out_meta.pixels

    def __repr__(self) -> str:
        return f"RandomResizedCrop(size={self.size})"


class RandomHorizontalFlip(Op):
    """Flip the image left-right with probability ``p``."""

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.IMAGE_U8

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p

    def draw_params(self, rng: np.random.Generator, in_meta: StageMeta) -> Params:
        return {"flip": bool(rng.random() < self.p)}

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        if params["flip"]:
            return Payload.image(np.ascontiguousarray(payload.data[:, ::-1]))
        return Payload.image(payload.data)

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_image(meta.height, meta.width, meta.channels)

    def work_pixels(
        self, in_meta: StageMeta, out_meta: StageMeta, params: Params
    ) -> Tuple[int, int]:
        return 0, out_meta.pixels if params.get("flip") else 0

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class ToTensor(Op):
    """uint8 HWC in [0, 255] -> float32 CHW in [0.0, 1.0].

    This is the op that quadruples a sample's byte size (Finding #2), which
    is why the minimum-size stage is almost always *before* it.
    """

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.TENSOR_F32

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        tensor = (payload.data.astype(np.float32) / 255.0).transpose(2, 0, 1)
        return Payload.tensor(np.ascontiguousarray(tensor))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_tensor(meta.height, meta.width, meta.channels)


class Normalize(Op):
    """Channel-wise (x - mean) / std over a float tensor."""

    input_kind = PayloadKind.TENSOR_F32
    output_kind = PayloadKind.TENSOR_F32

    def __init__(
        self,
        mean: Sequence[float] = IMAGENET_MEAN,
        std: Sequence[float] = IMAGENET_STD,
    ) -> None:
        if len(mean) != len(std):
            raise ValueError(f"mean/std length mismatch: {len(mean)} vs {len(std)}")
        if any(s == 0 for s in std):
            raise ValueError("std must be non-zero")
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        if payload.data.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"tensor has {payload.data.shape[0]} channels, "
                f"normalize configured for {self.mean.shape[0]}"
            )
        return Payload.tensor((payload.data - self.mean) / self.std)

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_tensor(meta.height, meta.width, meta.channels)
