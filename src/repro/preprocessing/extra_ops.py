"""Additional torchvision-style ops beyond the paper's five.

These extend the op library toward the paper's future work ("a wider
variety of DL training workloads"): the deterministic resize/center-crop
pair of the standard ImageNet *validation* transform, plus common photo
augmentations.  Every op follows the same contract as the core five: a
real ``apply`` over pixels and an exactly-agreeing metadata ``simulate``.
"""

from typing import Tuple

import numpy as np

from repro.preprocessing.cost_model import CostModel, OpCost
from repro.preprocessing.ops import Decode, Normalize, Op, Params, ToTensor
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.resize import resize_bilinear


class Resize(Op):
    """Scale so the shorter side equals ``size`` (aspect preserved)."""

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.IMAGE_U8

    def __init__(self, size: int = 256) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size

    def output_dims(self, height: int, width: int) -> Tuple[int, int]:
        if height <= width:
            return self.size, max(1, int(round(width * self.size / height)))
        return max(1, int(round(height * self.size / width))), self.size

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        h, w = payload.data.shape[:2]
        out_h, out_w = self.output_dims(h, w)
        return Payload.image(resize_bilinear(payload.data, out_h, out_w))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        out_h, out_w = self.output_dims(meta.height, meta.width)
        return StageMeta.for_image(out_h, out_w, meta.channels)

    def __repr__(self) -> str:
        return f"Resize(size={self.size})"


class CenterCrop(Op):
    """Crop the central ``size`` x ``size`` region (pad if smaller)."""

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.IMAGE_U8

    def __init__(self, size: int = 224) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        image = payload.data
        h, w = image.shape[:2]
        if h < self.size or w < self.size:
            pad_h = max(0, self.size - h)
            pad_w = max(0, self.size - w)
            image = np.pad(
                image,
                (
                    (pad_h // 2, pad_h - pad_h // 2),
                    (pad_w // 2, pad_w - pad_w // 2),
                    (0, 0),
                ),
            )
            h, w = image.shape[:2]
        top = (h - self.size) // 2
        left = (w - self.size) // 2
        region = image[top : top + self.size, left : left + self.size]
        return Payload.image(np.ascontiguousarray(region))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_image(self.size, self.size, meta.channels)

    def __repr__(self) -> str:
        return f"CenterCrop(size={self.size})"


class ColorJitter(Op):
    """Random brightness/contrast scaling (a common photometric aug)."""

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.IMAGE_U8

    def __init__(self, brightness: float = 0.4, contrast: float = 0.4) -> None:
        if not 0.0 <= brightness < 1.0 or not 0.0 <= contrast < 1.0:
            raise ValueError(
                f"brightness/contrast must be in [0, 1), got {brightness}/{contrast}"
            )
        self.brightness = brightness
        self.contrast = contrast

    def draw_params(self, rng: np.random.Generator, in_meta: StageMeta) -> Params:
        return {
            "brightness": float(
                rng.uniform(1 - self.brightness, 1 + self.brightness)
            ),
            "contrast": float(rng.uniform(1 - self.contrast, 1 + self.contrast)),
        }

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        pixels = payload.data.astype(np.float64)
        pixels = pixels * params["brightness"]
        mean = pixels.mean()
        pixels = (pixels - mean) * params["contrast"] + mean
        return Payload.image(np.clip(np.round(pixels), 0, 255).astype(np.uint8))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_image(meta.height, meta.width, meta.channels)


class RandomGrayscale(Op):
    """Replace all channels by luma with probability ``p`` (stays 3ch)."""

    input_kind = PayloadKind.IMAGE_U8
    output_kind = PayloadKind.IMAGE_U8

    def __init__(self, p: float = 0.1) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = p

    def draw_params(self, rng: np.random.Generator, in_meta: StageMeta) -> Params:
        return {"grayscale": bool(rng.random() < self.p)}

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        if not params["grayscale"]:
            return Payload.image(payload.data)
        weights = np.array([0.299, 0.587, 0.114])
        luma = np.clip(np.round(payload.data @ weights), 0, 255).astype(np.uint8)
        return Payload.image(np.repeat(luma[..., None], 3, axis=-1))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_image(meta.height, meta.width, meta.channels)

    def work_pixels(self, in_meta, out_meta, params):
        return 0, out_meta.pixels if params.get("grayscale") else 0


# Cost entries for the extra ops (same affine shape as the core table).
EXTRA_OP_COSTS = {
    "Resize": OpCost(fixed_ns=10_000.0, ns_per_input_pixel=3.0, ns_per_output_pixel=10.0),
    "CenterCrop": OpCost(fixed_ns=5_000.0, ns_per_output_pixel=1.0),
    "ColorJitter": OpCost(fixed_ns=8_000.0, ns_per_output_pixel=6.0),
    "RandomGrayscale": OpCost(fixed_ns=5_000.0, ns_per_output_pixel=3.0),
}


def cost_model_with_extras(base: CostModel = None) -> CostModel:
    """A cost model covering the core five plus the extra ops."""
    base = base if base is not None else CostModel()
    table = dict(base.op_costs)
    table.update(EXTRA_OP_COSTS)
    return CostModel(table, base.cpu_speed_factor)


def validation_pipeline(
    resize: int = 256, crop: int = 224, codec=None
) -> Pipeline:
    """The PyTorch ImageNet example's *evaluation* transform.

    Deterministic (no random augmentation), which makes every sample's
    stage sizes epoch-invariant -- SOPHON's machinery applies unchanged.
    """
    return Pipeline(
        [Decode(codec), Resize(resize), CenterCrop(crop), ToTensor(), Normalize()],
        cost_model=cost_model_with_extras(),
    )


def augmented_training_pipeline(crop_size: int = 224, codec=None) -> Pipeline:
    """A heavier training pipeline with photometric augmentations."""
    from repro.preprocessing.ops import RandomHorizontalFlip, RandomResizedCrop

    return Pipeline(
        [
            Decode(codec),
            RandomResizedCrop(size=crop_size),
            RandomHorizontalFlip(),
            ColorJitter(),
            RandomGrayscale(),
            ToTensor(),
            Normalize(),
        ],
        cost_model=cost_model_with_extras(),
    )
