"""The five-op preprocessing pipeline from the paper's case study.

The pipeline mirrors the official PyTorch ImageNet training script:
Decode -> RandomResizedCrop -> RandomHorizontalFlip -> ToTensor -> Normalize.
Each op is a real transformation over numpy data *and* carries a metadata
simulation (:meth:`Op.simulate`) so the exact same size/cost algebra can be
evaluated without touching pixels -- that is what the trace datasets and the
decision engine run on.

Stage numbering convention used across the project: stage 0 is the raw
encoded sample; stage ``k`` (1-based) is the output of the k-th op.  A
"split point" of ``k`` means ops ``1..k`` run on the storage node and ops
``k+1..n`` on the compute node; split 0 is no offloading.
"""

from repro.preprocessing.payload import Payload, PayloadKind, StageMeta
from repro.preprocessing.ops import (
    Decode,
    Normalize,
    Op,
    RandomHorizontalFlip,
    RandomResizedCrop,
    ToTensor,
)
from repro.preprocessing.pipeline import Pipeline, standard_pipeline
from repro.preprocessing.cost_model import CostModel, DEFAULT_COST_MODEL, calibrate
from repro.preprocessing.records import SampleRecord, best_split, build_record

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Decode",
    "Normalize",
    "Op",
    "Payload",
    "PayloadKind",
    "Pipeline",
    "RandomHorizontalFlip",
    "RandomResizedCrop",
    "SampleRecord",
    "StageMeta",
    "ToTensor",
    "best_split",
    "build_record",
    "calibrate",
    "standard_pipeline",
]
