"""Per-sample profile records: the currency of SOPHON's decision engine.

A :class:`SampleRecord` captures what the stage-two profiler learns about
one sample: its serialized size at every pipeline stage and the CPU cost of
every op.  From it we derive the sample's best split point, the traffic
saved by offloading to that split, and the paper's *offloading efficiency*
(bytes saved per CPU-second of offloaded work).
"""

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.preprocessing.cost_model import CostModel
from repro.preprocessing.payload import StageMeta
from repro.preprocessing.pipeline import Pipeline


@dataclasses.dataclass(frozen=True)
class SampleRecord:
    """Stage sizes and op costs for one sample.

    stage_sizes: length n_ops + 1; entry 0 is the raw encoded size, entry k
        the serialized size after op k.
    op_costs: length n_ops; single-core seconds for op k (1-based -> index
        k-1).
    """

    sample_id: int
    stage_sizes: Tuple[int, ...]
    op_costs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.stage_sizes) != len(self.op_costs) + 1:
            raise ValueError(
                "stage_sizes must have one more entry than op_costs "
                f"({len(self.stage_sizes)} vs {len(self.op_costs)})"
            )
        if any(s < 0 for s in self.stage_sizes):
            raise ValueError(f"negative stage size in {self.stage_sizes}")
        if any(c < 0 for c in self.op_costs):
            raise ValueError(f"negative op cost in {self.op_costs}")
        # Cache cumulative costs so prefix_cost/suffix_cost/total_cost are
        # O(1) lookups -- the decision engine calls them for every candidate
        # split of every sample.  Each entry is built with the same
        # left-to-right fold ``sum(slice)`` performs (including sum's int-0
        # start), so the cached values are bit-identical to the re-summed
        # ones; in particular suffix entries are NOT derived as
        # total - prefix, which would round differently.
        prefix: List[float] = []
        for split in range(len(self.op_costs) + 1):
            acc: float = 0
            for cost in self.op_costs[:split]:
                acc = acc + cost
            prefix.append(acc)
        suffix: List[float] = []
        for split in range(len(self.op_costs) + 1):
            acc = 0
            for cost in self.op_costs[split:]:
                acc = acc + cost
            suffix.append(acc)
        object.__setattr__(self, "_prefix_costs", tuple(prefix))
        object.__setattr__(self, "_suffix_costs", tuple(suffix))

    # -- sizes -------------------------------------------------------------

    @property
    def raw_size(self) -> int:
        return self.stage_sizes[0]

    @property
    def num_ops(self) -> int:
        return len(self.op_costs)

    @property
    def min_stage(self) -> int:
        """The stage (split point) at which this sample is smallest.

        Ties break toward the earliest stage: equal size for less offloaded
        CPU work is strictly better.
        """
        sizes = self.stage_sizes
        return min(range(len(sizes)), key=lambda k: (sizes[k], k))

    @property
    def min_size(self) -> int:
        return self.stage_sizes[self.min_stage]

    def size_at(self, split: int) -> int:
        """Wire size when ops 1..split run remotely (0 = raw)."""
        return self.stage_sizes[split]

    # -- costs -------------------------------------------------------------

    def prefix_cost(self, split: int) -> float:
        """Single-core CPU seconds for ops 1..split."""
        if not 0 <= split <= self.num_ops:
            raise ValueError(f"bad split {split} for {self.num_ops}-op record")
        return self._prefix_costs[split]  # type: ignore[attr-defined]

    def suffix_cost(self, split: int) -> float:
        """Single-core CPU seconds for ops split+1..n."""
        if not 0 <= split <= self.num_ops:
            raise ValueError(f"bad split {split} for {self.num_ops}-op record")
        return self._suffix_costs[split]  # type: ignore[attr-defined]

    @property
    def total_cost(self) -> float:
        return self._prefix_costs[-1]  # type: ignore[attr-defined]

    # -- offloading value ---------------------------------------------------

    def savings(self, split: int) -> int:
        """Bytes kept off the wire by offloading to ``split``."""
        return self.raw_size - self.size_at(split)

    @property
    def best_savings(self) -> int:
        return self.savings(self.min_stage)

    @property
    def offload_efficiency(self) -> float:
        """Paper section 3.2: size reduction / preprocessing time.

        Zero when the sample is smallest in raw form (no offload is
        worthwhile), matching the 24%-at-ratio-0 population of Figure 1c.
        """
        split = self.min_stage
        if split == 0:
            return 0.0
        cost = self.prefix_cost(split)
        if cost <= 0.0:
            # A free size reduction; rank it above everything costed.
            return float("inf")
        return self.savings(split) / cost


@dataclasses.dataclass(frozen=True)
class ProgressiveSampleRecord(SampleRecord):
    """A :class:`SampleRecord` whose raw encoding is a progressive stream.

    Adds the fidelity axis: the raw object can be fetched as any scan
    prefix, so the planner may choose *how many bytes* of the sample to
    ship instead of (or before) choosing where to split the pipeline.

    scan_sizes: cumulative wire size of each scan prefix; entry k-1 is the
        byte size when only the first k scans ship.  The final entry is the
        complete stream, so ``scan_sizes[-1] == stage_sizes[0]``.
    scan_psnr_db: PSNR of each prefix decode against the full decode; the
        final entry is ``inf`` (the full prefix is exact) and values are
        non-decreasing (fidelity only improves as scans accumulate).
    """

    scan_sizes: Tuple[int, ...] = ()
    scan_psnr_db: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.scan_sizes:
            raise ValueError("progressive record needs at least one scan")
        if len(self.scan_psnr_db) != len(self.scan_sizes):
            raise ValueError(
                f"{len(self.scan_psnr_db)} PSNR entries for "
                f"{len(self.scan_sizes)} scans"
            )
        if any(b <= a for a, b in zip(self.scan_sizes, self.scan_sizes[1:])):
            raise ValueError(f"scan sizes must strictly increase: {self.scan_sizes}")
        if self.scan_sizes[-1] != self.stage_sizes[0]:
            raise ValueError(
                f"full scan prefix is {self.scan_sizes[-1]} bytes but the raw "
                f"stage size is {self.stage_sizes[0]}"
            )
        if any(b < a for a, b in zip(self.scan_psnr_db, self.scan_psnr_db[1:])):
            raise ValueError(
                f"scan PSNR must be non-decreasing: {self.scan_psnr_db}"
            )
        if self.scan_psnr_db[-1] != float("inf"):
            raise ValueError("full-prefix PSNR must be inf (exact reconstruction)")

    @property
    def num_scans(self) -> int:
        return len(self.scan_sizes)

    def size_at_fidelity(self, scan_count: int) -> int:
        """Wire size when only the first ``scan_count`` scans ship."""
        if not 1 <= scan_count <= self.num_scans:
            raise ValueError(
                f"scan_count {scan_count} outside [1, {self.num_scans}]"
            )
        return self.scan_sizes[scan_count - 1]

    def psnr_at(self, scan_count: int) -> float:
        """Fidelity (dB vs. the full decode) of a ``scan_count`` prefix."""
        if not 1 <= scan_count <= self.num_scans:
            raise ValueError(
                f"scan_count {scan_count} outside [1, {self.num_scans}]"
            )
        return self.scan_psnr_db[scan_count - 1]

    def fidelity_savings(self, scan_count: int) -> int:
        """Bytes kept off the wire by shipping only ``scan_count`` scans."""
        return self.raw_size - self.size_at_fidelity(scan_count)


def build_record(
    pipeline: Pipeline,
    raw_meta: StageMeta,
    sample_id: int,
    *,
    seed: int,
    epoch: int = 0,
    cost_model: Optional[CostModel] = None,
) -> SampleRecord:
    """Profile one sample through ``pipeline`` (metadata simulation)."""
    run = pipeline.simulate(
        raw_meta, seed=seed, epoch=epoch, sample_id=sample_id, cost_model=cost_model
    )
    sizes = (raw_meta.nbytes,) + tuple(s.out_meta.nbytes for s in run.stages)
    costs = tuple(s.cost_s for s in run.stages)
    return SampleRecord(sample_id=sample_id, stage_sizes=sizes, op_costs=costs)


def best_split(records: Sequence[SampleRecord]) -> List[int]:
    """The per-sample best split point for a collection of records."""
    return [r.min_stage for r in records]
