"""Deterministic CPU-cost model for preprocessing ops.

All timing in the reproduction runs on a virtual clock, so op costs come
from an explicit model: affine in the op's input/output pixel counts.  The
default constants are calibrated so that the pipeline-level ratios match the
paper's setting (decode dominates; the offloadable prefix of a mean
OpenImages sample costs ~13 ms of one Xeon core; the full 40k-sample subset
costs minutes of single-core time).  :func:`calibrate` re-derives constants
from real wall-clock measurements of the numpy ops for anyone who wants the
model tied to their machine instead.
"""

import dataclasses
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.telemetry.clock import Clock


@dataclasses.dataclass(frozen=True)
class OpCost:
    """Affine cost for one op: fixed + per-input-pixel + per-output-pixel.

    "Pixels" are spatial (H*W); channel handling is folded into the
    constants.  All rates are in nanoseconds.
    """

    fixed_ns: float = 0.0
    ns_per_input_pixel: float = 0.0
    ns_per_output_pixel: float = 0.0

    def seconds(self, input_pixels: int, output_pixels: int) -> float:
        total_ns = (
            self.fixed_ns
            + self.ns_per_input_pixel * input_pixels
            + self.ns_per_output_pixel * output_pixels
        )
        return total_ns * 1e-9


# Default constants.  Decode is by far the most expensive op, as in every
# published measurement of JPEG-based training pipelines; ToTensor/Normalize
# are cheap per-pixel passes over the (small) cropped image.
DEFAULT_OP_COSTS: Dict[str, OpCost] = {
    "Decode": OpCost(fixed_ns=30_000.0, ns_per_output_pixel=7.0),
    "RandomResizedCrop": OpCost(
        fixed_ns=10_000.0, ns_per_input_pixel=3.0, ns_per_output_pixel=10.0
    ),
    "RandomHorizontalFlip": OpCost(fixed_ns=5_000.0, ns_per_output_pixel=1.0),
    "ToTensor": OpCost(fixed_ns=10_000.0, ns_per_output_pixel=4.0),
    "Normalize": OpCost(fixed_ns=10_000.0, ns_per_output_pixel=6.0),
}


class CostModel:
    """Maps (op, work size) to single-core CPU seconds.

    cpu_speed_factor scales all costs and models heterogeneous CPU types
    across nodes (paper section 6 future work): a storage node with
    ``cpu_speed_factor=2.0`` takes twice as long per op.
    """

    def __init__(
        self,
        op_costs: Optional[Dict[str, OpCost]] = None,
        cpu_speed_factor: float = 1.0,
    ) -> None:
        if cpu_speed_factor <= 0:
            raise ValueError(f"cpu_speed_factor must be > 0, got {cpu_speed_factor}")
        self.op_costs = dict(DEFAULT_OP_COSTS if op_costs is None else op_costs)
        self.cpu_speed_factor = cpu_speed_factor

    def cost_for(self, op_name: str) -> OpCost:
        try:
            return self.op_costs[op_name]
        except KeyError:
            raise KeyError(
                f"no cost entry for op {op_name!r}; known ops: {sorted(self.op_costs)}"
            ) from None

    def op_seconds(self, op_name: str, input_pixels: int, output_pixels: int) -> float:
        """Single-core seconds to run ``op_name`` over the given work size."""
        base = self.cost_for(op_name).seconds(input_pixels, output_pixels)
        return base * self.cpu_speed_factor

    def scaled(self, cpu_speed_factor: float) -> "CostModel":
        """A copy of this model with a different CPU speed factor."""
        return CostModel(self.op_costs, cpu_speed_factor)


DEFAULT_COST_MODEL = CostModel()


def _measure(
    fn: Callable[..., object],
    *args: object,
    repeats: int = 3,
    timer: Clock = time.perf_counter,
) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = timer()
        fn(*args)
        best = min(best, timer() - start)
    return best


def calibrate(
    image_side: int = 512, repeats: int = 3, timer: Clock = time.perf_counter
) -> Dict[str, OpCost]:
    """Measure real op costs on this machine.

    Returns a cost table in the same shape as :data:`DEFAULT_OP_COSTS`,
    attributing each op's measured time to its dominant per-pixel term.
    This exists so the virtual-clock constants can be re-grounded; the
    shipped defaults were produced the same way and then rounded.  The
    timer is injectable (:data:`~repro.telemetry.clock.Clock` protocol) so
    tests calibrate against a deterministic clock.
    """
    from repro.codec import CodecConfig, ToyJpegCodec
    from repro.preprocessing.resize import resize_bilinear

    rng = np.random.default_rng(0)
    image = rng.integers(0, 256, size=(image_side, image_side, 3), dtype=np.uint8)
    pixels = image_side * image_side
    codec = ToyJpegCodec(CodecConfig())
    encoded = codec.encode(image)

    decode_s = _measure(codec.decode, encoded, repeats=repeats, timer=timer)
    resize_s = _measure(resize_bilinear, image, 224, 224, repeats=repeats, timer=timer)
    flip_s = _measure(lambda a: np.ascontiguousarray(a[:, ::-1]), image, repeats=repeats, timer=timer)
    small = image[:224, :224]
    to_tensor_s = _measure(
        lambda a: (a.astype(np.float32) / 255.0).transpose(2, 0, 1),
        small,
        repeats=repeats,
        timer=timer,
    )
    tensor = (small.astype(np.float32) / 255.0).transpose(2, 0, 1)
    mean = np.array([0.485, 0.456, 0.406], dtype=np.float32).reshape(3, 1, 1)
    std = np.array([0.229, 0.224, 0.225], dtype=np.float32).reshape(3, 1, 1)
    normalize_s = _measure(lambda t: (t - mean) / std, tensor, repeats=repeats, timer=timer)

    out_pixels = 224 * 224
    return {
        "Decode": OpCost(ns_per_output_pixel=decode_s * 1e9 / pixels),
        "RandomResizedCrop": OpCost(
            ns_per_input_pixel=resize_s * 1e9 / pixels / 2,
            ns_per_output_pixel=resize_s * 1e9 / out_pixels / 2,
        ),
        "RandomHorizontalFlip": OpCost(ns_per_output_pixel=flip_s * 1e9 / pixels),
        "ToTensor": OpCost(ns_per_output_pixel=to_tensor_s * 1e9 / out_pixels),
        "Normalize": OpCost(ns_per_output_pixel=normalize_s * 1e9 / out_pixels),
    }
