"""Audio preprocessing pipeline: decode -> mel spectrogram -> normalize.

The paper's intro motivates DL across "computer vision, natural language
processing, and audio processing"; this module gives the framework its
audio domain.  The size algebra is the interesting part: decoding inflates
a compressed stream into float PCM (4 bytes/sample), but the mel
spectrogram *shrinks* it dramatically (n_mels values per hop of input),
so the minimum-size stage sits after feature extraction -- audio workloads
offload the whole feature front-end, and SOPHON discovers that from the
same per-sample records it uses for images.

Payload conventions: PCM travels as a (1, 1, N) float32 tensor,
spectrograms as (1, n_mels, frames).
"""

import math
from typing import Optional, Tuple

import numpy as np

from repro.codec.audio import ToyFlacCodec
from repro.preprocessing.cost_model import CostModel, OpCost
from repro.preprocessing.ops import Op, Params
from repro.preprocessing.payload import Payload, PayloadKind, StageMeta
from repro.preprocessing.pipeline import Pipeline


class DecodeAudio(Op):
    """Compressed stream -> float32 PCM in [-1, 1], shape (1, 1, N)."""

    input_kind = PayloadKind.ENCODED
    output_kind = PayloadKind.TENSOR_F32

    def __init__(self, codec: Optional[ToyFlacCodec] = None) -> None:
        self.codec = codec if codec is not None else ToyFlacCodec()

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        pcm, _ = self.codec.decode(payload.data)
        samples = (pcm.astype(np.float32) / 32768.0).reshape(1, 1, -1)
        return Payload.tensor(np.ascontiguousarray(samples))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        # Convention: an encoded audio meta carries height=1, width=N.
        return StageMeta.for_tensor(1, meta.width, channels=1)

    def work_pixels(self, in_meta, out_meta, params) -> Tuple[int, int]:
        return 0, out_meta.width


class MelSpectrogram(Op):
    """Framed STFT magnitudes through a triangular mel filterbank (log)."""

    input_kind = PayloadKind.TENSOR_F32
    output_kind = PayloadKind.TENSOR_F32

    def __init__(
        self,
        n_fft: int = 1024,
        hop: int = 512,
        n_mels: int = 64,
        sample_rate: int = 16_000,
    ) -> None:
        if n_fft < 8 or not (n_fft & (n_fft - 1)) == 0:
            raise ValueError(f"n_fft must be a power of two >= 8, got {n_fft}")
        if not 1 <= hop <= n_fft:
            raise ValueError(f"hop must be in [1, n_fft], got {hop}")
        if n_mels < 1:
            raise ValueError(f"n_mels must be >= 1, got {n_mels}")
        self.n_fft = n_fft
        self.hop = hop
        self.n_mels = n_mels
        self.sample_rate = sample_rate
        self._window = np.hanning(n_fft).astype(np.float32)
        self._filterbank = self._mel_filterbank()

    @staticmethod
    def _hz_to_mel(hz: float) -> float:
        return 2595.0 * math.log10(1.0 + hz / 700.0)

    @staticmethod
    def _mel_to_hz(mel: float) -> float:
        return 700.0 * (10.0 ** (mel / 2595.0) - 1.0)

    def _mel_filterbank(self) -> np.ndarray:
        bins = self.n_fft // 2 + 1
        nyquist = self.sample_rate / 2.0
        mel_points = np.linspace(
            self._hz_to_mel(0.0), self._hz_to_mel(nyquist), self.n_mels + 2
        )
        hz_points = np.array([self._mel_to_hz(m) for m in mel_points])
        bin_points = np.floor((self.n_fft + 1) * hz_points / self.sample_rate).astype(int)
        bin_points = np.clip(bin_points, 0, bins - 1)
        bank = np.zeros((self.n_mels, bins), dtype=np.float32)
        for m in range(1, self.n_mels + 1):
            left, center, right = bin_points[m - 1 : m + 2]
            center = max(center, left + 1)
            right = max(right, center + 1)
            bank[m - 1, left:center] = (
                np.arange(left, center) - left
            ) / (center - left)
            bank[m - 1, center:right] = (right - np.arange(center, right)) / (
                right - center
            )
        return bank

    def num_frames(self, num_samples: int) -> int:
        if num_samples < self.n_fft:
            return 1
        return 1 + (num_samples - self.n_fft) // self.hop

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        signal = payload.data.reshape(-1)
        if len(signal) < self.n_fft:
            signal = np.pad(signal, (0, self.n_fft - len(signal)))
        frames = self.num_frames(len(signal))
        strided = np.stack(
            [signal[i * self.hop : i * self.hop + self.n_fft] for i in range(frames)]
        )
        spectrum = np.fft.rfft(strided * self._window, axis=1)
        power = (spectrum.real**2 + spectrum.imag**2).astype(np.float32)
        mel = power @ self._filterbank.T
        features = np.log1p(mel).T.astype(np.float32)  # (n_mels, frames)
        return Payload.tensor(np.ascontiguousarray(features[None, :, :]))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        frames = self.num_frames(meta.width)
        return StageMeta.for_tensor(self.n_mels, frames, channels=1)

    def work_pixels(self, in_meta, out_meta, params) -> Tuple[int, int]:
        # FFT cost scales with input samples; filterbank with output cells.
        return in_meta.width, out_meta.pixels

    def __repr__(self) -> str:
        return f"MelSpectrogram(n_fft={self.n_fft}, hop={self.hop}, n_mels={self.n_mels})"


class NormalizeSpectrogram(Op):
    """Per-mel-bin standardization over time."""

    input_kind = PayloadKind.TENSOR_F32
    output_kind = PayloadKind.TENSOR_F32

    def apply(self, payload: Payload, params: Params) -> Payload:
        self._check_input(payload.kind)
        features = payload.data
        mean = features.mean(axis=-1, keepdims=True)
        std = features.std(axis=-1, keepdims=True) + 1e-6
        return Payload.tensor(((features - mean) / std).astype(np.float32))

    def simulate(self, meta: StageMeta, params: Params) -> StageMeta:
        return StageMeta.for_tensor(meta.height, meta.width, meta.channels)


#: Cost entries for the audio ops (ns per sample / output cell).
AUDIO_OP_COSTS = {
    "DecodeAudio": OpCost(fixed_ns=20_000.0, ns_per_output_pixel=4.0),
    "MelSpectrogram": OpCost(
        fixed_ns=30_000.0, ns_per_input_pixel=25.0, ns_per_output_pixel=2.0
    ),
    "NormalizeSpectrogram": OpCost(fixed_ns=5_000.0, ns_per_output_pixel=3.0),
}


def audio_cost_model(base: Optional[CostModel] = None) -> CostModel:
    base = base if base is not None else CostModel()
    table = dict(base.op_costs)
    table.update(AUDIO_OP_COSTS)
    return CostModel(table, base.cpu_speed_factor)


def audio_pipeline(
    n_fft: int = 1024,
    hop: int = 512,
    n_mels: int = 64,
    codec: Optional[ToyFlacCodec] = None,
) -> Pipeline:
    """Decode -> MelSpectrogram -> NormalizeSpectrogram."""
    return Pipeline(
        [
            DecodeAudio(codec),
            MelSpectrogram(n_fft=n_fft, hop=hop, n_mels=n_mels),
            NormalizeSpectrogram(),
        ],
        cost_model=audio_cost_model(),
    )
