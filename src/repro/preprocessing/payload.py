"""Payload containers flowing through the preprocessing pipeline.

A :class:`Payload` is what an op consumes/produces: encoded bytes, a uint8
image, or a float32 tensor.  A :class:`StageMeta` is the metadata shadow of a
payload -- just enough (kind, dimensions, byte size) to compute wire sizes
and CPU costs without materializing pixels.  Ops implement both a real
``apply`` over payloads and a pure ``simulate`` over metas, and tests assert
the two agree.
"""

import dataclasses
import enum
from typing import Optional, Union

import numpy as np


class PayloadKind(enum.Enum):
    """The representation a sample is in at a given pipeline stage."""

    ENCODED = "encoded"  # compressed bytes as stored (raw JPEG in the paper)
    IMAGE_U8 = "image_u8"  # decoded uint8 HxWx3 pixels
    TENSOR_F32 = "tensor_f32"  # float32 CxHxW tensor

    @property
    def bytes_per_value(self) -> int:
        """Bytes per scalar value for array kinds (1 for encoded streams)."""
        return 4 if self is PayloadKind.TENSOR_F32 else 1


@dataclasses.dataclass(frozen=True)
class StageMeta:
    """Metadata shadow of a payload: enough to size and cost it.

    nbytes: serialized size of the payload at this stage.
    height/width: spatial dimensions (None while still encoded-only traces
        lack them -- but all datasets in this repo record dimensions).
    """

    kind: PayloadKind
    nbytes: int
    height: int
    width: int
    channels: int = 3

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.height < 1 or self.width < 1:
            raise ValueError(f"bad dimensions {self.height}x{self.width}")

    @property
    def pixels(self) -> int:
        """Pixel count (spatial only, excludes channels)."""
        return self.height * self.width

    @classmethod
    def for_encoded(cls, nbytes: int, height: int, width: int) -> "StageMeta":
        return cls(PayloadKind.ENCODED, nbytes, height, width)

    @classmethod
    def for_image(cls, height: int, width: int, channels: int = 3) -> "StageMeta":
        return cls(PayloadKind.IMAGE_U8, height * width * channels, height, width, channels)

    @classmethod
    def for_tensor(cls, height: int, width: int, channels: int = 3) -> "StageMeta":
        return cls(
            PayloadKind.TENSOR_F32, height * width * channels * 4, height, width, channels
        )


@dataclasses.dataclass
class Payload:
    """A sample's data at some pipeline stage.

    ``data`` is bytes for ENCODED, an (H, W, C) uint8 array for IMAGE_U8, or
    a (C, H, W) float32 array for TENSOR_F32.
    """

    kind: PayloadKind
    data: Union[bytes, np.ndarray]

    @classmethod
    def encoded(cls, data: bytes, height: Optional[int] = None, width: Optional[int] = None) -> "Payload":
        payload = cls(PayloadKind.ENCODED, data)
        payload._hint_height = height  # decoded dims, when known up front
        payload._hint_width = width
        return payload

    @classmethod
    def image(cls, array: np.ndarray) -> "Payload":
        if array.dtype != np.uint8 or array.ndim != 3:
            raise ValueError(f"image payload must be (H, W, C) uint8, got {array.dtype} {array.shape}")
        return cls(PayloadKind.IMAGE_U8, array)

    @classmethod
    def tensor(cls, array: np.ndarray) -> "Payload":
        if array.dtype != np.float32 or array.ndim != 3:
            raise ValueError(f"tensor payload must be (C, H, W) float32, got {array.dtype} {array.shape}")
        return cls(PayloadKind.TENSOR_F32, array)

    @property
    def nbytes(self) -> int:
        """Serialized payload size in bytes (what crosses the wire)."""
        if self.kind is PayloadKind.ENCODED:
            return len(self.data)
        return int(self.data.nbytes)

    @property
    def meta(self) -> StageMeta:
        """The metadata shadow of this payload."""
        if self.kind is PayloadKind.ENCODED:
            height = getattr(self, "_hint_height", None) or 1
            width = getattr(self, "_hint_width", None) or 1
            return StageMeta.for_encoded(self.nbytes, height, width)
        if self.kind is PayloadKind.IMAGE_U8:
            h, w, c = self.data.shape
            return StageMeta.for_image(h, w, c)
        c, h, w = self.data.shape
        return StageMeta.for_tensor(h, w, c)
