"""Bilinear image resize on numpy arrays (PIL.Image.resize stand-in)."""

import numpy as np


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Resize an (H, W, C) or (H, W) array to (out_h, out_w) bilinearly.

    Uses align-corners=False sampling (the torchvision default), with edge
    clamping.  Returns the same dtype as the input; float intermediates are
    rounded for integer inputs.
    """
    if out_h < 1 or out_w < 1:
        raise ValueError(f"bad output size {out_h}x{out_w}")
    in_h, in_w = image.shape[:2]
    if (in_h, in_w) == (out_h, out_w):
        return image.copy()

    # Source coordinates for each output pixel center.
    ys = (np.arange(out_h) + 0.5) * (in_h / out_h) - 0.5
    xs = (np.arange(out_w) + 0.5) * (in_w / out_w) - 0.5
    ys = np.clip(ys, 0, in_h - 1)
    xs = np.clip(xs, 0, in_w - 1)

    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, in_h - 1)
    x1 = np.minimum(x0 + 1, in_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    if image.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]

    pixels = image.astype(np.float64)
    top = pixels[y0][:, x0] * (1 - wx) + pixels[y0][:, x1] * wx
    bottom = pixels[y1][:, x0] * (1 - wx) + pixels[y1][:, x1] * wx
    out = top * (1 - wy) + bottom * wy

    if np.issubdtype(image.dtype, np.integer):
        info = np.iinfo(image.dtype)
        return np.clip(np.round(out), info.min, info.max).astype(image.dtype)
    return out.astype(image.dtype)
