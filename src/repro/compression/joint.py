"""Joint offload + compression planning.

:class:`~repro.compression.selective.SelectiveCompressor` runs *after* the
offload engine, so under a tight storage-CPU budget the offload pass can
spend the whole budget before compression gets a look -- even when
compressing an already-offloaded sample saves more bytes per CPU-second
than offloading the next marginal sample.  The joint planner fixes that:
both action types compete in one efficiency-ordered greedy queue.

Actions:

- *offload(i)*: move sample i's prefix to the storage node (unlocks a
  follow-up compression action for i);
- *compress(i)*: deflate sample i's offloaded payload on the storage node.

Both are ranked by bytes saved per storage-CPU-second, admitted while the
network stays predominant and the epoch estimate improves -- the same
discipline as the sequential planners, in one queue.
"""

import dataclasses
import heapq
from typing import Dict, Optional, Sequence

from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.compression.codecs import CompressionModel
from repro.compression.selective import CompressionDecision, CompressionPlan, stage_kinds
from repro.core.plan import OffloadPlan
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord


@dataclasses.dataclass
class JointPlan:
    """The joint outcome: an offload plan plus a compression plan."""

    offload: OffloadPlan
    compression: CompressionPlan

    @property
    def num_offloaded(self) -> int:
        return self.offload.num_offloaded

    @property
    def num_compressed(self) -> int:
        return self.compression.num_compressed


class JointPlanner:
    """One greedy queue over offload and compression actions."""

    def __init__(self, model: Optional[CompressionModel] = None) -> None:
        self.model = model if model is not None else CompressionModel()

    def plan(
        self,
        records: Sequence[SampleRecord],
        pipeline: Pipeline,
        spec: ClusterSpec,
        gpu_time_s: float,
        overhead_bytes: Optional[int] = None,
    ) -> JointPlan:
        num_samples = len(records)
        if overhead_bytes is None:
            overhead_bytes = spec.response_overhead_bytes
        if not spec.can_offload:
            return JointPlan(
                offload=OffloadPlan.no_offload(
                    num_samples, reason="no storage cores"
                ),
                compression=CompressionPlan(decisions={}, reason="no storage cores"),
            )

        kinds = stage_kinds(pipeline)
        epoch_model = EpochModel(spec)
        metrics = EpochMetrics(
            gpu_time_s=gpu_time_s,
            compute_cpu_s=sum(r.total_cost for r in records),
            storage_cpu_s=0.0,
            traffic_bytes=float(
                sum(r.raw_size for r in records) + overhead_bytes * num_samples
            ),
        )

        def compress_action(record: SampleRecord) -> Optional[CompressionDecision]:
            split = record.min_stage
            kind = kinds[split]
            wire = record.size_at(split)
            saved = self.model.savings_bytes(kind, wire)
            if saved <= 0:
                return None
            return CompressionDecision(
                sample_id=record.sample_id,
                kind=kind,
                saved_bytes=saved,
                storage_cpu_s=self.model.compress_seconds(kind, wire),
                compute_cpu_s=self.model.decompress_seconds(kind, wire),
            )

        # Heap entries: (-efficiency, seq, kind, record/decision)
        heap = []
        seq = 0
        for record in records:
            if record.offload_efficiency > 0:
                heapq.heappush(
                    heap, (-record.offload_efficiency, seq, "offload", record)
                )
                seq += 1

        splits = [0] * num_samples
        decisions: Dict[int, CompressionDecision] = {}
        accepted_offloads = accepted_compressions = 0
        reason = "exhausted candidate actions"

        while heap:
            estimate = epoch_model.estimate(metrics)
            if not estimate.network_bound:
                reason = (
                    "network no longer predominant (bottleneck: "
                    f"{estimate.bottleneck.value})"
                )
                break
            _, _, action, payload = heapq.heappop(heap)
            if action == "offload":
                record = payload
                split = record.min_stage
                moved = record.prefix_cost(split)
                trial = metrics.replace(
                    compute_cpu_s=metrics.compute_cpu_s - moved,
                    storage_cpu_s=metrics.storage_cpu_s + moved,
                    traffic_bytes=metrics.traffic_bytes - record.savings(split),
                )
                if (
                    epoch_model.estimate(trial).epoch_time_s
                    > estimate.epoch_time_s + 1e-9
                ):
                    continue
                splits[record.sample_id] = split
                metrics = trial
                accepted_offloads += 1
                # Offloading unlocks compressing this sample's payload.
                follow_up = compress_action(record)
                if follow_up is not None:
                    heapq.heappush(
                        heap, (-follow_up.efficiency, seq, "compress", follow_up)
                    )
                    seq += 1
            else:
                decision = payload
                trial = metrics.replace(
                    storage_cpu_s=metrics.storage_cpu_s + decision.storage_cpu_s,
                    compute_cpu_s=metrics.compute_cpu_s + decision.compute_cpu_s,
                    traffic_bytes=metrics.traffic_bytes - decision.saved_bytes,
                )
                if (
                    epoch_model.estimate(trial).epoch_time_s
                    > estimate.epoch_time_s + 1e-9
                ):
                    continue
                decisions[decision.sample_id] = decision
                metrics = trial
                accepted_compressions += 1

        final = epoch_model.estimate(metrics)
        return JointPlan(
            offload=OffloadPlan(
                splits=splits,
                reason=(
                    f"joint: offloaded {accepted_offloads}/{num_samples}, "
                    f"compressed {accepted_compressions}; {reason}"
                ),
                expected=final,
            ),
            compression=CompressionPlan(
                decisions=decisions,
                reason=f"joint planning; {reason}",
                expected=final,
            ),
        )
