"""Payload compression codecs and their cost/size models."""

import dataclasses
import zlib
from typing import Dict

from repro.preprocessing.payload import PayloadKind


class DeflatePayloadCodec:
    """Deflate (zlib) over serialized wire payloads."""

    def __init__(self, level: int = 1) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"level must be in [1, 9], got {level}")
        self.level = level

    def compress(self, payload: bytes) -> bytes:
        return zlib.compress(payload, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


@dataclasses.dataclass(frozen=True)
class KindProfile:
    """Compression behaviour for one payload kind.

    ratio: expected compressed/uncompressed size (1.0 = incompressible).
    compress_bytes_per_s / decompress_bytes_per_s: single-core throughput.
    """

    ratio: float
    compress_bytes_per_s: float
    decompress_bytes_per_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.5:
            raise ValueError(f"ratio must be in (0, 1.5], got {self.ratio}")
        if self.compress_bytes_per_s <= 0 or self.decompress_bytes_per_s <= 0:
            raise ValueError("throughputs must be > 0")


class CompressionModel:
    """Expected sizes and CPU costs of compressing each payload kind.

    The default ratios reflect what deflate actually does to this
    pipeline's payloads: stored samples are already entropy-coded
    (incompressible, ratio ~1), uint8 pixels compress moderately, float32
    tensors compress a little better because the mantissa bytes of
    normalized values repeat.  Throughputs approximate single-core zlib
    level 1.
    """

    DEFAULT_PROFILES: Dict[PayloadKind, KindProfile] = {
        PayloadKind.ENCODED: KindProfile(
            ratio=1.0, compress_bytes_per_s=250e6, decompress_bytes_per_s=500e6
        ),
        PayloadKind.IMAGE_U8: KindProfile(
            ratio=0.72, compress_bytes_per_s=180e6, decompress_bytes_per_s=450e6
        ),
        PayloadKind.TENSOR_F32: KindProfile(
            ratio=0.58, compress_bytes_per_s=180e6, decompress_bytes_per_s=450e6
        ),
    }

    def __init__(self, profiles: Dict[PayloadKind, KindProfile] = None) -> None:
        self.profiles = dict(self.DEFAULT_PROFILES if profiles is None else profiles)

    def profile_for(self, kind: PayloadKind) -> KindProfile:
        try:
            return self.profiles[kind]
        except KeyError:
            raise KeyError(f"no compression profile for kind {kind}") from None

    def compressed_bytes(self, kind: PayloadKind, nbytes: int) -> int:
        return int(round(nbytes * self.profile_for(kind).ratio))

    def savings_bytes(self, kind: PayloadKind, nbytes: int) -> int:
        return nbytes - self.compressed_bytes(kind, nbytes)

    def compress_seconds(self, kind: PayloadKind, nbytes: int) -> float:
        return nbytes / self.profile_for(kind).compress_bytes_per_s

    def decompress_seconds(self, kind: PayloadKind, nbytes: int) -> float:
        compressed = self.compressed_bytes(kind, nbytes)
        return compressed / self.profile_for(kind).decompress_bytes_per_s
