"""Selective compression of partially preprocessed payloads.

Paper section 6 (future work): "design a strategy to selectively compress
preprocessed data, further reducing data traffic while considering
potential CPU overhead increases."  This package implements that strategy:

- :class:`DeflatePayloadCodec` -- real deflate compression of wire payloads
  (used on the materialized RPC path);
- :class:`CompressionModel` -- per-payload-kind compressibility ratios and
  CPU throughputs so the planner and simulator can reason about traces;
- :class:`SelectiveCompressor` -- a greedy planner in the spirit of the
  offload decision engine: compress the samples with the best
  bytes-saved-per-CPU-second until the network stops being predominant.
"""

from repro.compression.codecs import CompressionModel, DeflatePayloadCodec
from repro.compression.selective import (
    CompressionDecision,
    CompressionPlan,
    SelectiveCompressor,
)
from repro.compression.joint import JointPlan, JointPlanner

__all__ = [
    "CompressionDecision",
    "CompressionModel",
    "CompressionPlan",
    "DeflatePayloadCodec",
    "JointPlan",
    "JointPlanner",
    "SelectiveCompressor",
]
