"""The selective-compression planner (paper section 6 extension).

Runs *after* the offload decision engine: for samples whose offloaded
payload crosses the wire uncompressed (uint8 pixels or float tensors), the
storage node can spend extra CPU to deflate the payload and the compute
node extra CPU to inflate it.  The planner greedily compresses the samples
with the highest bytes-saved-per-storage-CPU-second while the network
remains the predominant metric and the epoch estimate keeps improving --
the same discipline as the offload engine itself.
"""

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.cluster.epoch_model import EpochEstimate, EpochMetrics, EpochModel
from repro.cluster.spec import ClusterSpec
from repro.cluster.trainer import WorkAdjustment
from repro.compression.codecs import CompressionModel
from repro.core.plan import OffloadPlan
from repro.preprocessing.payload import PayloadKind
from repro.preprocessing.pipeline import Pipeline
from repro.preprocessing.records import SampleRecord


@dataclasses.dataclass(frozen=True)
class CompressionDecision:
    """Compress one sample's wire payload."""

    sample_id: int
    kind: PayloadKind
    saved_bytes: int
    storage_cpu_s: float
    compute_cpu_s: float

    @property
    def efficiency(self) -> float:
        if self.storage_cpu_s <= 0:
            return float("inf")
        return self.saved_bytes / self.storage_cpu_s


@dataclasses.dataclass
class CompressionPlan:
    """Which samples get compressed, plus provenance."""

    decisions: Dict[int, CompressionDecision]
    reason: str
    expected: Optional[EpochEstimate] = None

    @property
    def num_compressed(self) -> int:
        return len(self.decisions)

    @property
    def total_saved_bytes(self) -> int:
        return sum(d.saved_bytes for d in self.decisions.values())

    def adjustments(self) -> Dict[int, WorkAdjustment]:
        """Per-sample deltas to feed TrainerSim.run_epoch."""
        return {
            sid: WorkAdjustment(
                wire_bytes_delta=-d.saved_bytes,
                extra_storage_cpu_s=d.storage_cpu_s,
                extra_compute_cpu_s=d.compute_cpu_s,
            )
            for sid, d in self.decisions.items()
        }


def stage_kinds(pipeline: Pipeline) -> List[PayloadKind]:
    """Payload kind at each stage 0..n (0 = stored encoded form)."""
    return [PayloadKind.ENCODED] + [op.output_kind for op in pipeline.ops]


class SelectiveCompressor:
    """Greedy compression planning on top of an offload plan."""

    def __init__(self, model: Optional[CompressionModel] = None) -> None:
        self.model = model if model is not None else CompressionModel()

    def plan(
        self,
        records: Sequence[SampleRecord],
        offload_plan: OffloadPlan,
        pipeline: Pipeline,
        spec: ClusterSpec,
        gpu_time_s: float,
        overhead_bytes: Optional[int] = None,
    ) -> CompressionPlan:
        if len(records) != len(offload_plan):
            raise ValueError(
                f"records cover {len(records)} samples, plan has {len(offload_plan)}"
            )
        if overhead_bytes is None:
            overhead_bytes = spec.response_overhead_bytes
        if not spec.can_offload:
            return CompressionPlan(
                decisions={}, reason="no storage cores: nowhere to run compression"
            )

        kinds = stage_kinds(pipeline)
        epoch_model = EpochModel(spec)

        # Post-offload baseline metrics.
        metrics = EpochMetrics(
            gpu_time_s=gpu_time_s,
            compute_cpu_s=sum(
                r.suffix_cost(offload_plan.split_for(r.sample_id)) for r in records
            ),
            storage_cpu_s=sum(
                r.prefix_cost(offload_plan.split_for(r.sample_id)) for r in records
            ),
            traffic_bytes=float(
                offload_plan.expected_traffic_bytes(records, overhead_bytes)
            ),
        )

        candidates: List[CompressionDecision] = []
        for record in records:
            split = offload_plan.split_for(record.sample_id)
            if split == 0:
                continue  # raw payloads are already entropy coded
            kind = kinds[split]
            wire = record.size_at(split)
            saved = self.model.savings_bytes(kind, wire)
            if saved <= 0:
                continue
            candidates.append(
                CompressionDecision(
                    sample_id=record.sample_id,
                    kind=kind,
                    saved_bytes=saved,
                    storage_cpu_s=self.model.compress_seconds(kind, wire),
                    compute_cpu_s=self.model.decompress_seconds(kind, wire),
                )
            )
        candidates.sort(key=lambda d: d.efficiency, reverse=True)

        decisions: Dict[int, CompressionDecision] = {}
        reason = "exhausted compressible candidates"
        for decision in candidates:
            estimate = epoch_model.estimate(metrics)
            if not estimate.network_bound:
                reason = (
                    f"network no longer predominant after {len(decisions)} samples"
                )
                break
            trial = metrics.replace(
                storage_cpu_s=metrics.storage_cpu_s + decision.storage_cpu_s,
                compute_cpu_s=metrics.compute_cpu_s + decision.compute_cpu_s,
                traffic_bytes=metrics.traffic_bytes - decision.saved_bytes,
            )
            if epoch_model.estimate(trial).epoch_time_s > estimate.epoch_time_s + 1e-9:
                continue
            decisions[decision.sample_id] = decision
            metrics = trial

        return CompressionPlan(
            decisions=decisions,
            reason=f"compressed {len(decisions)}/{len(records)} samples; {reason}",
            expected=epoch_model.estimate(metrics),
        )
