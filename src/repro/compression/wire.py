"""Transparent wire compression for the materialized RPC path.

Models near-storage compression end-to-end with *real* deflate: the
storage side compresses each serialized response before it crosses the
channel, the compute side inflates it, and the channel's byte counters see
the compressed sizes.  This is what grounds :class:`CompressionModel`'s
assumed ratios -- a test compares the model's predictions against the
actual compressed sizes this transport produces.
"""

import zlib
from typing import Callable, Optional

from repro.rpc.channel import ChannelStats


class CompressedChannel:
    """An in-process channel that deflates responses on the wire.

    Only responses are compressed (requests are a few dozen bytes).  The
    caller receives the inflated response; ``stats.response_bytes`` counts
    the compressed bytes, i.e. what actually crossed the link.
    ``uncompressed_response_bytes`` keeps the pre-compression total so the
    achieved ratio is observable.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes],
        level: int = 1,
        fault: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"level must be in [1, 9], got {level}")
        self._handler = handler
        self._fault = fault
        self.level = level
        self.stats = ChannelStats()
        self.uncompressed_response_bytes = 0

    def call(self, request_bytes: bytes) -> bytes:
        if not isinstance(request_bytes, (bytes, bytearray)):
            raise TypeError(
                f"channel carries bytes, got {type(request_bytes).__name__}"
            )
        if self._fault is not None:
            self._fault(bytes(request_bytes))
        self.stats.calls += 1
        self.stats.request_bytes += len(request_bytes)
        response = self._handler(bytes(request_bytes))
        wire = zlib.compress(response, self.level)
        self.stats.response_bytes += len(wire)
        self.uncompressed_response_bytes += len(response)
        # The receiving side inflates before parsing.
        return zlib.decompress(wire)

    @property
    def achieved_ratio(self) -> float:
        """Compressed / uncompressed response bytes so far."""
        if self.uncompressed_response_bytes == 0:
            return 1.0
        return self.stats.response_bytes / self.uncompressed_response_bytes
