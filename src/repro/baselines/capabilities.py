"""Capability descriptors backing the Table 1 comparison."""

import dataclasses


@dataclasses.dataclass(frozen=True)
class Capabilities:
    """The four dimensions of Table 1.

    operation_selective: can offload a strict subset of the pipeline's ops.
    data_partial: can offload preprocessing for a strict subset of samples.
    data_selective: chooses that subset from per-sample characteristics.
    to_near_storage: offloads to the storage node (vs. extra CPU workers).
    """

    operation_selective: bool = False
    data_partial: bool = False
    data_selective: bool = False
    to_near_storage: bool = False

    def row(self) -> tuple:
        """Render as Table-1 style check marks."""

        def mark(flag: bool) -> str:
            return "yes" if flag else "-"

        return (
            mark(self.operation_selective),
            mark(self.data_partial),
            mark(self.data_selective),
            mark(self.to_near_storage),
        )
