"""Baseline offloading policies evaluated against SOPHON (paper section 4).

- :class:`NoOff` -- the original training pipeline, nothing offloaded.
- :class:`AllOff` -- every op of every sample offloaded (ships float
  tensors; the traffic-inflation strawman).
- :class:`ResizeOff` -- Decode + RandomResizedCrop offloaded for every
  sample (static operation selection, no per-sample decisions).
- :class:`FastFlow` -- coarse-grained profiler that offloads the whole
  pipeline for all samples or nothing, whichever its model predicts is
  faster (the published comparator's decision rule).

Each policy declares its Table-1 capability row (operation-selective /
data-partial / data-selective / near-storage) for the capability-matrix
regenerator.
"""

from repro.core.policy import Policy, PolicyContext
from repro.baselines.capabilities import Capabilities
from repro.baselines.simple import AllOff, NoOff, ResizeOff
from repro.baselines.fastflow import FastFlow

__all__ = [
    "AllOff",
    "Capabilities",
    "FastFlow",
    "NoOff",
    "Policy",
    "PolicyContext",
    "ResizeOff",
]
