"""The static baselines: No-Off, All-Off, Resize-Off."""

from repro.baselines.capabilities import Capabilities
from repro.core.plan import OffloadPlan
from repro.core.policy import Policy, PolicyContext


class NoOff(Policy):
    """The original training pipeline: fetch raw, preprocess locally."""

    name = "no-off"
    capabilities = Capabilities()

    def plan(self, context: PolicyContext) -> OffloadPlan:
        return OffloadPlan.no_offload(
            context.num_samples, reason="baseline: never offload"
        )


class AllOff(Policy):
    """Offload every op of every sample; the server ships float tensors."""

    name = "all-off"
    capabilities = Capabilities(to_near_storage=True)

    def plan(self, context: PolicyContext) -> OffloadPlan:
        if not context.spec.can_offload:
            return OffloadPlan.no_offload(
                context.num_samples, reason="all-off clamped: no storage cores"
            )
        return OffloadPlan.uniform(
            context.num_samples,
            split=len(context.pipeline),
            reason="baseline: offload the entire pipeline for all samples",
        )


class ResizeOff(Policy):
    """Offload the prefix through RandomResizedCrop for every sample.

    Static operation selection motivated by "resizing makes many images
    smaller"; no per-sample decisions, which is exactly what hurts it on
    ImageNet (most samples are already small) and under storage-CPU
    scarcity (it offloads work for samples that gain nothing).
    """

    name = "resize-off"
    capabilities = Capabilities(operation_selective=True, to_near_storage=True)

    def __init__(self, through_op: str = "RandomResizedCrop") -> None:
        self.through_op = through_op

    def plan(self, context: PolicyContext) -> OffloadPlan:
        if not context.spec.can_offload:
            return OffloadPlan.no_offload(
                context.num_samples, reason="resize-off clamped: no storage cores"
            )
        names = context.pipeline.op_names
        if self.through_op not in names:
            raise ValueError(
                f"pipeline has no op named {self.through_op!r}; ops: {names}"
            )
        split = names.index(self.through_op) + 1
        return OffloadPlan.uniform(
            context.num_samples,
            split=split,
            reason=f"baseline: offload ops 1..{split} ({'+'.join(names[:split])}) for all samples",
        )
