"""FastFlow-style coarse-grained offloading decision.

The published FastFlow (VLDB '23) offloads input pipelines to remote CPU
workers to relieve *CPU* bottlenecks, treating the preprocessing pipeline
as a single unit and all samples uniformly.  The paper evaluates exactly
that decision rule against SOPHON: estimate epoch time with everything
offloaded versus nothing offloaded, and pick the faster.  Under the
paper's I/O-bound setups, offloading-everything inflates traffic (float
tensors), so FastFlow always chooses not to offload -- which is the
behaviour Figures 3 and 4 report.
"""

from repro.baselines.capabilities import Capabilities
from repro.cluster.epoch_model import EpochMetrics, EpochModel
from repro.core.plan import OffloadPlan
from repro.core.policy import Policy, PolicyContext


class FastFlow(Policy):
    """All-or-nothing offloading chosen by a coarse epoch-time estimate."""

    name = "fastflow"
    capabilities = Capabilities(to_near_storage=True)

    def plan(self, context: PolicyContext) -> OffloadPlan:
        num = context.num_samples
        if not context.spec.can_offload:
            return OffloadPlan.no_offload(num, reason="fastflow: no storage cores")

        records = context.records()
        model = EpochModel(context.spec)
        overhead = context.spec.response_overhead_bytes
        gpu_time = context.epoch_gpu_time_s
        full_split = len(context.pipeline)

        local = EpochMetrics(
            gpu_time_s=gpu_time,
            compute_cpu_s=sum(r.total_cost for r in records),
            storage_cpu_s=0.0,
            traffic_bytes=float(sum(r.raw_size for r in records) + overhead * num),
        )
        offloaded = EpochMetrics(
            gpu_time_s=gpu_time,
            compute_cpu_s=0.0,
            storage_cpu_s=sum(r.total_cost for r in records),
            traffic_bytes=float(
                sum(r.size_at(full_split) for r in records) + overhead * num
            ),
        )

        local_est = model.estimate(local)
        off_est = model.estimate(offloaded)
        if off_est.epoch_time_s < local_est.epoch_time_s:
            return OffloadPlan.uniform(
                num,
                split=full_split,
                reason=(
                    f"fastflow: full offload predicted {off_est.epoch_time_s:.1f}s "
                    f"< local {local_est.epoch_time_s:.1f}s"
                ),
                )
        return OffloadPlan(
            splits=[0] * num,
            reason=(
                f"fastflow: full offload predicted {off_est.epoch_time_s:.1f}s "
                f">= local {local_est.epoch_time_s:.1f}s; not offloading"
            ),
            expected=local_est,
        )
