"""Section-6 extension: storage nodes with slower (or faster) CPUs.

The paper assumes identical CPU types on both nodes; the reproduction
supports a per-node speed factor.  This example shows SOPHON adapting its
plan as the storage node's CPUs get slower: fewer samples are worth
offloading, and epoch time degrades gracefully instead of collapsing.

Run:  python examples/heterogeneous_cpus.py
"""

import dataclasses

from repro import Sophon, make_openimages, standard_cluster
from repro.cluster import TrainerSim
from repro.core.policy import PolicyContext
from repro.preprocessing.pipeline import standard_pipeline
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds
from repro.workloads import get_model_profile


def main() -> None:
    dataset = make_openimages(num_samples=800, seed=13)
    pipeline = standard_pipeline()
    model = get_model_profile("alexnet", "rtx6000")
    base = standard_cluster(storage_cores=4)

    rows = []
    for factor in (0.5, 1.0, 2.0, 4.0, 8.0):
        spec = dataclasses.replace(base, storage_cpu_factor=factor)
        context = PolicyContext(
            dataset=dataset, pipeline=pipeline, spec=spec, model=model, seed=13
        )
        plan = Sophon().plan(context)
        trainer = TrainerSim(dataset, pipeline, model, spec, seed=13)
        stats = trainer.run_epoch(list(plan.splits), epoch=1)
        rows.append(
            (
                f"{factor:g}x",
                plan.num_offloaded,
                format_seconds(stats.epoch_time_s),
                format_bytes(stats.traffic_bytes),
            )
        )

    print("Storage-node CPU slowness sweep (4 storage cores, OpenImages):")
    print(render_table(("CPU slowness", "Offloaded", "Epoch", "Traffic"), rows))
    print("\nSlower storage CPUs shrink the offload set (each offloaded "
          "CPU-second buys less), but SOPHON never does worse than No-Off.")


if __name__ == "__main__":
    main()
