"""Section-6 extension: selectively compress offloaded payloads.

After SOPHON plans its offloads, the selective compressor decides -- per
sample -- whether spending storage-node CPU on deflate buys enough traffic
reduction, using the same network-predominance discipline as the offload
engine.  The example compares epoch time and traffic with and without the
compression pass at several storage-core budgets.

Run:  python examples/selective_compression.py
"""

from repro import Sophon, make_openimages, standard_cluster
from repro.cluster import TrainerSim
from repro.compression import SelectiveCompressor
from repro.core.policy import PolicyContext
from repro.preprocessing.pipeline import standard_pipeline
from repro.utils.tables import render_table
from repro.utils.units import format_bytes, format_seconds
from repro.workloads import get_model_profile


def main() -> None:
    dataset = make_openimages(num_samples=800, seed=11)
    pipeline = standard_pipeline()
    model = get_model_profile("alexnet", "rtx6000")

    rows = []
    for cores in (2, 4, 8, 48):
        spec = standard_cluster(storage_cores=cores)
        context = PolicyContext(
            dataset=dataset, pipeline=pipeline, spec=spec, model=model, seed=11
        )
        plan = Sophon().plan(context)
        compression = SelectiveCompressor().plan(
            context.records(), plan, pipeline, spec, context.epoch_gpu_time_s
        )

        trainer = TrainerSim(dataset, pipeline, model, spec, seed=11)
        plain = trainer.run_epoch(list(plan.splits), epoch=1)
        compressed = trainer.run_epoch(
            list(plan.splits), epoch=1, adjustments=compression.adjustments()
        )
        rows.append(
            (
                cores,
                format_seconds(plain.epoch_time_s),
                format_seconds(compressed.epoch_time_s),
                format_bytes(plain.traffic_bytes),
                format_bytes(compressed.traffic_bytes),
                compression.num_compressed,
            )
        )

    print(render_table(
        ("Cores", "Epoch", "Epoch+zip", "Traffic", "Traffic+zip", "Compressed"),
        rows,
    ))
    print("\nWith scarce cores the compressor stays conservative (compression "
          "competes with offloading for the same CPUs); with ample cores it "
          "compresses aggressively for extra traffic savings.")


if __name__ == "__main__":
    main()
