"""Deploy SOPHON as an object lambda (S3 Object Lambda / Ceph style).

The paper's deployment story (section 5): modern storage services run user
code next to the data.  Here the dataset lives in an object store; the
offload directive is a registered compute-on-read lambda; the training
loader fetches through GET-with-lambda, no bespoke RPC server at all.

Run:  python examples/object_lambda_store.py
"""

from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.data import ImageContentConfig, SyntheticImageDataset
from repro.data.loader import DataLoader
from repro.objectstore import (
    LambdaRegistry,
    ObjectBackedDataset,
    ObjectLambdaFetcher,
    ObjectStore,
    PreprocessingLambda,
    upload_dataset,
)
from repro.preprocessing.pipeline import standard_pipeline
from repro.cluster.spec import standard_cluster
from repro.utils.units import format_bytes
from repro.workloads import get_model_profile


def main() -> None:
    seed = 0
    source = SyntheticImageDataset(
        num_samples=48,
        seed=seed,
        content=ImageContentConfig(min_side=256, max_side=1280, texture_range=(0.3, 1.0)),
    )
    pipeline = standard_pipeline()

    # 1. Stand up the storage cluster: a bucket plus the offload lambda.
    store = ObjectStore()
    bucket = store.create_bucket("training-data")
    uploaded = upload_dataset(source, bucket)
    registry = LambdaRegistry(bucket)
    PreprocessingLambda(pipeline, seed=seed).install(registry)
    print(f"uploaded {len(source)} samples ({format_bytes(uploaded)}) "
          f"to bucket {bucket.name!r}; lambdas: {registry.names()}")

    # 2. Plan against the bucket-backed dataset view.
    view = ObjectBackedDataset(bucket)
    context = PolicyContext(
        dataset=view,
        pipeline=pipeline,
        spec=standard_cluster(storage_cores=8, bandwidth_mbps=100.0),
        model=get_model_profile("alexnet"),
        batch_size=16,
        seed=seed,
    )
    plan = Sophon().plan(context)
    print(f"plan: {plan.reason}")

    # 3. Train straight off the store: GET + lambda per sample.
    fetcher = ObjectLambdaFetcher(registry)
    loader = DataLoader(
        view, pipeline, fetcher, batch_size=16, splits=list(plan.splits), seed=seed
    )
    for batch in loader.epoch(epoch=1):
        assert batch.tensors.shape[1:] == (3, 224, 224)

    invocations = registry.invocations[PreprocessingLambda.NAME]
    print(f"epoch complete: {invocations} lambda invocations, "
          f"{format_bytes(fetcher.traffic_bytes)} left the storage cluster "
          f"(stored bytes touched: {format_bytes(bucket.stats.bytes_read)})")


if __name__ == "__main__":
    main()
