"""Two nodes, real sockets: the storage server behind actual TCP.

Everything the other examples do in-process runs here over a localhost
TCP connection with length-prefixed framing -- the closest analogue to the
paper's gRPC deployment that works on one machine.

Run:  python examples/two_node_tcp.py
"""

from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.data import ImageContentConfig, SyntheticImageDataset
from repro.data.loader import DataLoader
from repro.preprocessing.pipeline import standard_pipeline
from repro.rpc import StorageServer
from repro.rpc.tcp import TcpStorageClient, TcpStorageServer
from repro.utils.units import format_bytes
from repro.workloads import get_model_profile


def main() -> None:
    seed = 0
    dataset = SyntheticImageDataset(
        num_samples=32,
        seed=seed,
        content=ImageContentConfig(min_side=256, max_side=1024, texture_range=(0.3, 1.0)),
    )
    pipeline = standard_pipeline()

    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=standard_cluster(storage_cores=8, bandwidth_mbps=100.0),
        model=get_model_profile("alexnet"),
        batch_size=8,
        seed=seed,
    )
    plan = Sophon().plan(context)
    print(f"plan: {plan.reason}")

    server = StorageServer(dataset, pipeline, seed=seed)
    with TcpStorageServer(server.handle) as tcp:
        print(f"storage node listening on {tcp.address[0]}:{tcp.address[1]}")
        with TcpStorageClient(tcp.address) as client:
            loader = DataLoader(
                dataset, pipeline, client, batch_size=8,
                splits=list(plan.splits), seed=seed,
            )
            batches = 0
            for batch in loader.epoch(epoch=1):
                batches += 1
                assert batch.tensors.shape[1:] == (3, 224, 224)
            print(f"trained 1 epoch over TCP: {batches} batches, "
                  f"{format_bytes(client.traffic_bytes)} received, "
                  f"{server.ops_executed} ops executed remotely")


if __name__ == "__main__":
    main()
