"""Section 3.3, measured: preprocess-once costs accuracy.

An alternative to SOPHON would preprocess every sample to its minimum size
once and reuse the stored result every epoch.  The paper rejects this
because it freezes the random augmentations.  This example trains the same
classifier both ways -- fresh crops each epoch vs frozen epoch-0 crops --
and prints the held-out accuracy gap.

Run:  python examples/why_not_preprocess_once.py
"""

from repro.training import AugmentationStudy


def main() -> None:
    print("training the same linear classifier two ways (3 seeds)...")
    for seed in (0, 1, 2):
        result = AugmentationStudy(seed=seed).run()
        print(
            f"seed {seed}: online {result.online_accuracy:.2f}  "
            f"frozen {result.frozen_accuracy:.2f}  gap {result.gap:+.2f}"
        )
    print(
        "\nOnline augmentation (what SOPHON preserves by re-running the\n"
        "offloaded ops every epoch) generalizes better than reusing stored\n"
        "preprocessed samples -- the reason SOPHON transmits fresh\n"
        "augmentations instead of caching minimum-size payloads."
    )


if __name__ == "__main__":
    main()
