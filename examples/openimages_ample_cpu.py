"""Reproduce the paper's headline comparison (Figure 3) at example scale.

Runs all five policies (No-Off, All-Off, FastFlow, Resize-Off, SOPHON) on
calibrated OpenImages and ImageNet stand-ins with ample storage-node CPU,
printing epoch time and per-epoch data traffic for each.

Run:  python examples/openimages_ample_cpu.py
"""

from repro import make_imagenet, make_openimages, standard_cluster
from repro.harness import ample_cpu_comparison


def main() -> None:
    cluster = standard_cluster(storage_cores=48)
    for dataset in (
        make_openimages(num_samples=1000, seed=7),
        make_imagenet(num_samples=1500, seed=7),
    ):
        comparison = ample_cpu_comparison(dataset, cluster, seed=7)
        print(comparison.render())
        sophon_cut = 1.0 / comparison.traffic_ratio("sophon")
        print(f"SOPHON traffic reduction vs No-Off: {sophon_cut:.2f}x")
        print()


if __name__ == "__main__":
    main()
