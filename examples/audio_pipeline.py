"""The audio domain: offload the feature front-end near storage.

Audio preprocessing inverts the image pipeline's size algebra: decoding
inflates (compressed stream -> float PCM) but the mel spectrogram shrinks
every clip.  SOPHON reads that straight out of the per-sample records and
offloads decode+spectrogram for every clip -- with real DSP on real
samples over the RPC path.

Run:  python examples/audio_pipeline.py
"""

from repro.cluster.spec import standard_cluster
from repro.core.policy import PolicyContext
from repro.core.sophon import Sophon
from repro.data.audio import SyntheticAudioDataset
from repro.data.loader import DataLoader
from repro.preprocessing.audio_ops import audio_pipeline
from repro.rpc import InMemoryChannel, StorageClient, StorageServer
from repro.utils.units import format_bytes
from repro.workloads import get_model_profile


def main() -> None:
    seed = 0
    dataset = SyntheticAudioDataset(num_samples=24, seed=seed, duration_s=(2.0, 10.0))
    pipeline = audio_pipeline()

    # Show one clip's size trajectory.
    meta = dataset.raw_meta(0)
    sizes = pipeline.stage_sizes(meta, seed=seed, epoch=0, sample_id=0)
    for name, size in zip(["raw"] + pipeline.op_names, sizes):
        print(f"  {name:<22} {format_bytes(size)}")

    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=standard_cluster(storage_cores=8, bandwidth_mbps=50.0),
        model=get_model_profile("alexnet"),
        batch_size=8,
        seed=seed,
    )
    plan = Sophon().plan(context)
    print(f"\nplan: {plan.reason}")
    print(f"split histogram: {plan.split_histogram()} "
          "(2 = through MelSpectrogram)")

    server = StorageServer(dataset, pipeline, seed=seed)
    client = StorageClient(InMemoryChannel(server.handle))
    loader = DataLoader(
        dataset, pipeline, client, batch_size=1,  # variable-length features
        splits=list(plan.splits), seed=seed,
    )
    shapes = set()
    for batch in loader.epoch(epoch=0):
        shapes.add(batch.tensors.shape[2])  # n_mels
    print(f"\ntrained one epoch of spectrogram batches (n_mels={shapes.pop()}), "
          f"traffic {format_bytes(client.traffic_bytes)} "
          f"vs raw {format_bytes(dataset.total_raw_bytes)}")


if __name__ == "__main__":
    main()
