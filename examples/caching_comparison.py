"""SOPHON vs the caching alternative (the paper's related-work contrast).

Prior work cuts remote traffic by caching samples in compute-side storage
("limited by the capacities of local storage and memory", paper §1).
This example measures the steady-state per-epoch traffic of pinned
(Quiver-style) caches at several capacities, an LRU cache, and SOPHON —
which needs no local storage at all.

Run:  python examples/caching_comparison.py
"""

from repro import Sophon, make_openimages, standard_cluster
from repro.cache import epoch_traffic_with_cache, epoch_traffic_with_pinned_cache
from repro.core.policy import PolicyContext
from repro.preprocessing.pipeline import standard_pipeline
from repro.utils.tables import render_table
from repro.workloads import get_model_profile


def main() -> None:
    dataset = make_openimages(num_samples=1000, seed=23)
    total = dataset.total_raw_bytes

    rows = [("no cache / No-Off", "none", "1.00")]
    for fraction in (0.1, 0.25, 0.5):
        steady = epoch_traffic_with_pinned_cache(
            dataset, int(total * fraction), epochs=3
        )[-1]
        rows.append(
            (f"pinned cache", f"{fraction:.0%} of dataset", f"{steady / total:.2f}")
        )
    lru = epoch_traffic_with_cache(dataset, int(total * 0.25), epochs=4, seed=23)[-1]
    rows.append(("LRU cache", "25% of dataset", f"{lru / total:.2f}"))

    context = PolicyContext(
        dataset=dataset,
        pipeline=standard_pipeline(),
        spec=standard_cluster(storage_cores=48),
        model=get_model_profile("alexnet"),
        seed=23,
    )
    plan = Sophon().plan(context)
    sophon = plan.expected_traffic_bytes(context.records())
    rows.append(("SOPHON", "no local storage", f"{sophon / total:.2f}"))

    print("Steady-state traffic per epoch (fraction of dataset bytes):")
    print(render_table(("Approach", "Local storage used", "Traffic"), rows))
    print("\nA pinned cache saves exactly its capacity; LRU thrashes under\n"
          "per-epoch reshuffles; SOPHON beats any cache smaller than ~55%\n"
          "of the dataset without using local storage (and the two compose).")


if __name__ == "__main__":
    main()
