"""Section-6 extension: allocate storage-node cores across tenant jobs.

Three training jobs with different datasets and models share one storage
node.  The greedy scheduler hands out cores one at a time to whichever job
gains the most epoch time, re-running that job's SOPHON planner at each
candidate allocation.

Run:  python examples/multitenant_scheduler.py
"""

from repro import make_imagenet, make_openimages, standard_cluster
from repro.scheduler import GreedyCoreScheduler
from repro.scheduler.multitenant import make_job


def main() -> None:
    jobs = [
        make_job("vision-a", make_openimages(num_samples=600, seed=1)),
        make_job("vision-b", make_imagenet(num_samples=600, seed=2)),
        make_job("heavy-r50", make_openimages(num_samples=600, seed=3),
                 model_name="resnet50"),
    ]
    scheduler = GreedyCoreScheduler(standard_cluster())

    for budget in (2, 4, 8, 16):
        allocation = scheduler.allocate(jobs, total_cores=budget)
        print(f"--- {budget} cores available ---")
        print(allocation.render())
        print(f"aggregate epoch time: {allocation.objective:.2f}s\n")

    print("I/O-bound jobs soak up cores first; the compute-bound ResNet-50 "
          "job gets cores only once the others hit diminishing returns.")


if __name__ == "__main__":
    main()
