"""Quickstart: the full SOPHON data path on a real (materialized) dataset.

Builds a small procedural image dataset, stands up the storage server,
lets SOPHON plan per-sample offloads, and runs one epoch of batches through
the RPC path -- then shows the traffic SOPHON saved versus fetching raw.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Sophon, standard_cluster
from repro.core.policy import PolicyContext
from repro.data import ImageContentConfig, SyntheticImageDataset
from repro.data.loader import DataLoader
from repro.preprocessing.pipeline import standard_pipeline
from repro.rpc import InMemoryChannel, StorageClient, StorageServer
from repro.utils.units import format_bytes
from repro.workloads import get_model_profile


def main() -> None:
    seed = 0
    # Mid-size procedural images over a 100 Mbps link: a genuinely
    # I/O-bound workload, like the paper's 500 Mbps / 40k-image setting.
    dataset = SyntheticImageDataset(
        num_samples=64,
        seed=seed,
        name="quickstart",
        content=ImageContentConfig(min_side=256, max_side=1280, texture_range=(0.3, 1.0)),
    )
    pipeline = standard_pipeline()
    cluster = standard_cluster(storage_cores=8, bandwidth_mbps=100.0)
    model = get_model_profile("alexnet", "rtx6000")

    # 1. Plan: SOPHON profiles the workload and picks per-sample splits.
    context = PolicyContext(
        dataset=dataset,
        pipeline=pipeline,
        spec=cluster,
        model=model,
        batch_size=16,
        seed=seed,
    )
    plan = Sophon().plan(context)
    print(f"SOPHON plan: {plan.reason}")
    print(f"  split histogram: {plan.split_histogram()}")

    # 2. Serve: the storage node executes offloaded prefixes per request.
    server = StorageServer(dataset, pipeline, seed=seed)
    client = StorageClient(InMemoryChannel(server.handle))

    # 3. Train: the loader fetches through the client and finishes locally.
    loader = DataLoader(
        dataset, pipeline, client, batch_size=16, splits=list(plan.splits), seed=seed
    )
    for batch in loader.epoch(epoch=1):
        assert batch.tensors.shape[1:] == (3, 224, 224)
        assert batch.tensors.dtype == np.float32
    sophon_traffic = client.traffic_bytes

    # 4. Compare against fetching everything raw.
    raw_client = StorageClient(InMemoryChannel(server.handle))
    raw_loader = DataLoader(dataset, pipeline, raw_client, batch_size=16, seed=seed)
    for _ in raw_loader.epoch(epoch=1):
        pass
    raw_traffic = raw_client.traffic_bytes

    print(f"traffic raw fetch : {format_bytes(raw_traffic)}")
    print(f"traffic SOPHON    : {format_bytes(sophon_traffic)}")
    print(f"reduction         : {raw_traffic / sophon_traffic:.2f}x")
    print(f"server executed {server.ops_executed} offloaded ops "
          f"({server.cpu_seconds:.3f} CPU-seconds, virtual)")


if __name__ == "__main__":
    main()
