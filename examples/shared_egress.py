"""Many jobs on one egress link: the cluster-scale motivation (section 5).

A 500 Mbps egress budget shared by 1/2/4 concurrent AlexNet jobs.  Without
offloading, every added tenant stretches everyone's epoch (the link fair-
shares); with SOPHON each job ships ~2.2x fewer bytes, so the same budget
carries ~2.2x the tenants.

Run:  python examples/shared_egress.py
"""

from repro import make_openimages, standard_cluster
from repro.cluster.multijob import SharedJob, SharedLinkSim
from repro.core.profiler import StageTwoProfiler
from repro.preprocessing.pipeline import standard_pipeline
from repro.utils.tables import render_table
from repro.workloads import get_model_profile


def main() -> None:
    dataset = make_openimages(num_samples=500, seed=19)
    pipeline = standard_pipeline()
    spec = standard_cluster(storage_cores=32)
    model = get_model_profile("alexnet")

    records = StageTwoProfiler().profile(dataset, pipeline, seed=19)
    sophon_splits = [r.min_stage for r in records]

    def job(name, splits):
        return SharedJob(
            name=name, dataset=dataset, pipeline=pipeline,
            model=model, splits=splits, batch_size=64,
        )

    sim = SharedLinkSim(spec)
    rows = []
    for count in (1, 2, 4):
        plain = sim.run_epoch([job(f"plain{i}", None) for i in range(count)])
        offloaded = sim.run_epoch(
            [job(f"sophon{i}", sophon_splits) for i in range(count)]
        )
        rows.append(
            (
                count,
                f"{plain.mean_epoch_time_s:.2f}s",
                f"{offloaded.mean_epoch_time_s:.2f}s",
                f"{plain.mean_epoch_time_s / offloaded.mean_epoch_time_s:.2f}x",
            )
        )

    print("Concurrent jobs sharing one 500 Mbps egress link:")
    print(render_table(("Jobs", "No-Off epoch", "SOPHON epoch", "Speedup"), rows))
    print("\nTwo SOPHON tenants fit in roughly one No-Off tenant's budget.")


if __name__ == "__main__":
    main()
