"""Reproduce the storage-CPU scarcity study (Figure 4) at example scale.

Sweeps the storage node from 0 to 5 preprocessing cores on the OpenImages
stand-in.  Watch for the paper's three signatures: Resize-Off losing to
No-Off at <= 2 cores, SOPHON winning at every core count, and SOPHON's
diminishing per-core gains.

Run:  python examples/limited_storage_cpu.py
"""

from repro import make_openimages
from repro.harness import limited_cpu_sweep


def main() -> None:
    dataset = make_openimages(num_samples=1000, seed=7)
    sweep = limited_cpu_sweep(dataset, cores=(0, 1, 2, 3, 4, 5), seed=7)
    print(sweep.render())

    gains = sweep.sophon_marginal_gains()
    print("\nSOPHON epoch-time gain per added storage core:")
    for cores, gain in enumerate(gains):
        print(f"  {cores} -> {cores + 1}: {gain:+.2f} s")
    print("(diminishing returns: SOPHON spends scarce cores on the "
          "highest-efficiency samples first)")


if __name__ == "__main__":
    main()
