"""A complete training job: profile on epoch 1, offload from epoch 2 on.

Shows the paper's on-the-fly profiling discipline (section 3.1): the first
epoch runs unoffloaded while SOPHON collects per-sample metrics, and the
plan pays for itself over the remaining epochs.

Run:  python examples/full_training_run.py
"""

from repro import NoOff, Sophon, make_openimages, standard_cluster
from repro.harness.training import TrainingRun
from repro.utils.units import format_bytes, format_seconds


def main() -> None:
    dataset = make_openimages(num_samples=1000, seed=17)
    spec = standard_cluster(storage_cores=48)
    epochs = 8

    sophon = TrainingRun(dataset, Sophon(), spec, batch_size=256, seed=17).run(epochs)
    baseline = TrainingRun(dataset, NoOff(), spec, batch_size=256, seed=17).run(epochs)

    print(f"plan: {sophon.plan.reason}\n")
    print("epoch  no-off      sophon      offloaded  traffic")
    for i, (b, s) in enumerate(zip(baseline.per_epoch, sophon.per_epoch)):
        print(
            f"{i:>5}  {format_seconds(b.epoch_time_s):>9}  "
            f"{format_seconds(s.epoch_time_s):>9}  {s.offloaded_samples:>9}  "
            f"{format_bytes(s.traffic_bytes):>10}"
        )

    print(f"\njob total: {format_seconds(baseline.total_time_s)} -> "
          f"{format_seconds(sophon.total_time_s)} "
          f"({sophon.speedup_over(baseline):.2f}x; steady-state "
          f"{baseline.steady_epoch_time_s / sophon.steady_epoch_time_s:.2f}x)")
    print("epoch 0 is the profiling epoch: identical to no-off, no extra pass.")


if __name__ == "__main__":
    main()
